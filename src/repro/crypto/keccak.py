"""Keccak-256 as used by Ethereum.

Ethereum uses the original Keccak submission (multi-rate padding byte
``0x01``), *not* the finalized NIST SHA3-256 (padding byte ``0x06``), so
:mod:`hashlib`'s ``sha3_256`` cannot be used.  This module implements
Keccak-f[1600] from the reference specification in pure Python.

The sponge is small enough to be readable and fast enough for the
simulation workloads in this repository (contract hashing, trie nodes,
SHA3 opcodes).  Results for frequently re-hashed byte strings are
memoised by :func:`keccak256` through a bounded cache with explicit
hit/miss accounting (:func:`keccak_memo_stats`).

The actual permutation work is delegated to a pluggable *engine*
(:func:`set_keccak_engine`): the default is the pure-Python sponge
below; the registered crypto backends (:mod:`repro.crypto.backend`)
install faster engines — notably the lane-wise numpy batch engine in
:mod:`repro.crypto.keccak_numpy`, which :func:`keccak256_many` uses to
hash many independent inputs per permutation sweep.  Every engine is
byte-identical to the sponge (gated by tests and perf-bench), so the
choice never changes a digest, only wall clock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

_MASK64 = (1 << 64) - 1

# Round constants for Keccak-f[1600] (24 rounds).
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets, indexed [x][y] per the Keccak reference.
_ROTATION = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

_RATE_BYTES = 136  # 1088-bit rate for Keccak-256.


def _rol(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def _keccak_f1600(lanes: list[int]) -> None:
    """Apply the Keccak-f[1600] permutation to 25 lanes in place.

    ``lanes`` is indexed as ``lanes[x + 5 * y]``.
    """
    for round_constant in _ROUND_CONSTANTS:
        # theta
        parity = [
            lanes[x] ^ lanes[x + 5] ^ lanes[x + 10] ^ lanes[x + 15] ^ lanes[x + 20]
            for x in range(5)
        ]
        for x in range(5):
            d = parity[(x - 1) % 5] ^ _rol(parity[(x + 1) % 5], 1)
            for y in range(0, 25, 5):
                lanes[x + y] ^= d
        # rho + pi
        moved = [0] * 25
        for x in range(5):
            for y in range(5):
                moved[y + 5 * ((2 * x + 3 * y) % 5)] = _rol(
                    lanes[x + 5 * y], _ROTATION[x][y]
                )
        # chi
        for y in range(0, 25, 5):
            row = moved[y:y + 5]
            for x in range(5):
                lanes[x + y] = row[x] ^ ((~row[(x + 1) % 5]) & row[(x + 2) % 5])
        # iota
        lanes[0] ^= round_constant


def pad_keccak(data: bytes) -> bytes:
    """Multi-rate pad ``data`` to a whole number of 136-byte blocks."""
    padded = bytearray(data)
    padded.append(0x01)
    padded.extend(b"\x00" * (-len(padded) % _RATE_BYTES))
    padded[-1] ^= 0x80
    return bytes(padded)


class Keccak256:
    """Incremental Keccak-256 hasher with a hashlib-like interface."""

    digest_size = 32

    def __init__(self, data: bytes = b"") -> None:
        self._lanes = [0] * 25
        self._buffer = bytearray()
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Keccak256":
        """Absorb ``data`` into the sponge."""
        self._buffer.extend(data)
        while len(self._buffer) >= _RATE_BYTES:
            self._absorb_block(bytes(self._buffer[:_RATE_BYTES]))
            del self._buffer[:_RATE_BYTES]
        return self

    def _absorb_block(self, block: bytes) -> None:
        for i in range(_RATE_BYTES // 8):
            self._lanes[i] ^= int.from_bytes(block[8 * i:8 * i + 8], "little")
        _keccak_f1600(self._lanes)

    def digest(self) -> bytes:
        """Return the 32-byte digest without disturbing the running state."""
        lanes = list(self._lanes)
        padded = bytearray(self._buffer)
        padded.append(0x01)
        padded.extend(b"\x00" * (_RATE_BYTES - len(padded)))
        padded[-1] ^= 0x80
        for i in range(_RATE_BYTES // 8):
            lanes[i] ^= int.from_bytes(padded[8 * i:8 * i + 8], "little")
        _keccak_f1600(lanes)
        out = bytearray()
        for i in range(4):  # 32 bytes = 4 lanes
            out.extend(lanes[i].to_bytes(8, "little"))
        return bytes(out)

    def hexdigest(self) -> str:
        return self.digest().hex()


# ---------------------------------------------------------------------------
# Engine seam: who actually runs the permutation.
# ---------------------------------------------------------------------------


class SpongeKeccakEngine:
    """The reference engine: the pure-Python sponge, one input at a time."""

    name = "sponge"

    def hash_one(self, data: bytes) -> bytes:
        return Keccak256(data).digest()

    def hash_many(self, items: list[bytes]) -> list[bytes]:
        return [Keccak256(data).digest() for data in items]


_ENGINE = SpongeKeccakEngine()


def keccak_engine():
    """Return the currently installed Keccak engine."""
    return _ENGINE


def set_keccak_engine(engine) -> None:
    """Install ``engine`` (``hash_one``/``hash_many``) as the active engine.

    Engines must be byte-identical to :class:`SpongeKeccakEngine`; the
    crypto-backend registry is the supported way to switch
    (:func:`repro.crypto.backend.activate`).
    """
    global _ENGINE
    _ENGINE = engine


# ---------------------------------------------------------------------------
# Bounded memo cache with explicit accounting.
# ---------------------------------------------------------------------------


@dataclass
class KeccakMemoStats:
    """Host-process memo accounting (diagnostics, never protocol bytes)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


# Small inputs (trie nodes, addresses, opcodes) share a deep cache; big
# inputs (contract bytecode re-hashed on every state commit) get a
# shallow one so memory stays bounded.
_SMALL_LIMIT = 1024
_SMALL_CAPACITY = 65536
_LARGE_CAPACITY = 256

_small_cache: OrderedDict[bytes, bytes] = OrderedDict()
_large_cache: OrderedDict[bytes, bytes] = OrderedDict()
_memo_stats = KeccakMemoStats()


def keccak_memo_stats() -> KeccakMemoStats:
    """Cumulative hit/miss counters for the :func:`keccak256` memo."""
    return _memo_stats


def reset_keccak_memo() -> None:
    """Drop all memoised digests and zero the counters (benchmarks)."""
    _small_cache.clear()
    _large_cache.clear()
    _memo_stats.hits = 0
    _memo_stats.misses = 0


def _cache_for(data: bytes) -> tuple[OrderedDict[bytes, bytes], int]:
    if len(data) <= _SMALL_LIMIT:
        return _small_cache, _SMALL_CAPACITY
    return _large_cache, _LARGE_CAPACITY


def _memo_put(cache: OrderedDict[bytes, bytes], capacity: int,
              data: bytes, digest: bytes) -> None:
    cache[data] = digest
    if len(cache) > capacity:
        cache.popitem(last=False)


def keccak256(data: bytes) -> bytes:
    """Return the Keccak-256 digest of ``data`` (Ethereum's hash function)."""
    data = bytes(data)
    cache, capacity = _cache_for(data)
    cached = cache.get(data)
    if cached is not None:
        cache.move_to_end(data)
        _memo_stats.hits += 1
        return cached
    _memo_stats.misses += 1
    digest = _ENGINE.hash_one(data)
    _memo_put(cache, capacity, data, digest)
    return digest


def keccak256_many(items: list[bytes]) -> list[bytes]:
    """Hash many independent inputs, batching misses through the engine.

    The batch seam behind trie commits and sync-root computation: memo
    hits are served directly, and the remaining inputs go to the active
    engine's ``hash_many`` in one call — which the numpy engine turns
    into lane-parallel permutation sweeps.  Byte-identical to calling
    :func:`keccak256` in a loop (property-tested).
    """
    out: list[bytes | None] = []
    misses: list[bytes] = []
    miss_slots: dict[bytes, list[int]] = {}
    for index, raw in enumerate(items):
        data = bytes(raw)
        cache, _capacity = _cache_for(data)
        cached = cache.get(data)
        if cached is not None:
            cache.move_to_end(data)
            _memo_stats.hits += 1
            out.append(cached)
            continue
        _memo_stats.misses += 1
        out.append(None)
        slots = miss_slots.get(data)
        if slots is None:
            miss_slots[data] = [index]
            misses.append(data)  # hash each distinct miss once
        else:
            slots.append(index)
    if misses:
        digests = _ENGINE.hash_many(misses)
        for data, digest in zip(misses, digests):
            cache, capacity = _cache_for(data)
            _memo_put(cache, capacity, data, digest)
            for slot in miss_slots[data]:
                out[slot] = digest
    return out  # type: ignore[return-value]
