"""Keccak-256 as used by Ethereum.

Ethereum uses the original Keccak submission (multi-rate padding byte
``0x01``), *not* the finalized NIST SHA3-256 (padding byte ``0x06``), so
:mod:`hashlib`'s ``sha3_256`` cannot be used.  This module implements
Keccak-f[1600] from the reference specification in pure Python.

The sponge is small enough to be readable and fast enough for the
simulation workloads in this repository (contract hashing, trie nodes,
SHA3 opcodes).  Results for frequently re-hashed byte strings are memoised
by :func:`keccak256` through a bounded cache.
"""

from __future__ import annotations

from functools import lru_cache

_MASK64 = (1 << 64) - 1

# Round constants for Keccak-f[1600] (24 rounds).
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets, indexed [x][y] per the Keccak reference.
_ROTATION = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

_RATE_BYTES = 136  # 1088-bit rate for Keccak-256.


def _rol(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def _keccak_f1600(lanes: list[int]) -> None:
    """Apply the Keccak-f[1600] permutation to 25 lanes in place.

    ``lanes`` is indexed as ``lanes[x + 5 * y]``.
    """
    for round_constant in _ROUND_CONSTANTS:
        # theta
        parity = [
            lanes[x] ^ lanes[x + 5] ^ lanes[x + 10] ^ lanes[x + 15] ^ lanes[x + 20]
            for x in range(5)
        ]
        for x in range(5):
            d = parity[(x - 1) % 5] ^ _rol(parity[(x + 1) % 5], 1)
            for y in range(0, 25, 5):
                lanes[x + y] ^= d
        # rho + pi
        moved = [0] * 25
        for x in range(5):
            for y in range(5):
                moved[y + 5 * ((2 * x + 3 * y) % 5)] = _rol(
                    lanes[x + 5 * y], _ROTATION[x][y]
                )
        # chi
        for y in range(0, 25, 5):
            row = moved[y:y + 5]
            for x in range(5):
                lanes[x + y] = row[x] ^ ((~row[(x + 1) % 5]) & row[(x + 2) % 5])
        # iota
        lanes[0] ^= round_constant


class Keccak256:
    """Incremental Keccak-256 hasher with a hashlib-like interface."""

    digest_size = 32

    def __init__(self, data: bytes = b"") -> None:
        self._lanes = [0] * 25
        self._buffer = bytearray()
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Keccak256":
        """Absorb ``data`` into the sponge."""
        self._buffer.extend(data)
        while len(self._buffer) >= _RATE_BYTES:
            self._absorb_block(bytes(self._buffer[:_RATE_BYTES]))
            del self._buffer[:_RATE_BYTES]
        return self

    def _absorb_block(self, block: bytes) -> None:
        for i in range(_RATE_BYTES // 8):
            self._lanes[i] ^= int.from_bytes(block[8 * i:8 * i + 8], "little")
        _keccak_f1600(self._lanes)

    def digest(self) -> bytes:
        """Return the 32-byte digest without disturbing the running state."""
        lanes = list(self._lanes)
        padded = bytearray(self._buffer)
        padded.append(0x01)
        padded.extend(b"\x00" * (_RATE_BYTES - len(padded)))
        padded[-1] ^= 0x80
        for i in range(_RATE_BYTES // 8):
            lanes[i] ^= int.from_bytes(padded[8 * i:8 * i + 8], "little")
        _keccak_f1600(lanes)
        out = bytearray()
        for i in range(4):  # 32 bytes = 4 lanes
            out.extend(lanes[i].to_bytes(8, "little"))
        return bytes(out)

    def hexdigest(self) -> str:
        return self.digest().hex()


@lru_cache(maxsize=65536)
def _keccak256_cached(data: bytes) -> bytes:
    return Keccak256(data).digest()


@lru_cache(maxsize=256)
def _keccak256_cached_large(data: bytes) -> bytes:
    # Separate small cache for big inputs (contract bytecode gets
    # re-hashed on every state commit; 256 entries bound the memory).
    return Keccak256(data).digest()


def keccak256(data: bytes) -> bytes:
    """Return the Keccak-256 digest of ``data`` (Ethereum's hash function)."""
    if len(data) <= 1024:
        return _keccak256_cached(bytes(data))
    return _keccak256_cached_large(bytes(data))
