"""secp256k1 elliptic-curve primitives: ECDSA and ECDH.

HarDTAPE uses ECDSA for attestation reports and per-session message
signatures, and Diffie-Hellman key exchange to derive the AES session key
(paper §IV-A).  Ethereum itself signs transactions with ECDSA over
secp256k1, so one curve serves both roles.

Signatures here are deterministic (RFC 6979 style, using HMAC-SHA256) so
that simulation runs are reproducible.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from dataclasses import dataclass

# secp256k1 domain parameters.
P = 2**256 - 2**32 - 977
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


class InvalidSignature(Exception):
    """Raised when an ECDSA signature fails verification."""


@dataclass(frozen=True)
class Point:
    """An affine point on secp256k1; ``None`` coordinates encode infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None


INFINITY = Point(None, None)
G = Point(GX, GY)


def _point_add(p: Point, q: Point) -> Point:
    if p.is_infinity:
        return q
    if q.is_infinity:
        return p
    assert p.x is not None and p.y is not None
    assert q.x is not None and q.y is not None
    if p.x == q.x:
        if (p.y + q.y) % P == 0:
            return INFINITY
        # Doubling.
        slope = (3 * p.x * p.x) * pow(2 * p.y, -1, P) % P
    else:
        slope = (q.y - p.y) * pow(q.x - p.x, -1, P) % P
    x = (slope * slope - p.x - q.x) % P
    y = (slope * (p.x - x) - p.y) % P
    return Point(x, y)


def _scalar_mul(k: int, point: Point) -> Point:
    """Double-and-add scalar multiplication."""
    if k % N == 0 or point.is_infinity:
        return INFINITY
    k %= N
    result = INFINITY
    addend = point
    while k:
        if k & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        k >>= 1
    return result


# ---------------------------------------------------------------------------
# Shared-precomputation scalar multiplication (repro.crypto.backend tiers).
#
# ECDSA verification is two scalar multiplications: u1*G + u2*Q.  Both
# scalars are ~256 bits, so double-and-add costs ~256 doublings + ~128
# additions per multiplication.  With 4-bit fixed windows the doublings
# disappear entirely: table[i][j] = (j << 4i) * P for i in 0..63,
# j in 0..15, and k*P is the sum of at most 64 table entries.  The G
# table is global (built once per process); per-public-key tables are
# what :class:`PrecomputedVerifier` and :func:`batch_verify` share
# across the many verifies a channel or a bundle performs against the
# same key.  The math is exact — every accelerated path returns the
# same points, so accept/reject decisions are identical to the
# reference :meth:`PublicKey.verify` (property-tested).
# ---------------------------------------------------------------------------

_WINDOW_BITS = 4
_WINDOWS = 256 // _WINDOW_BITS  # 64 windows cover any scalar < 2**256


def _window_table(point: Point) -> list[list[Point]]:
    """Precompute ``table[i][j] = (j << 4i) * point`` for fixed windows."""
    table: list[list[Point]] = []
    base = point
    for _ in range(_WINDOWS):
        row = [INFINITY]
        acc = INFINITY
        for _ in range(1, 1 << _WINDOW_BITS):
            acc = _point_add(acc, base)
            row.append(acc)
        table.append(row)
        # Shift the base by one window: base <<= 4 (four doublings).
        for _ in range(_WINDOW_BITS):
            base = _point_add(base, base)
    return table


def _windowed_mul(table: list[list[Point]], k: int) -> Point:
    """Scalar multiplication from a precomputed fixed-window table."""
    k %= N
    result = INFINITY
    window = 0
    while k:
        nibble = k & 0xF
        if nibble:
            result = _point_add(result, table[window][nibble])
        k >>= _WINDOW_BITS
        window += 1
    return result


_G_TABLE: list[list[Point]] | None = None


def _g_table() -> list[list[Point]]:
    global _G_TABLE
    if _G_TABLE is None:
        _G_TABLE = _window_table(G)
    return _G_TABLE


def fixed_base_mul(k: int) -> Point:
    """``k * G`` via the global fixed-window table (exact, just faster)."""
    if k % N == 0:
        return INFINITY
    return _windowed_mul(_g_table(), k)


def point_on_curve(point: Point) -> bool:
    """Check that ``point`` satisfies y^2 = x^3 + 7 (mod p)."""
    if point.is_infinity:
        return True
    assert point.x is not None and point.y is not None
    return (point.y * point.y - point.x**3 - 7) % P == 0


def encode_point(point: Point) -> bytes:
    """Serialize a point as uncompressed SEC1 (65 bytes)."""
    if point.is_infinity:
        raise ValueError("cannot encode the point at infinity")
    assert point.x is not None and point.y is not None
    return b"\x04" + point.x.to_bytes(32, "big") + point.y.to_bytes(32, "big")


def decode_point(data: bytes) -> Point:
    """Parse an uncompressed SEC1 point and validate curve membership."""
    if len(data) != 65 or data[0] != 0x04:
        raise ValueError("expected 65-byte uncompressed SEC1 point")
    point = Point(
        int.from_bytes(data[1:33], "big"), int.from_bytes(data[33:], "big")
    )
    if not point_on_curve(point):
        raise ValueError("point is not on secp256k1")
    return point


@dataclass(frozen=True)
class PrivateKey:
    """A secp256k1 private key with deterministic-ECDSA signing."""

    secret: int

    def __post_init__(self) -> None:
        if not 1 <= self.secret < N:
            raise ValueError("private key out of range")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        value = int.from_bytes(data, "big") % (N - 1) + 1
        return cls(value)

    def public_key(self) -> "PublicKey":
        return PublicKey(_scalar_mul(self.secret, G))

    def _rfc6979_nonce(self, digest: bytes) -> int:
        """Deterministic per-message nonce (RFC 6979, HMAC-SHA256)."""
        key_bytes = self.secret.to_bytes(32, "big")
        v = b"\x01" * 32
        k = b"\x00" * 32
        k = hmac.new(k, v + b"\x00" + key_bytes + digest, hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()
        k = hmac.new(k, v + b"\x01" + key_bytes + digest, hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()
        while True:
            v = hmac.new(k, v, hashlib.sha256).digest()
            candidate = int.from_bytes(v, "big")
            if 1 <= candidate < N:
                return candidate
            k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
            v = hmac.new(k, v, hashlib.sha256).digest()

    def sign(self, message_hash: bytes) -> "Signature":
        """Sign a 32-byte message hash; returns a low-s signature."""
        if len(message_hash) != 32:
            raise ValueError("message hash must be 32 bytes")
        z = int.from_bytes(message_hash, "big")
        while True:
            k = self._rfc6979_nonce(message_hash)
            point = _scalar_mul(k, G)
            assert point.x is not None
            r = point.x % N
            if r == 0:
                message_hash = hashlib.sha256(message_hash).digest()
                continue
            s = (z + r * self.secret) * pow(k, -1, N) % N
            if s == 0:
                message_hash = hashlib.sha256(message_hash).digest()
                continue
            if s > N // 2:
                s = N - s
            return Signature(r, s)

    def ecdh(self, peer: "PublicKey") -> bytes:
        """Raw ECDH shared secret (x-coordinate, 32 bytes)."""
        shared = _scalar_mul(self.secret, peer.point)
        if shared.is_infinity:
            raise ValueError("ECDH produced the point at infinity")
        assert shared.x is not None
        return shared.x.to_bytes(32, "big")


@dataclass(frozen=True)
class PublicKey:
    """A secp256k1 public key."""

    point: Point

    def __post_init__(self) -> None:
        if self.point.is_infinity or not point_on_curve(self.point):
            raise ValueError("invalid public key")

    def to_bytes(self) -> bytes:
        return encode_point(self.point)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        return cls(decode_point(data))

    def verify(self, message_hash: bytes, signature: "Signature") -> None:
        """Verify; raises :class:`InvalidSignature` on failure."""
        if len(message_hash) != 32:
            raise ValueError("message hash must be 32 bytes")
        r, s = signature.r, signature.s
        if not (1 <= r < N and 1 <= s < N):
            raise InvalidSignature("signature scalars out of range")
        z = int.from_bytes(message_hash, "big")
        s_inv = pow(s, -1, N)
        u1 = z * s_inv % N
        u2 = r * s_inv % N
        point = _point_add(_scalar_mul(u1, G), _scalar_mul(u2, self.point))
        if point.is_infinity:
            raise InvalidSignature("verification produced infinity")
        assert point.x is not None
        if point.x % N != r:
            raise InvalidSignature("r mismatch")


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature as the (r, s) scalar pair."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 64:
            raise ValueError("signature must be 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


class PrecomputedVerifier:
    """ECDSA verification against one public key, tables built once.

    A :class:`~repro.hypervisor.channel.SecureChannel` verifies every
    incoming message against the same peer key, so the per-key window
    table amortizes after a handful of messages.  Accept/reject
    behaviour — including the exceptions raised — matches
    :meth:`PublicKey.verify` exactly; only the scalar-multiplication
    strategy differs, and the group law is exact either way.
    """

    def __init__(self, public_key: PublicKey) -> None:
        self.public_key = public_key
        self._key_table = _window_table(public_key.point)

    def verify(self, message_hash: bytes, signature: Signature) -> None:
        """Verify; raises :class:`InvalidSignature` on failure."""
        if len(message_hash) != 32:
            raise ValueError("message hash must be 32 bytes")
        r, s = signature.r, signature.s
        if not (1 <= r < N and 1 <= s < N):
            raise InvalidSignature("signature scalars out of range")
        z = int.from_bytes(message_hash, "big")
        s_inv = pow(s, -1, N)
        u1 = z * s_inv % N
        u2 = r * s_inv % N
        point = _point_add(
            _windowed_mul(_g_table(), u1), _windowed_mul(self._key_table, u2)
        )
        if point.is_infinity:
            raise InvalidSignature("verification produced infinity")
        assert point.x is not None
        if point.x % N != r:
            raise InvalidSignature("r mismatch")

    def verify_many(
        self, items: list[tuple[bytes, Signature]]
    ) -> None:
        """Verify every ``(message_hash, signature)`` pair or raise.

        Raises on the first failing pair, before any caller-visible
        side effects — the all-or-nothing contract batch channel opens
        rely on.
        """
        for message_hash, signature in items:
            self.verify(message_hash, signature)


# Per-key verifier cache for batch verification: bounded so a stream of
# one-shot keys cannot grow host memory without limit.
_VERIFIER_CACHE_CAPACITY = 64
_verifier_cache: "OrderedDict[Point, PrecomputedVerifier]" = OrderedDict()


def precomputed_verifier(public_key: PublicKey) -> PrecomputedVerifier:
    """Return a (cached) :class:`PrecomputedVerifier` for ``public_key``."""
    cached = _verifier_cache.get(public_key.point)
    if cached is not None:
        _verifier_cache.move_to_end(public_key.point)
        return cached
    verifier = PrecomputedVerifier(public_key)
    _verifier_cache[public_key.point] = verifier
    if len(_verifier_cache) > _VERIFIER_CACHE_CAPACITY:
        _verifier_cache.popitem(last=False)
    return verifier


def batch_verify(
    items: list[tuple[PublicKey, bytes, Signature]]
) -> None:
    """Verify many ``(public_key, message_hash, signature)`` triples.

    Shares precomputation two ways: the global fixed-base G table, and
    one window table per *distinct* public key (bundle/channel-open
    batches verify many messages under few keys).  Equivalent to
    calling :meth:`PublicKey.verify` in a loop — same accepts, same
    :class:`InvalidSignature` on the first failure (property-tested).
    """
    for public_key, message_hash, signature in items:
        precomputed_verifier(public_key).verify(message_hash, signature)


def recover_address(message_hash: bytes, signature: Signature, public_key: PublicKey) -> bytes:
    """Return the 20-byte Ethereum address of ``public_key``.

    (Full public-key recovery from (r, s, v) is not needed by the
    simulation; transactions carry sender addresses explicitly.)
    """
    from repro.crypto.keccak import keccak256

    public_key.verify(message_hash, signature)
    encoded = public_key.to_bytes()[1:]
    return keccak256(encoded)[12:]
