"""Key derivation and deterministic randomness.

* :func:`hkdf_sha256` — HKDF (RFC 5869) used to turn DHKE shared secrets
  into AES session keys.
* :class:`Drbg` — a deterministic HMAC-based random bit generator.  The
  paper requires a *secure source of randomness proposed by the
  Manufacturer* for ORAM leaf remapping and page-swap noise; in the
  simulation every secure-randomness consumer owns a :class:`Drbg` seeded
  from the (simulated) PUF so runs are reproducible.
"""

from __future__ import annotations

import hashlib
import hmac


def hkdf_sha256(ikm: bytes, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """HKDF-Extract-then-Expand with SHA-256."""
    if length > 255 * 32:
        raise ValueError("HKDF output too long")
    prk = hmac.new(salt or b"\x00" * 32, ikm, hashlib.sha256).digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        okm += block
        counter += 1
    return okm[:length]


class Drbg:
    """HMAC-SHA256 counter-mode deterministic random bit generator."""

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        self._key = hmac.new(seed, b"drbg-init" + personalization, hashlib.sha256).digest()
        self._counter = 0

    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudorandom bytes."""
        out = bytearray()
        while len(out) < length:
            block = hmac.new(
                self._key, self._counter.to_bytes(8, "big"), hashlib.sha256
            ).digest()
            out.extend(block)
            self._counter += 1
        return bytes(out[:length])

    def randint(self, upper_exclusive: int) -> int:
        """Uniform integer in ``[0, upper_exclusive)`` via rejection sampling."""
        if upper_exclusive <= 0:
            raise ValueError("upper bound must be positive")
        bits = upper_exclusive.bit_length()
        num_bytes = (bits + 7) // 8
        mask = (1 << bits) - 1
        while True:
            candidate = int.from_bytes(self.random_bytes(num_bytes), "big") & mask
            if candidate < upper_exclusive:
                return candidate

    def randrange(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        if high <= low:
            raise ValueError("empty range")
        return low + self.randint(high - low)

    def fork(self, label: bytes) -> "Drbg":
        """Derive an independent child generator for ``label``."""
        return Drbg(self._key, personalization=label)
