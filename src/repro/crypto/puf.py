"""Simulated physically unclonable function (PUF) and Manufacturer keys.

The paper's chain of trust (§IV-A) starts from a PUF assigned by the
trusted Manufacturer that seeds/decrypts a pair of asymmetric device
keys.  Real silicon derives the secret from process variation; the
simulation derives it from a Manufacturer master secret and the device
serial through a PRF, which preserves the two properties that matter for
the protocol:

* the secret is device-unique and stable, and
* only parties holding the Manufacturer's records can predict it.

A forged device (attack A1) holds a serial the Manufacturer never
endorsed, so its attestation signature chains to an unknown key and the
user's verification fails.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.crypto.ecc import PrivateKey, PublicKey, Signature
from repro.crypto.kdf import Drbg, hkdf_sha256


@dataclass(frozen=True)
class DeviceIdentity:
    """Everything a chip package carries out of the fab."""

    serial: bytes
    device_key: PrivateKey
    endorsement: Signature  # Manufacturer's signature over the device public key.


class SimulatedPuf:
    """Device-unique secret derived from silicon (simulated via PRF)."""

    def __init__(self, manufacturer_secret: bytes, serial: bytes) -> None:
        self._response = hmac.new(
            manufacturer_secret, b"puf" + serial, hashlib.sha256
        ).digest()

    def derive_key(self, label: bytes) -> bytes:
        """Derive a stable 32-byte key for ``label`` from the PUF response."""
        return hkdf_sha256(self._response, info=label)

    def secure_rng(self, label: bytes) -> Drbg:
        """The Manufacturer-proposed secure randomness source (§IV-B)."""
        return Drbg(self.derive_key(b"rng"), personalization=label)


@dataclass
class Manufacturer:
    """The trusted device maker: provisions PUFs and endorses device keys."""

    master_secret: bytes
    _root_key: PrivateKey = field(init=False)

    def __post_init__(self) -> None:
        self._root_key = PrivateKey.from_bytes(
            hkdf_sha256(self.master_secret, info=b"manufacturer-root")
        )

    @property
    def root_public_key(self) -> PublicKey:
        """The publicly known Manufacturer verification key."""
        return self._root_key.public_key()

    def provision(self, serial: bytes) -> tuple[SimulatedPuf, DeviceIdentity]:
        """Fabricate a chip: seed its PUF and endorse its device key."""
        puf = SimulatedPuf(self.master_secret, serial)
        device_key = PrivateKey.from_bytes(puf.derive_key(b"device-key"))
        message = hashlib.sha256(
            b"hardtape-device" + serial + device_key.public_key().to_bytes()
        ).digest()
        endorsement = self._root_key.sign(message)
        return puf, DeviceIdentity(serial, device_key, endorsement)

    @staticmethod
    def endorsement_message(serial: bytes, device_public: PublicKey) -> bytes:
        """The hash the Manufacturer signs when endorsing a device."""
        return hashlib.sha256(
            b"hardtape-device" + serial + device_public.to_bytes()
        ).digest()
