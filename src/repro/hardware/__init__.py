"""Hardware model: HEVM cores, 3-layer memory, timing, area, secure boot."""

from repro.hardware.fleet import (
    FleetResult,
    FleetSimulator,
    TxProfile,
    profiles_from_breakdowns,
    saturation_point,
)
from repro.hardware.csu import (
    BootImage,
    BootReceipt,
    ConfigurationSecurityUnit,
    SecureBootError,
    verify_boot_receipt,
)
from repro.hardware.hevm import (
    FRAME_BASE_BYTES,
    HardwareBackend,
    HardwareTracer,
    HevmCore,
    HevmRunStats,
)
from repro.hardware.memory_layers import (
    CodeCache,
    L1_PARTITIONS,
    Layer2CallStack,
    MemoryOverflowError,
    PAGE_BYTES,
    SwapEvent,
    WorldStateCache,
)
from repro.hardware.resources import (
    HEVM_COMPONENTS,
    HypervisorMemoryBudget,
    ResourceVector,
    SHARED_COMPONENTS,
    XCZU15EV,
    hevm_resources,
    max_hevms,
    shared_resources,
)
from repro.hardware.timing import CostModel, SimClock, TimeBreakdown

__all__ = [
    "BootImage",
    "BootReceipt",
    "CodeCache",
    "ConfigurationSecurityUnit",
    "CostModel",
    "FleetResult",
    "FleetSimulator",
    "FRAME_BASE_BYTES",
    "HEVM_COMPONENTS",
    "HardwareBackend",
    "HardwareTracer",
    "HevmCore",
    "HevmRunStats",
    "HypervisorMemoryBudget",
    "L1_PARTITIONS",
    "Layer2CallStack",
    "MemoryOverflowError",
    "PAGE_BYTES",
    "ResourceVector",
    "SHARED_COMPONENTS",
    "SecureBootError",
    "SimClock",
    "SwapEvent",
    "TimeBreakdown",
    "TxProfile",
    "WorldStateCache",
    "XCZU15EV",
    "hevm_resources",
    "max_hevms",
    "shared_resources",
    "profiles_from_breakdowns",
    "saturation_point",
    "verify_boot_receipt",
]
