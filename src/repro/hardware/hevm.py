"""The HEVM device model: functional EVM + 3-layer memory + timing.

One :class:`HevmCore` is the paper's dedicated hardware set — EVM
pipeline, tracer, layer-1 cache, layer-2 call-stack ring — exclusively
assigned to one user bundle at a time (workflow steps 3–10).  The core
executes transactions with the shared functional interpreter while:

* advancing the :class:`~repro.hardware.timing.SimClock` per retired
  instruction group (4-stage pipeline @ 0.1 GHz),
* driving the :class:`~repro.hardware.memory_layers.Layer2CallStack`
  from frame enter/exit/growth events (with swap noise),
* routing world-state misses through the Hypervisor exception path to
  either the Path ORAM or prefetched untrusted memory, depending on the
  security configuration,
* interleaving pagewise code prefetches between queries.

A note on prefetch timing: the functional interpreter needs full
bytecode at frame entry, so code bytes are served immediately while the
corresponding ORAM accesses for pages beyond the first are *scheduled*
by the prefetcher and issued between subsequent queries.  The
adversary-visible trace (one access per page, consistent randomized
gaps, no bursts) is identical to the paper's ahead-of-use prefetching;
only the internal fetch direction differs.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.kdf import Drbg
from repro.evm import opcodes
from repro.evm.executor import TransactionResult, execute_transaction
from repro.evm.interpreter import ChainContext
from repro.evm.tracer import (
    CallTracer,
    CountingTracer,
    MultiTracer,
    StructTracer,
    Tracer,
)
from repro.hardware.memory_layers import (
    CodeCache,
    Layer2CallStack,
    MemoryOverflowError,
    WorldStateCache,
)
from repro.hardware.timing import CostModel, SimClock, TimeBreakdown
from repro.oram.adapter import ObliviousStateBackend
from repro.oram.prefetch import CodePrefetcher
from repro.state.account import AccountMeta, Address
from repro.state.backend import CODE_PAGE_SIZE, StateBackend
from repro.state.blocks import Transaction
from repro.state.journal import JournaledState
from repro.telemetry.tracer import NULL_TRACER, tracer_for

# Fixed per-frame layer-2 baseline: 32 KB stack + 1 KB frame state.
FRAME_BASE_BYTES = 33 * 1024


@dataclass
class HevmRunStats:
    """Everything a bundle run produced besides the trace itself."""

    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    l1_ws_hits: int = 0
    l1_ws_misses: int = 0
    oram_queries: int = 0
    direct_queries: int = 0
    aborted: bool = False
    abort_reason: str | None = None


class HardwareBackend(StateBackend):
    """Layer-1-cached state backend with Hypervisor-mediated misses."""

    def __init__(
        self,
        clock: SimClock,
        cost: CostModel,
        oram_backend: ObliviousStateBackend | None,
        direct_backend: StateBackend,
        storage_via_oram: bool,
        code_via_oram: bool,
        prefetcher: CodePrefetcher | None,
        breakdown: TimeBreakdown,
        ws_cache: WorldStateCache,
        code_cache: CodeCache,
        stats: HevmRunStats,
        pacing_rng: Drbg | None = None,
        pacing_max_us: float = 120.0,
        span_tracer=None,
    ) -> None:
        self._clock = clock
        self._tracer = NULL_TRACER if span_tracer is None else span_tracer
        self._cost = cost
        self._oram = oram_backend
        self._direct = direct_backend
        self._storage_via_oram = storage_via_oram and oram_backend is not None
        self._code_via_oram = code_via_oram and oram_backend is not None
        self._prefetcher = prefetcher
        self._breakdown = breakdown
        self._ws_cache = ws_cache
        self._code_cache = code_cache
        self._stats = stats
        self._pacing_rng = pacing_rng
        self._pacing_max_us = pacing_max_us

    # -- cost plumbing ---------------------------------------------------

    def _pace(self) -> None:
        """Randomized issue-time jitter applied to EVERY ORAM query.

        Paper §IV-D: queries of both types go out "with consistent time
        interval".  Real queries carry execution-time residue in their
        gaps; padding every issue with the same jitter distribution makes
        code and storage gap distributions indistinguishable.
        """
        if self._pacing_rng is not None:
            dt = self._pacing_rng.randint(int(self._pacing_max_us) + 1)
            self._tracer.record("oram.pace", "other", float(dt))
            self._clock.advance_us(float(dt))
            self._breakdown.other_us += float(dt)

    def _oram_cost_us(self) -> float:
        assert self._oram is not None
        server = self._oram._client.server
        return self._cost.oram_access_us(
            server.height, server.bucket_size, self._oram._client.block_size / 1024.0
        )

    def _charge_oram(self, kind: str) -> None:
        cost = self._cost.exception_handling_us + self._oram_cost_us()
        layer = "oram_code" if kind == "code" else "oram_storage"
        span = self._tracer.record("oram.access", layer, cost, kind=kind)
        if self._tracer.enabled and self._oram is not None:
            last = self._oram._client.last_access
            span.set(
                stalls=last.stalls_absorbed,
                stall_us=last.stall_us,
                stash_blocks=last.stash_blocks,
            )
        self._clock.advance_us(cost)
        if kind == "code":
            self._breakdown.oram_code_us += cost
        else:
            self._breakdown.oram_storage_us += cost
        self._stats.oram_queries += 1
        self._pump_prefetch()

    def _charge_direct(self, size_bytes: int) -> None:
        cost = (
            self._cost.exception_handling_us
            + self._cost.dma_us_per_kb * max(size_bytes, 64) / 1024.0
        )
        self._tracer.record("dma.direct", "other", cost, bytes=size_bytes)
        self._clock.advance_us(cost)
        self._breakdown.other_us += cost
        self._stats.direct_queries += 1

    def _pump_prefetch(self) -> None:
        """Issue any code-page prefetches whose timers expired."""
        if self._prefetcher is None or self._oram is None:
            return
        self._prefetcher.on_query(self._clock.now_us)
        for entry in self._prefetcher.due(self._clock.now_us):
            self._issue_prefetch(entry)

    def _issue_prefetch(self, entry) -> None:
        assert self._oram is not None
        # The wait until the entry's randomized fire time is dead time,
        # not an ORAM cost: it gets its own "idle" span so the execution
        # bucket still reconciles exactly with the breakdown.
        stall = entry.fire_time_us - self._clock.now_us
        if stall > 0:
            self._tracer.record("prefetch.wait", "idle", stall)
        self._clock.advance_to(entry.fire_time_us)
        self._pace()
        self._oram.prefetch_code_page(entry.address, entry.page_index)
        cost = self._oram_cost_us()
        self._tracer.record(
            "oram.access",
            "oram_code",
            cost,
            kind="code",
            prefetch=True,
            page=entry.page_index,
            reason=entry.reason,
        )
        self._clock.advance_us(cost)
        self._breakdown.oram_code_us += cost
        self._stats.oram_queries += 1

    def drain_prefetches(self) -> None:
        """Flush queued code pages (bundle finishing / frame done)."""
        if self._prefetcher is None or self._oram is None:
            return
        for entry in self._prefetcher.drain(self._clock.now_us):
            self._issue_prefetch(entry)

    # -- StateBackend ------------------------------------------------------

    def get_meta(self, address: Address) -> AccountMeta:
        cached = self._ws_cache.get(("meta", address))
        if cached is not None:
            self._stats.l1_ws_hits += 1
            return cached  # type: ignore[return-value]
        self._stats.l1_ws_misses += 1
        if self._storage_via_oram:
            assert self._oram is not None
            self._pace()
            meta = self._oram.get_meta(address)
            self._charge_oram("account")
        else:
            meta = self._direct.get_meta(address)
            self._charge_direct(128)
        self._ws_cache.put(("meta", address), meta)
        return meta

    def get_storage(self, address: Address, key: int) -> int:
        cached = self._ws_cache.get(("slot", address, key))
        if cached is not None:
            self._stats.l1_ws_hits += 1
            return cached  # type: ignore[return-value]
        self._stats.l1_ws_misses += 1
        if self._storage_via_oram:
            assert self._oram is not None
            self._pace()
            value = self._oram.get_storage(address, key)
            self._charge_oram("storage")
        else:
            value = self._direct.get_storage(address, key)
            self._charge_direct(32)
        self._ws_cache.put(("slot", address, key), value)
        return value

    def get_code_page(self, address: Address, page_index: int) -> bytes:
        cached = self._code_cache.get(address, page_index)
        if cached is not None:
            return cached
        if self._code_via_oram:
            assert self._oram is not None
            self._pace()
            page = self._oram.get_code_page(address, page_index)
            self._charge_oram("code")
        else:
            page = self._direct.get_code_page(address, page_index)
            self._charge_direct(CODE_PAGE_SIZE)
        self._code_cache.put(address, page_index, page)
        return page

    def get_code(self, address: Address) -> bytes:
        size = self.get_meta(address).code_size
        if size == 0:
            return b""
        page_count = (size + CODE_PAGE_SIZE - 1) // CODE_PAGE_SIZE
        if not self._code_via_oram or self._prefetcher is None:
            pages = [
                self.get_code_page(address, index) for index in range(page_count)
            ]
            return b"".join(pages)[:size]
        # ORAM + prefetch path: fetch the first uncached page eagerly,
        # queue the rest; functional bytes come from the direct shadow.
        first_missing = None
        for index in range(page_count):
            if self._code_cache.get(address, index) is None:
                first_missing = index
                break
        if first_missing is not None:
            self._pace()
            page = self._oram.get_code_page(address, first_missing)
            self._charge_oram("code")
            self._code_cache.put(address, first_missing, page)
            if first_missing + 1 < page_count:
                self._prefetcher.queue_code_pages(
                    address, first_missing + 1, page_count - 1
                )
                # Mark queued pages resident: they are in flight and the
                # core would stall-stream them on demand.
                for index in range(first_missing + 1, page_count):
                    self._code_cache.put(
                        address, index, self._direct.get_code_page(address, index)
                    )
        pages = [
            self._code_cache.get(address, index) or b"\x00" * CODE_PAGE_SIZE
            for index in range(page_count)
        ]
        return b"".join(pages)[:size]


class HardwareTracer(Tracer):
    """Drives the clock and the layer-2 model from interpreter events."""

    def __init__(
        self,
        clock: SimClock,
        cost: CostModel,
        l2: Layer2CallStack,
        breakdown: TimeBreakdown,
        spill_page_cost_us: float | None = None,
        span_tracer=None,
    ) -> None:
        self._clock = clock
        self._cost = cost
        self._l2 = l2
        self._breakdown = breakdown
        self._spill_page_cost_us = spill_page_cost_us
        self._tracer = NULL_TRACER if span_tracer is None else span_tracer
        self._frame_memory: list[int] = []

    def on_step(self, frame, opcode: int) -> None:
        entry = opcodes.info(opcode)
        group = entry.group.value if entry else "invalid"
        dt = self._cost.hevm_instruction_us(group)
        self._clock.advance_us(dt)
        self._breakdown.execution_us += dt
        if self._frame_memory and frame.memory.size > self._frame_memory[-1]:
            self._frame_memory[-1] = frame.memory.size
            events = self._l2.expand_current(
                FRAME_BASE_BYTES + frame.memory.size, self._clock.now_us
            )
            self._charge_swaps(events)

    def on_frame_enter(self, frame, kind: str) -> None:
        self._frame_memory.append(0)
        events = self._l2.push_frame(
            FRAME_BASE_BYTES + len(frame.message.data), self._clock.now_us
        )
        self._charge_swaps(events)

    def on_frame_exit(self, frame, kind: str, error: str | None) -> None:
        self._frame_memory.pop()
        events = self._l2.pop_frame(self._clock.now_us)
        self._charge_swaps(events)

    def _charge_swaps(self, events) -> None:
        for event in events:
            if (
                event.direction in ("spill", "fill")
                and self._spill_page_cost_us is not None
            ):
                # Layer 3 as an ORAM: every spilled page is one access.
                dt = self._spill_page_cost_us * event.page_count
            else:
                dt = self._cost.page_swap_us(event.page_count)
            self._tracer.record(
                "l2.swap",
                "swap",
                dt,
                direction=event.direction,
                pages=event.page_count,
                real_pages=event.real_pages,
            )
            self._clock.advance_us(dt)
            self._breakdown.swap_us += dt


class HevmCore:
    """One dedicated hardware set: HEVM + tracer + local memory."""

    def __init__(
        self,
        core_id: int,
        clock: SimClock,
        cost: CostModel,
        rng: Drbg | None = None,
        l2_bytes: int = 1024 * 1024,
        swap_noise: bool = True,
        oversize_policy: str = "abort",
        l3_oram: bool = False,
    ) -> None:
        """``oversize_policy``/``l3_oram``: see
        :class:`~repro.hardware.memory_layers.Layer2CallStack`.  With
        ``l3_oram=True``, spilled pages are charged as full Path ORAM
        accesses (the pattern-safe but expensive §IV-B alternative);
        otherwise spills cost a plain encrypted DMA transfer, which
        leaks the access pattern of the oversized frame.
        """
        self.core_id = core_id
        self.clock = clock
        self.cost = cost
        self.l3_oram = l3_oram
        self._rng = rng or Drbg(b"hevm" + core_id.to_bytes(4, "big"))
        self.l2 = Layer2CallStack(
            capacity_bytes=l2_bytes,
            rng=self._rng.fork(b"l2-noise"),
            noise_enabled=swap_noise,
            oversize_policy=oversize_policy,
        )
        self.ws_cache = WorldStateCache()
        self.code_cache = CodeCache()
        self.busy = False
        # Fault-injection seam (``repro.faults``): called before each
        # transaction of a bundle with ``(core, txs_completed)``; may
        # raise a typed crash error to model a mid-bundle HEVM fault.
        self.fault_hook = None

    def reset(self) -> None:
        """Workflow step 10: clear all on-chip memories."""
        self.l2.reset()
        self.ws_cache.clear()
        self.code_cache.clear()
        self.busy = False

    def run_bundle(
        self,
        transactions: list[Transaction],
        chain: ChainContext,
        direct_backend: StateBackend,
        oram_backend: ObliviousStateBackend | None,
        storage_via_oram: bool,
        code_via_oram: bool,
        prefetch_enabled: bool = True,
        struct_trace: bool = False,
        charge_fees: bool = True,
        query_padding: bool = False,
    ) -> tuple[list[TransactionResult], list[TimeBreakdown], HevmRunStats, list]:
        """Simulate a bundle on this core (workflow steps 4–9).

        Returns per-transaction results, per-transaction time breakdowns,
        run stats, and (optionally) per-transaction struct traces.
        """
        self.busy = True
        stats = HevmRunStats()
        span_tracer = tracer_for(self.clock)
        prefetcher = None
        if prefetch_enabled and code_via_oram and oram_backend is not None:
            prefetcher = CodePrefetcher(self._rng.fork(b"prefetch"))
        results: list[TransactionResult] = []
        breakdowns: list[TimeBreakdown] = []
        struct_traces: list = []
        backend: HardwareBackend | None = None
        state: JournaledState | None = None
        tx_span = None
        try:
            for tx in transactions:
                breakdown = TimeBreakdown()
                backend = HardwareBackend(
                    clock=self.clock,
                    cost=self.cost,
                    oram_backend=oram_backend,
                    direct_backend=direct_backend,
                    storage_via_oram=storage_via_oram,
                    code_via_oram=code_via_oram,
                    prefetcher=prefetcher,
                    breakdown=breakdown,
                    ws_cache=self.ws_cache,
                    code_cache=self.code_cache,
                    stats=stats,
                    # Pacing is part of the same §IV-D "mixing query
                    # types" defense as prefetching: both on or both off.
                    pacing_rng=(
                        self._rng.fork(b"pacing")
                        if prefetch_enabled
                        and (storage_via_oram or code_via_oram)
                        and oram_backend is not None
                        else None
                    ),
                    span_tracer=span_tracer,
                )
                if state is None:
                    state = JournaledState(backend)
                else:
                    state = _rebind_journal(state, backend)
                spill_cost = (
                    self.cost.oram_access_us(12, 4, 1.0) if self.l3_oram else None
                )
                hw_tracer = HardwareTracer(
                    self.clock, self.cost, self.l2, breakdown,
                    spill_page_cost_us=spill_cost,
                    span_tracer=span_tracer,
                )
                tracers: list[Tracer] = [hw_tracer]
                struct = StructTracer() if struct_trace else None
                if struct is not None:
                    tracers.append(struct)
                call_tracer = CallTracer()
                tracers.append(call_tracer)
                # Opcode-group tallies for the span; pure counting, no
                # clock or state effects, so results stay identical.
                counting = CountingTracer() if span_tracer.enabled else None
                if counting is not None:
                    tracers.append(counting)
                hits_before = stats.l1_ws_hits
                misses_before = stats.l1_ws_misses
                oram_before = stats.oram_queries
                direct_before = stats.direct_queries
                with span_tracer.span(
                    "hevm.tx", "execution", core=self.core_id, index=len(results)
                ) as tx_span:
                    if self.fault_hook is not None:
                        self.fault_hook(self, len(results))
                    result = execute_transaction(
                        state,
                        chain,
                        tx,
                        tracer=MultiTracer(*tracers),
                        charge_fees=charge_fees,
                    )
                    backend.drain_prefetches()
                if counting is not None:
                    tx_span.set(
                        status=result.status,
                        gas_used=result.gas_used,
                        instructions=counting.counts.instructions,
                        opcode_groups=dict(sorted(counting.counts.by_group.items())),
                        l1_hits=stats.l1_ws_hits - hits_before,
                        l1_misses=stats.l1_ws_misses - misses_before,
                        oram_queries=stats.oram_queries - oram_before,
                        direct_queries=stats.direct_queries - direct_before,
                        l2_peak_pages=self.l2.stats.peak_pages_used,
                    )
                stats.breakdown.add(breakdown)
                results.append(result)
                breakdowns.append(breakdown)
                struct_traces.append(struct.logs if struct is not None else None)
        except MemoryOverflowError as exc:
            stats.aborted = True
            stats.abort_reason = str(exc)
            if tx_span is not None:
                tx_span.set(aborted=True, abort_reason=stats.abort_reason)
        finally:
            if backend is not None:
                backend.drain_prefetches()
            if (
                query_padding
                and oram_backend is not None
                and stats.oram_queries > 0
            ):
                # Pad the bundle's query count to the next power of two
                # so the count no longer tracks the contract's code size.
                target = 1
                while target < stats.oram_queries:
                    target *= 2
                pad_breakdown = breakdowns[-1] if breakdowns else TimeBreakdown()
                while stats.oram_queries < target:
                    oram_backend.dummy_query()
                    cost_us = self.cost.oram_access_us(
                        oram_backend._client.server.height,
                        oram_backend._client.server.bucket_size,
                        oram_backend._client.block_size / 1024.0,
                    )
                    span_tracer.record("oram.pad", "other", cost_us, kind="padding")
                    self.clock.advance_us(cost_us)
                    pad_breakdown.other_us += cost_us
                    stats.oram_queries += 1
        return results, breakdowns, stats, struct_traces


def _rebind_journal(state: JournaledState, backend: StateBackend) -> JournaledState:
    """Keep bundle-visible writes while switching per-tx breakdown sinks."""
    state._backend = backend  # the journal overlay itself persists
    return state
