"""Simulated time and the calibrated hardware cost model.

All times the repository reports are **simulated**: the functional
execution produces event counts (instructions retired by group, ORAM
round trips, crypto operations, page swaps), and the
:class:`CostModel` — whose constants come from the paper's measured
platform (HEVM @ 0.1 GHz on an XCZU15EV, ARM Cortex-A53 Hypervisor @
1.4 GHz, 2 ms Ethernet, 25 µs/query ORAM server, i7-12700 Geth box) —
converts them to microseconds on a :class:`SimClock`.

Calibration targets (paper §VI-C):

* -raw ≈ Geth + 0.5 ms, -E adds ≈ 2.9 ms, -ES adds ≈ 80 ms,
* ORAM adds ≈ 30 ms for K-V queries and ≈ 50 ms more for code,
* -full averages ≈ 164.4 ms per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SimClock:
    """A monotonically advancing simulated clock (microseconds)."""

    def __init__(self) -> None:
        self._now_us = 0.0

    @property
    def now_us(self) -> float:
        return self._now_us

    def advance_us(self, amount: float) -> float:
        if amount < 0:
            raise ValueError("time cannot go backwards")
        self._now_us += amount
        return self._now_us

    def advance_to(self, deadline_us: float) -> None:
        if deadline_us > self._now_us:
            self._now_us = deadline_us


@dataclass
class CostModel:
    """Microsecond costs for every event class in the simulation."""

    # --- HEVM (four-stage pipeline @ 0.1 GHz → 10 ns/cycle) -------------
    hevm_cycle_us: float = 0.01
    # Average retired cycles per instruction by group; the pipeline
    # sustains ~1 instr/cycle on simple ops, more for wide operations.
    cycles_per_group: dict[str, float] = field(
        default_factory=lambda: {
            "arithmetic": 2.0,
            "comparison": 1.0,
            "sha3": 40.0,       # Keccak-f rounds on the hash unit
            "frame_state": 1.0,
            "block": 1.0,
            "stack": 1.0,
            "memory": 2.0,
            "storage": 30.0,    # L1 world-state cache lookup (multi-beat CAM)
            "jump": 2.0,        # pipeline flush on taken branch
            "log": 4.0,
            "call_return": 200.0,  # frame save/restore in layer 2
            "halt": 1.0,
            "invalid": 1.0,
        }
    )

    # --- Hypervisor (ARM Cortex-A53 @ 1.4 GHz) ---------------------------
    ecdsa_sign_us: float = 40_000.0
    ecdsa_verify_us: float = 40_000.0
    dhke_us: float = 55_000.0           # one-time per session
    attestation_us: float = 45_000.0    # one-time per session
    exception_handling_us: float = 2.0  # HEVM -> Hypervisor trap

    # --- Recovery plane (repro.recovery) ---------------------------------
    # Cold restart of the Hypervisor firmware: secure boot + HEVM resets.
    hypervisor_reboot_us: float = 150_000.0
    # Unsealing and installing the latest checkpoint image.
    checkpoint_restore_us: float = 8_000.0
    # Applying one sealed journal record during replay.
    journal_replay_record_us: float = 3.0

    # --- Async serving plane (repro.async_serving) ------------------------
    # Sealing one resumption ticket at suspension: HKDF + one AEAD over
    # ~200 B of session state on the A53.
    ticket_mint_us: float = 150.0
    # Redeeming a ticket on reconnect: unseal, HKDF re-key, channel
    # rebuild — the one-round-trip replacement for attestation (45 ms)
    # + DHKE (55 ms), which is why p99 resumed handshake cost gates at
    # ~0 relative to the full handshake.
    ticket_resume_us: float = 900.0

    # --- A.E.DMA (AES-GCM hardware) --------------------------------------
    aes_gcm_us_per_kb: float = 9.0
    aes_gcm_setup_us: float = 1.0
    message_header_check_us: float = 0.8
    # Per-bundle fixed path through the Hypervisor: interrupt handling,
    # header validation, DMA programming, core activation and scrub.
    # Calibrated so -raw ≈ Geth + 0.5 ms (paper §VI-C).
    bundle_admission_us: float = 500.0
    # Software half of a sealed channel message (key schedule, buffer
    # staging around the A.E.DMA).  Two messages per bundle ⇒ the paper's
    # +2.9 ms -E overhead.
    channel_seal_setup_us: float = 1_440.0

    # --- Interconnect ------------------------------------------------------
    ethernet_rtt_us: float = 2_000.0     # paper: 2 ms to the ORAM server
    dma_us_per_kb: float = 0.35          # on-board DDR4 page swap

    # --- ORAM ---------------------------------------------------------------
    oram_server_cpu_us: float = 25.0     # paper §VI-D
    oram_client_us_per_block: float = 1.2  # stash/posmap handling per *block*

    # --- Geth baseline (i7-12700 @ 4.35 GHz, all data in RAM) --------------
    geth_us_per_op: dict[str, float] = field(
        default_factory=lambda: {
            "arithmetic": 0.025,
            "comparison": 0.015,
            "sha3": 0.30,
            "frame_state": 0.015,
            "block": 0.015,
            "stack": 0.012,
            "memory": 0.020,
            "storage": 0.45,     # state-trie cache lookups
            "jump": 0.015,
            "log": 0.30,
            "call_return": 35.0,  # Go call-frame setup + state copies
            "halt": 0.01,
            "invalid": 0.01,
        }
    )
    geth_tx_fixed_us: float = 450.0      # RPC decode, sig handling, setup

    # Per-invocation entry costs for the Figure 5 local benches (the
    # cost of *starting* one contract call on each platform): Geth's
    # interpreter call path, TSC-VEE's TrustZone world switch, and the
    # HEVM's frame initialization.
    geth_invocation_us: float = 120.0
    tscvee_invocation_us: float = 30.0
    hevm_invocation_us: float = 20.0

    # --- TSC-VEE baseline (TrustZone, all data pre-fetched) ------------------
    tscvee_us_per_op: dict[str, float] = field(
        default_factory=lambda: {
            "arithmetic": 0.030,
            "comparison": 0.018,
            "sha3": 0.35,
            "frame_state": 0.018,
            "block": 0.018,
            "stack": 0.015,
            "memory": 0.024,
            "storage": 0.40,
            "jump": 0.018,
            "log": 0.32,
            "call_return": 0.0,   # unsupported: single contract only
            "halt": 0.01,
            "invalid": 0.01,
        }
    )

    # ------------------------------------------------------------------
    # Derived costs
    # ------------------------------------------------------------------

    def hevm_instruction_us(self, group: str, count: int = 1) -> float:
        cycles = self.cycles_per_group.get(group, 1.0)
        return cycles * self.hevm_cycle_us * count

    def geth_instruction_us(self, group: str, count: int = 1) -> float:
        return self.geth_us_per_op.get(group, 0.02) * count

    def tscvee_instruction_us(self, group: str, count: int = 1) -> float:
        return self.tscvee_us_per_op.get(group, 0.02) * count

    def aes_gcm_us(self, size_bytes: int) -> float:
        return self.aes_gcm_setup_us + self.aes_gcm_us_per_kb * (size_bytes / 1024.0)

    def channel_seal_us(self, size_bytes: int) -> float:
        """One sealed (AES-GCM) channel message, software path included."""
        return self.channel_seal_setup_us + self.aes_gcm_us(size_bytes)

    def oram_access_us(self, tree_height: int, bucket_size: int, block_kb: float) -> float:
        """End-to-end cost of one Path ORAM access.

        One Ethernet round trip, server CPU, and client-side handling of
        2·(height+1)·Z *blocks* (path read + path write).
        """
        blocks_moved = 2 * (tree_height + 1) * bucket_size
        return (
            self.ethernet_rtt_us
            + self.oram_server_cpu_us
            + blocks_moved * self.oram_client_us_per_block
            + blocks_moved * self.aes_gcm_us_per_kb * block_kb / 8.0  # pipelined AES
        )

    def page_swap_us(self, page_count: int, page_kb: float = 1.0) -> float:
        """Encrypt + DMA a batch of layer-2 pages to/from layer 3."""
        kb = page_count * page_kb
        return self.aes_gcm_us(int(kb * 1024)) + self.dma_us_per_kb * kb


@dataclass
class TimeBreakdown:
    """Per-transaction time, split the way Figure 4's bars are."""

    execution_us: float = 0.0
    encryption_us: float = 0.0
    signature_us: float = 0.0
    oram_storage_us: float = 0.0
    oram_code_us: float = 0.0
    swap_us: float = 0.0
    other_us: float = 0.0

    @property
    def total_us(self) -> float:
        return (
            self.execution_us
            + self.encryption_us
            + self.signature_us
            + self.oram_storage_us
            + self.oram_code_us
            + self.swap_us
            + self.other_us
        )

    def add(self, other: "TimeBreakdown") -> None:
        self.execution_us += other.execution_us
        self.encryption_us += other.encryption_us
        self.signature_us += other.signature_us
        self.oram_storage_us += other.oram_storage_us
        self.oram_code_us += other.oram_code_us
        self.swap_us += other.swap_us
        self.other_us += other.other_us
