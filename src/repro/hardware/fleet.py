"""Fleet-scale discrete-event simulation (paper §VI-D).

The paper's scalability argument: bundles are independent, so
throughput grows with the number of HEVMs "until the ORAM server
becomes the bottleneck" — one server (25 µs CPU per query) sustains
⌊630/25⌋ ≈ 25 full-load HEVMs.

This module simulates that fleet directly: N HEVMs each grind through
transactions whose shapes (execution time, ORAM query count) come from
measured per-transaction profiles; every ORAM query travels over
Ethernet and queues at a single-server FIFO.  The output is the
throughput curve and the server-utilization knee.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.hardware.timing import CostModel


@dataclass(frozen=True)
class TxProfile:
    """The shape of one transaction, as the fleet model needs it."""

    exec_us: float           # HEVM compute time between queries (total)
    oram_queries: int        # world-state queries (account+storage+code)
    fixed_us: float = 0.0    # per-bundle crypto etc. (ECDSA, AES)


@dataclass
class OramServerTimeline:
    """The single ORAM server as a FIFO timeline (§VI-D bottleneck).

    Shared between :class:`FleetSimulator` and the serving layer's model
    executor so both price server contention identically: a query that
    arrives while the server is busy waits until it frees, and every
    query costs the same CPU service time.
    """

    service_us: float
    free_at_us: float = 0.0
    busy_us: float = 0.0
    queue_wait_us: float = 0.0
    queries_served: int = 0

    def serve(self, arrival_us: float) -> float:
        """Serve one query arriving at ``arrival_us``; return departure."""
        start = max(arrival_us, self.free_at_us)
        self.queue_wait_us += start - arrival_us
        self.free_at_us = start + self.service_us
        self.busy_us += self.service_us
        self.queries_served += 1
        return self.free_at_us

    def utilization(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.busy_us / duration_us


@dataclass
class OramServerLedger:
    """The server as fluid capacity bucketed over *future* time.

    The event-driven :class:`OramServerTimeline` needs arrivals in
    global time order; a gateway pricing a whole request at dispatch
    cannot provide that — its queries land across a window during which
    other in-flight requests' queries interleave.  The ledger models the
    server as 1 µs of work capacity per µs of time, discretized into
    buckets: each query's work is placed in the earliest bucket at or
    after its arrival with spare capacity, overflow cascading forward.
    Below capacity, concurrent requests don't delay each other at all;
    past it, work cascades and service times stretch — the same §VI-D
    knee, priced at dispatch.  (Approximation: placed work is never
    re-ordered, so an earlier dispatch is never delayed by a later one;
    aggregate throughput is still capped exactly at server capacity.)
    """

    service_us: float
    # Bucket a few query-services wide: big enough to amortize the dict,
    # small enough that within-bucket serialization (all of a bucket's
    # work notionally starts at its head) stays close to true FIFO.
    bucket_us: float = 100.0
    busy_us: float = 0.0
    queue_wait_us: float = 0.0
    queries_served: int = 0
    _committed: dict[int, float] = field(default_factory=dict)

    def serve(self, arrival_us: float) -> float:
        """Reserve one query's work; return its completion time."""
        work = self.service_us
        self.busy_us += work
        self.queries_served += 1
        index = max(0, int(arrival_us // self.bucket_us))
        completion = arrival_us + self.service_us
        while work > 0:
            committed = self._committed.get(index, 0.0)
            free = self.bucket_us - committed
            if free <= 0:
                index += 1
                continue
            take = min(free, work)
            self._committed[index] = committed + take
            work -= take
            completion = index * self.bucket_us + committed + take
        completion = max(completion, arrival_us + self.service_us)
        self.queue_wait_us += completion - arrival_us - self.service_us
        return completion

    def utilization(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.busy_us / duration_us


def profile_finish_us(
    profile: TxProfile,
    start_us: float,
    server: "OramServerTimeline | OramServerLedger",
    cost: CostModel,
) -> float:
    """Finish time of one transaction walked against a shared server.

    The transaction alternates compute gaps with ORAM queries exactly as
    :class:`FleetSimulator` does, but its whole walk happens at once:
    every query is reserved on the shared server model up front.  Use an
    :class:`OramServerLedger` when requests are priced at dispatch while
    others are still in flight (the serving gateway); the event-ordered
    :class:`OramServerTimeline` is only correct when calls arrive in
    global time order.
    """
    half_rtt = cost.ethernet_rtt_us / 2.0
    segments = profile.oram_queries + 1
    gap = profile.exec_us / segments
    now = start_us + profile.fixed_us
    if profile.oram_queries == 0:
        return now + profile.exec_us
    for _ in range(profile.oram_queries):
        now += gap
        departure = server.serve(now + half_rtt)
        now = departure + half_rtt
    return now + gap


def full_load_profile(cost: CostModel, oram_queries: int = 16) -> TxProfile:
    """The paper's "full-load HEVM" shape (§VI-D).

    An HEVM at full load issues one ORAM query every ≈630 µs, so a
    25 µs/query server sustains ⌊630/25⌋ ≈ 25 of them.  The compute gap
    is whatever is left of the 630 µs period after the wire and the
    unloaded server are paid (clamped to stay positive under cost models
    whose RTT alone exceeds the period — there the knee simply moves).
    """
    period_us = 630.0
    gap = max(
        1.0, period_us - cost.oram_server_cpu_us - cost.ethernet_rtt_us
    )
    return TxProfile(exec_us=gap * (oram_queries + 1), oram_queries=oram_queries)


@dataclass
class FleetResult:
    """Outcome of one fleet run."""

    hevm_count: int
    duration_us: float
    transactions_completed: int
    server_busy_us: float
    total_queue_wait_us: float
    queries_served: int

    @property
    def throughput_tps(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.transactions_completed / (self.duration_us / 1e6)

    @property
    def server_utilization(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.server_busy_us / self.duration_us

    @property
    def mean_queue_wait_us(self) -> float:
        if self.queries_served == 0:
            return 0.0
        return self.total_queue_wait_us / self.queries_served


@dataclass
class _Hevm:
    """One simulated core's position in its work loop."""

    index: int
    tx_cursor: int = 0
    queries_left: int = 0
    completed: int = 0


class FleetSimulator:
    """Event-driven model: N HEVM clients, one ORAM server, one wire.

    Each transaction alternates compute segments with ORAM queries:
    the inter-query compute gap is ``exec_us / oram_queries``; a query
    costs half an RTT to reach the server, possibly waits in the FIFO,
    is served for ``oram_server_cpu_us``, and takes half an RTT back.
    """

    def __init__(
        self,
        profiles: list[TxProfile],
        cost: CostModel | None = None,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one transaction profile")
        self.profiles = profiles
        self.cost = cost or CostModel()

    def run(
        self,
        hevm_count: int,
        transactions_per_hevm: int = 50,
    ) -> FleetResult:
        """Simulate until every core finishes its transaction quota."""
        cost = self.cost
        half_rtt = cost.ethernet_rtt_us / 2.0
        server = OramServerTimeline(cost.oram_server_cpu_us)

        # Event heap: (time, seq, kind, hevm_index)
        events: list[tuple[float, int, str, int]] = []
        sequence = 0

        def schedule(at: float, kind: str, hevm_index: int) -> None:
            nonlocal sequence
            heapq.heappush(events, (at, sequence, kind, hevm_index))
            sequence += 1

        hevms = [_Hevm(i) for i in range(hevm_count)]
        completed = 0
        now = 0.0

        def profile_for(hevm: _Hevm) -> TxProfile:
            return self.profiles[
                (hevm.index + hevm.tx_cursor) % len(self.profiles)
            ]

        def start_tx(hevm: _Hevm, at: float) -> None:
            profile = profile_for(hevm)
            hevm.queries_left = profile.oram_queries
            # Fixed per-bundle work happens before the first query.
            first_gap = profile.fixed_us + self._gap_us(profile)
            if profile.oram_queries > 0:
                schedule(at + first_gap, "send_query", hevm.index)
            else:
                schedule(at + profile.fixed_us + profile.exec_us,
                         "tx_done", hevm.index)

        for hevm in hevms:
            start_tx(hevm, 0.0)

        while events:
            now, _, kind, index = heapq.heappop(events)
            hevm = hevms[index]
            if kind == "send_query":
                # Arrives at the server after half an RTT.
                schedule(now + half_rtt, "server_arrival", index)
            elif kind == "server_arrival":
                departure = server.serve(now)
                schedule(departure + half_rtt, "response", index)
            elif kind == "response":
                hevm.queries_left -= 1
                profile = profile_for(hevm)
                if hevm.queries_left > 0:
                    schedule(now + self._gap_us(profile), "send_query", index)
                else:
                    schedule(now + self._gap_us(profile), "tx_done", index)
            elif kind == "tx_done":
                hevm.completed += 1
                hevm.tx_cursor += 1
                completed += 1
                if hevm.completed < transactions_per_hevm:
                    start_tx(hevm, now)
        return FleetResult(
            hevm_count=hevm_count,
            duration_us=now,
            transactions_completed=completed,
            server_busy_us=server.busy_us,
            total_queue_wait_us=server.queue_wait_us,
            queries_served=server.queries_served,
        )

    @staticmethod
    def _gap_us(profile: TxProfile) -> float:
        """Compute time between consecutive queries of one transaction."""
        segments = profile.oram_queries + 1
        return profile.exec_us / segments

    def sweep(
        self,
        hevm_counts: list[int],
        transactions_per_hevm: int = 50,
    ) -> list[FleetResult]:
        """Throughput curve over fleet sizes."""
        return [
            self.run(count, transactions_per_hevm) for count in hevm_counts
        ]


def profiles_from_breakdowns(breakdowns, run_stats_queries: int | None = None):
    """Build :class:`TxProfile` list from measured per-tx breakdowns.

    ``breakdowns`` are :class:`~repro.hardware.timing.TimeBreakdown`
    objects from a real service run; ORAM time is converted back into a
    query count via the per-access cost, keeping the fleet model
    consistent with the end-to-end pipeline.
    """
    cost = CostModel()
    access_us = cost.oram_access_us(12, 4, 1.0)
    profiles = []
    for breakdown in breakdowns:
        oram_us = breakdown.oram_storage_us + breakdown.oram_code_us
        queries = max(1, round(oram_us / access_us))
        exec_us = breakdown.execution_us + breakdown.other_us + breakdown.swap_us
        profiles.append(
            TxProfile(
                exec_us=max(exec_us, 1.0),
                oram_queries=queries,
                fixed_us=breakdown.signature_us + breakdown.encryption_us,
            )
        )
    return profiles


def saturation_point(results: list[FleetResult], threshold: float = 0.95) -> int:
    """Smallest fleet size whose server utilization crosses ``threshold``.

    Returns the last swept size if the server never saturates.
    """
    for result in results:
        if result.server_utilization >= threshold:
            return result.hevm_count
    return results[-1].hevm_count if results else 0
