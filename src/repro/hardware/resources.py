"""FPGA resource (area) model — reproduces the paper's §VI-A table.

The paper reports, from the Vivado utilization report of one HEVM
instance on an XCZU15EV: **103,388 LUTs, 37,104 FFs, 509 KB BlockRAM**,
with the LUT budget limiting a chip to **three HEVMs**.  We model each
HEVM as a sum of components whose costs are set from typical synthesis
results for such units, scaled so the totals match the paper; the
interesting *reproduction* is the bottleneck analysis (which resource
limits the per-chip HEVM count) and the Hypervisor memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """LUTs, flip-flops, and BlockRAM bytes."""

    luts: int = 0
    ffs: int = 0
    bram_bytes: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.bram_bytes + other.bram_bytes,
        )

    def scaled(self, factor: int) -> "ResourceVector":
        return ResourceVector(
            self.luts * factor, self.ffs * factor, self.bram_bytes * factor
        )


# Per-component estimates for one HEVM (calibrated to the paper's totals).
HEVM_COMPONENTS: dict[str, ResourceVector] = {
    # 256-bit ALU with single-cycle add/logic, multi-cycle mul/div.
    "alu_256": ResourceVector(luts=38_000, ffs=9_200),
    # Keccak-f[1600] hash unit for SHA3/address derivation.
    "keccak_unit": ResourceVector(luts=16_500, ffs=4_800),
    # Four-stage fetch/decode/execute/writeback pipeline + control.
    "pipeline_control": ResourceVector(luts=21_000, ffs=10_400),
    # Gas accounting (static + dynamic), MSIZE/warm-set logic.
    "gas_unit": ResourceVector(luts=6_400, ffs=2_900),
    # Layer-1/2 memory controllers + page ring management.
    "memory_mgmt": ResourceVector(luts=12_288, ffs=5_104),
    # Tracer (virtual bottom frame, trace packing).
    "tracer": ResourceVector(luts=5_200, ffs=2_700),
    # Exception interface to the Hypervisor (metadata registers).
    "exception_unit": ResourceVector(luts=4_000, ffs=2_000),
    # BlockRAM: layer-1 partitions (110 KB) + 384 KB of layer 2 held in
    # BRAM (the rest of the 1 MB ring spills to URAM) + FIFOs.
    "blockram": ResourceVector(bram_bytes=509 * 1024),
}


# The XCZU15EV's budget (from the AMD/Xilinx data sheet).
XCZU15EV = ResourceVector(
    luts=341_280,
    ffs=682_560,
    bram_bytes=26_214_400 // 8,  # 26.2 Mb of BRAM
)

# Shared (once-per-chip) infrastructure: Hypervisor bridge, A.E.DMAs,
# Ethernet MAC, ORAM client stash/posmap BRAM (~1 MB).
SHARED_COMPONENTS: dict[str, ResourceVector] = {
    "ae_dma": ResourceVector(luts=9_500, ffs=6_200),
    "ethernet_and_bus": ResourceVector(luts=7_800, ffs=5_400),
    "oram_client_stash": ResourceVector(luts=4_200, ffs=2_100, bram_bytes=1_048_576),
    "hypervisor_ocm": ResourceVector(bram_bytes=256 * 1024),
}


def hevm_resources() -> ResourceVector:
    """Total resources of one HEVM instance."""
    total = ResourceVector()
    for vector in HEVM_COMPONENTS.values():
        total = total + vector
    return total


def shared_resources() -> ResourceVector:
    total = ResourceVector()
    for vector in SHARED_COMPONENTS.values():
        total = total + vector
    return total


def max_hevms(chip: ResourceVector = XCZU15EV) -> tuple[int, str]:
    """How many HEVMs fit on ``chip``, and which resource binds first."""
    per_hevm = hevm_resources()
    shared = shared_resources()
    budgets = {
        "LUT": (chip.luts - shared.luts, per_hevm.luts),
        "FF": (chip.ffs - shared.ffs, per_hevm.ffs),
        "BRAM": (chip.bram_bytes - shared.bram_bytes, per_hevm.bram_bytes),
    }
    counts = {
        name: (available // per_unit if per_unit else 10**9)
        for name, (available, per_unit) in budgets.items()
    }
    bottleneck = min(counts, key=counts.get)
    return counts[bottleneck], bottleneck


@dataclass(frozen=True)
class HypervisorMemoryBudget:
    """The paper's software memory numbers (§VI-A)."""

    binary_kb: int = 156
    peak_stack_kb: int = 92
    heap_kb: int = 0  # "the Hypervisor does not require any heap memory"
    ocm_kb: int = 256

    @property
    def total_kb(self) -> int:
        return self.binary_kb + self.peak_stack_kb + self.heap_kb

    @property
    def fits(self) -> bool:
        return self.total_kb <= self.ocm_kb
