"""Configuration-security unit: secure boot and the chain of trust.

Workflow step 1 (paper §IV): on power-on the CSU verifies and boots the
secure bootloader (SBL), which resets the HEVMs and boots the
Hypervisor.  The chain is: Manufacturer endorses the device key (sealed
by the PUF) → device key signs the measured boot image → the attestation
report later proves to users which image runs (defeating attack A1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.ecc import InvalidSignature, PrivateKey, PublicKey, Signature
from repro.crypto.puf import DeviceIdentity, Manufacturer, SimulatedPuf


class SecureBootError(Exception):
    """Boot image verification failed — the device refuses to start."""


@dataclass(frozen=True)
class BootImage:
    """A measured software/bitstream image (Hypervisor + HEVM bitstream)."""

    name: str
    payload: bytes

    def measurement(self) -> bytes:
        return hashlib.sha256(b"image:" + self.name.encode() + self.payload).digest()


@dataclass(frozen=True)
class BootReceipt:
    """Produced by a successful secure boot; input to attestation."""

    serial: bytes
    image_measurement: bytes
    signature: Signature  # device key over the measurement
    device_public: PublicKey
    endorsement: Signature  # Manufacturer over the device public key


class ConfigurationSecurityUnit:
    """The on-chip root-of-trust logic."""

    def __init__(self, puf: SimulatedPuf, identity: DeviceIdentity) -> None:
        self._puf = puf
        self._identity = identity
        self.booted = False

    def secure_boot(
        self, image: BootImage, expected_measurement: bytes | None = None
    ) -> BootReceipt:
        """Verify and boot ``image``; returns the signed boot receipt.

        ``expected_measurement`` models the fused golden measurement; a
        mismatch (tampered Hypervisor/bitstream) refuses to boot.
        """
        measurement = image.measurement()
        if expected_measurement is not None and measurement != expected_measurement:
            raise SecureBootError(
                f"image {image.name!r} measurement mismatch"
            )
        # The device key is re-derived from the PUF at every boot; it
        # never exists outside the chip package.
        device_key = PrivateKey.from_bytes(self._puf.derive_key(b"device-key"))
        signature = device_key.sign(measurement)
        self.booted = True
        return BootReceipt(
            serial=self._identity.serial,
            image_measurement=measurement,
            signature=signature,
            device_public=device_key.public_key(),
            endorsement=self._identity.endorsement,
        )

    def secure_rng(self, label: bytes):
        """The Manufacturer-proposed secure randomness source."""
        return self._puf.secure_rng(label)

    def derive_sealing_key(self, label: bytes) -> bytes:
        """A PUF-bound key for sealing state to untrusted storage.

        Re-derivable on every boot of the *same* chip (the recovery
        plane's requirement) and never available off-package — exactly
        the device-key property, under a domain-separated label.
        """
        return self._puf.derive_key(b"seal:" + label)


@dataclass
class MonotonicCounter:
    """A tiny NVRAM counter that survives Hypervisor restarts.

    Models the anti-rollback hardware monotonic counter (e.g. RPMB or
    fused NVRAM): the recovery plane advances it to the checkpoint
    sequence it just durably wrote, and at restart refuses any store
    whose newest record is older than the counter — the defense against
    an SP rolling back the *journal* itself, which no amount of sealing
    can catch.
    """

    value: int = 0

    def advance_to(self, value: int) -> None:
        if value < self.value:
            raise ValueError(
                f"monotonic counter cannot move backward ({self.value} -> {value})"
            )
        self.value = value


def verify_boot_receipt(
    receipt: BootReceipt,
    manufacturer_public: PublicKey,
    expected_measurement: bytes | None = None,
) -> None:
    """User-side receipt check: endorsement chain + image signature.

    Raises :class:`~repro.crypto.ecc.InvalidSignature` (forged device,
    attack A1) or :class:`SecureBootError` (wrong image).
    """
    endorsement_message = Manufacturer.endorsement_message(
        receipt.serial, receipt.device_public
    )
    manufacturer_public.verify(endorsement_message, receipt.endorsement)
    receipt.device_public.verify(receipt.image_measurement, receipt.signature)
    if (
        expected_measurement is not None
        and receipt.image_measurement != expected_measurement
    ):
        raise SecureBootError("device runs an unexpected image")
