"""The HEVM's 3-layer memory structure (paper §IV-B, "Data organization").

* **Layer 1** — the per-HEVM cache: fixed partitions for the runtime
  stack (32 KB), Code (64 KB), Input/Memory/ReturnData (4 KB each),
  frame state (1 KB), and a 64-record world-state cache (4 KB).
* **Layer 2** — the on-chip call stack: a 1 MB ring of 1 KB pages
  holding the execution frames.  A frame that reaches half of layer 2
  aborts the bundle with :class:`MemoryOverflowError` (the anti-DoS /
  anti-probe rule).
* **Layer 3** — untrusted memory: swapped-out pages leave the chip
  AES-GCM protected.  Swap events — all the adversary can see — carry
  only direction, page count, and time; the page counts are inflated
  with random pre-evict/pre-load noise so consecutive-reload counting
  cannot recover frame sizes (attack A5).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.crypto.kdf import Drbg
from repro.crypto.suite import Blake2Aead, open_blocks, seal_blocks

PAGE_BYTES = 1024
DEFAULT_L2_BYTES = 1024 * 1024  # 1 MB per HEVM

# Layer-1 partition sizes (bytes), per the paper's Table I-driven choices.
L1_PARTITIONS = {
    "stack": 32 * 1024,
    "code": 64 * 1024,
    "input": 4 * 1024,
    "memory": 4 * 1024,
    "return_data": 1 * 1024,
    "frame_state": 1 * 1024,
    "world_state": 4 * 1024,  # 64 records of 32 B keys + 32 B values
}

WORLD_STATE_CACHE_RECORDS = 64


class MemoryOverflowError(Exception):
    """A single execution frame outgrew half the layer-2 memory.

    The paper treats this as a deliberate attack (or an unsupported
    rollup transaction) and stops the bundle.
    """


@dataclass(slots=True)
class SwapEvent:
    """One adversary-visible layer-3 transfer."""

    direction: str  # "out" | "in"
    page_count: int  # includes noise pages
    real_pages: int  # ground truth, NOT visible to the adversary
    sim_time_us: float


@dataclass
class L2Stats:
    frames_pushed: int = 0
    frames_popped: int = 0
    pages_swapped_out: int = 0
    pages_swapped_in: int = 0
    noise_pages: int = 0
    peak_pages_used: int = 0
    peak_frame_depth: int = 0
    swap_events: list[SwapEvent] = field(default_factory=list)


class Layer2CallStack:
    """Page-granular model of the on-chip call stack ring.

    Tracks, per frame, how many 1 KB pages it occupies.  When the ring
    fills, bottom frames' pages are dumped to layer 3 (oldest first);
    returning into a dumped frame reloads all its pages.  Random
    pre-evict/pre-load noise pages are added to every swap.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_L2_BYTES,
        rng: Drbg | None = None,
        noise_max_pages: int = 8,
        noise_enabled: bool = True,
        oversize_policy: str = "abort",
    ) -> None:
        """``oversize_policy``:

        * ``"abort"`` — the paper's rule: a frame reaching half of layer
          2 raises :class:`MemoryOverflowError` (anti-DoS, anti-probe).
        * ``"spill"`` — the generic alternative the paper rejects as too
          expensive (§IV-B): pages beyond the frame limit live in layer
          3, each producing a ``"spill"``/``"fill"`` swap event that the
          timing model can charge as a plain encrypted transfer or as a
          full ORAM access (the only pattern-safe variant).
        """
        if oversize_policy not in ("abort", "spill"):
            raise ValueError(f"unknown oversize policy {oversize_policy!r}")
        self.capacity_pages = capacity_bytes // PAGE_BYTES
        self.frame_limit_pages = self.capacity_pages // 2
        self._rng = rng or Drbg(b"l2-default")
        self.noise_max_pages = noise_max_pages
        self.noise_enabled = noise_enabled
        self.oversize_policy = oversize_policy
        # Frame stack: index 0 is the bottom (the tracer's virtual frame
        # sits below index 0 and never swaps).
        self._frame_pages: list[int] = []
        self._frame_resident: list[bool] = []
        self._frame_spilled_pages: list[int] = []
        self.stats = L2Stats()

    # -- geometry helpers ---------------------------------------------------

    @staticmethod
    def pages_for(size_bytes: int) -> int:
        return max(1, (size_bytes + PAGE_BYTES - 1) // PAGE_BYTES)

    def _resident_pages(self) -> int:
        return sum(
            pages
            for pages, resident in zip(self._frame_pages, self._frame_resident)
            if resident
        )

    def _noise(self) -> int:
        if not self.noise_enabled:
            return 0
        return self._rng.randint(self.noise_max_pages + 1)

    # -- operations -----------------------------------------------------------

    def push_frame(self, initial_bytes: int, sim_time_us: float = 0.0) -> list[SwapEvent]:
        """CALL: allocate a new top frame; may dump bottom pages."""
        pages = self.pages_for(initial_bytes)
        resident, spilled = self._split_frame(pages)
        events = self._emit_spill(spilled, sim_time_us)
        self._frame_pages.append(resident)
        self._frame_spilled_pages.append(spilled)
        self._frame_resident.append(True)
        self.stats.frames_pushed += 1
        self.stats.peak_frame_depth = max(
            self.stats.peak_frame_depth, len(self._frame_pages)
        )
        return events + self._make_room(sim_time_us)

    def expand_current(self, new_total_bytes: int, sim_time_us: float = 0.0) -> list[SwapEvent]:
        """Memory growth of the topmost frame."""
        if not self._frame_pages:
            return []
        pages = self.pages_for(new_total_bytes)
        resident, spilled = self._split_frame(pages)
        if resident <= self._frame_pages[-1] and spilled <= self._frame_spilled_pages[-1]:
            return []
        new_spill = max(0, spilled - self._frame_spilled_pages[-1])
        events = self._emit_spill(new_spill, sim_time_us)
        self._frame_pages[-1] = max(resident, self._frame_pages[-1])
        self._frame_spilled_pages[-1] = max(spilled, self._frame_spilled_pages[-1])
        return events + self._make_room(sim_time_us)

    def pop_frame(self, sim_time_us: float = 0.0) -> list[SwapEvent]:
        """RETURN/REVERT: drop the top frame, reload the caller if dumped."""
        if not self._frame_pages:
            return []
        self._frame_pages.pop()
        spilled = self._frame_spilled_pages.pop()
        self._frame_resident.pop()
        self.stats.frames_popped += 1
        events: list[SwapEvent] = []
        if spilled:
            # Read back spilled pages once (trace export / merge-up).
            fill = SwapEvent("fill", spilled, spilled, sim_time_us)
            self.stats.swap_events.append(fill)
            events.append(fill)
        if self._frame_resident and not self._frame_resident[-1]:
            real = self._frame_pages[-1]
            noise = self._noise()
            self._frame_resident[-1] = True
            self.stats.pages_swapped_in += real
            self.stats.noise_pages += noise
            event = SwapEvent("in", real + noise, real, sim_time_us)
            self.stats.swap_events.append(event)
            events.append(event)
            events.extend(self._make_room(sim_time_us))
        return events

    def _check_frame_size(self, pages: int) -> None:
        if pages > self.frame_limit_pages:
            raise MemoryOverflowError(
                f"frame needs {pages} pages, limit is {self.frame_limit_pages} "
                f"(half of the {self.capacity_pages}-page layer 2)"
            )

    def _split_frame(self, pages: int) -> tuple[int, int]:
        """Resident/spilled page split for a frame of ``pages`` pages.

        Under the "abort" policy an oversized frame raises; under
        "spill" the overflow lives in layer 3.
        """
        if pages <= self.frame_limit_pages:
            return pages, 0
        if self.oversize_policy == "abort":
            self._check_frame_size(pages)
        return self.frame_limit_pages, pages - self.frame_limit_pages

    def _emit_spill(self, page_count: int, sim_time_us: float) -> list[SwapEvent]:
        if page_count <= 0:
            return []
        event = SwapEvent("spill", page_count, page_count, sim_time_us)
        self.stats.swap_events.append(event)
        self.stats.pages_swapped_out += page_count
        return [event]

    def _make_room(self, sim_time_us: float) -> list[SwapEvent]:
        """Dump bottom resident frames until the ring fits."""
        events: list[SwapEvent] = []
        used = self._resident_pages()
        if used > self.stats.peak_pages_used:
            self.stats.peak_pages_used = used
        index = 0
        while used > self.capacity_pages and index < len(self._frame_pages) - 1:
            if self._frame_resident[index]:
                real = self._frame_pages[index]
                noise = self._noise()
                self._frame_resident[index] = False
                used -= real
                self.stats.pages_swapped_out += real
                self.stats.noise_pages += noise
                event = SwapEvent("out", real + noise, real, sim_time_us)
                self.stats.swap_events.append(event)
                events.append(event)
            index += 1
        return events

    # -- introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._frame_pages)

    @property
    def resident_pages(self) -> int:
        return self._resident_pages()

    def reset(self) -> None:
        """Step 10: clear all on-chip memories on bundle release."""
        self._frame_pages.clear()
        self._frame_resident.clear()
        self._frame_spilled_pages.clear()


class L3PageVault:
    """Layer-3 page protection with real AEAD bytes (optional).

    :class:`Layer2CallStack` tracks swap *counts* only — enough for the
    timing and obliviousness analyses.  This vault gives the layer-3
    boundary actual ciphertext traffic: pages swapped out are sealed in
    one batched AEAD pass (:func:`~repro.crypto.suite.seal_blocks`
    shares a single CTR keystream computation across the whole swap
    under AES-GCM), pages swapped in are verified-and-opened the same
    way, with AAD binding ``page_index || epoch`` so a replayed page
    fails authentication.  Not wired into the call stack by default;
    ``perf-bench`` and the L3 tests attach one explicitly.
    """

    def __init__(
        self,
        key: bytes,
        cipher_factory=Blake2Aead,
        decrypt_memo_blocks: int | None = None,
    ) -> None:
        self._cipher = cipher_factory(key)
        self.memo = None
        if decrypt_memo_blocks:
            from repro.perf.memo import MemoizedAead

            self.memo = MemoizedAead(self._cipher, decrypt_memo_blocks)
            self._cipher = self.memo
        self._nonce = 0
        self.pages_sealed = 0
        self.pages_opened = 0

    @staticmethod
    def _page_aad(page_index: int, epoch: int) -> bytes:
        return page_index.to_bytes(8, "big") + epoch.to_bytes(8, "big")

    def seal_pages(
        self, pages: list[bytes], epoch: int = 0, first_index: int = 0
    ) -> list[bytes]:
        """Seal a swap-out: one blob (``nonce || ciphertext || tag``) per page."""
        items = []
        for offset, page in enumerate(pages):
            if len(page) > PAGE_BYTES:
                raise ValueError(f"page is {len(page)} bytes, limit {PAGE_BYTES}")
            self._nonce += 1
            items.append((
                self._nonce.to_bytes(12, "big"),
                page.ljust(PAGE_BYTES, b"\x00"),
                self._page_aad(first_index + offset, epoch),
            ))
        sealed = seal_blocks(self._cipher, items)
        self.pages_sealed += len(items)
        return [nonce + blob for (nonce, _, _), blob in zip(items, sealed)]

    def open_pages(
        self, blobs: list[bytes], epoch: int = 0, first_index: int = 0
    ) -> list[bytes]:
        """Open a swap-in; raises before returning anything on any bad tag."""
        items = [
            (blob[:12], blob[12:], self._page_aad(first_index + index, epoch))
            for index, blob in enumerate(blobs)
        ]
        pages = open_blocks(self._cipher, items)
        self.pages_opened += len(items)
        return pages


class WorldStateCache:
    """The 4 KB layer-1 world-state cache: 64 records, LRU.

    Caches account headers and storage records so that repeated access
    to the same data is local (no ORAM query) — the behaviour behind the
    paper's Figure 5 "all data found locally" comparison.  Cleared when
    the HEVM is released (step 10).
    """

    def __init__(self, capacity_records: int = WORLD_STATE_CACHE_RECORDS) -> None:
        self.capacity = capacity_records
        self._records: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> object | None:
        if key in self._records:
            self._records.move_to_end(key)
            self.hits += 1
            return self._records[key]
        self.misses += 1
        return None

    def put(self, key: tuple, value: object) -> None:
        self._records[key] = value
        self._records.move_to_end(key)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)

    def clear(self) -> None:
        self._records.clear()


class CodeCache:
    """The 64 KB layer-1 code partition, holding 1 KB code pages (LRU)."""

    def __init__(self, capacity_bytes: int = L1_PARTITIONS["code"]) -> None:
        self.capacity_pages = capacity_bytes // PAGE_BYTES
        self._pages: OrderedDict[tuple, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, address: bytes, page_index: int) -> bytes | None:
        key = (address, page_index)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return self._pages[key]
        self.misses += 1
        return None

    def put(self, address: bytes, page_index: int, page: bytes) -> None:
        key = (address, page_index)
        self._pages[key] = page
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)

    def clear(self) -> None:
        self._pages.clear()
