"""Statistical attacks and obliviousness tests.

Implements the adversary's toolbox and the defender's acceptance tests:

* :func:`frequency_attack` — the §I strawman-breaker: map deterministic
  encrypted handles to plaintext keys by access-frequency rank.  It
  succeeds against :class:`~repro.oram.encrypted_store.EncryptedKvStore`
  and is information-theoretically impossible against Path ORAM (every
  access is a fresh uniform path).
* :func:`path_uniformity_pvalue` — chi-square test that the ORAM's
  physical leaf sequence is uniform.
* :func:`repeated_access_correlation` — do repeated accesses to the
  same logical key hit correlated paths?  (They must not.)
* :func:`QueryTypeClassifier` — the §IV-D adversary that tries to tell
  code queries from storage queries using inter-arrival gaps; prefetch
  smoothing should push its accuracy to chance.
* :func:`size_leakage` — mutual-information estimate between true frame
  sizes and the noised swap counts (attack A5).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass


def frequency_attack(
    observed_handles: list[bytes], true_frequency_ranking: list[bytes]
) -> float:
    """Frequency-analysis attack accuracy.

    ``observed_handles`` is the adversary's trace of (stable) handles;
    ``true_frequency_ranking`` is the plaintext keys ordered by their
    public on-chain access frequency (most frequent first) — knowledge
    the adversary gets for free because blocks are public.  Returns the
    fraction of rank positions where the handle ranking matches the
    plaintext ranking, i.e. the adversary's de-anonymization accuracy.
    """
    if not observed_handles or not true_frequency_ranking:
        return 0.0
    handle_counts = Counter(observed_handles)
    observed_ranking = [handle for handle, _ in handle_counts.most_common()]
    correct = 0
    # The adversary guesses: i-th most frequent handle = i-th most
    # frequent plaintext key.  Score against the true mapping, which by
    # construction in our benchmarks is key -> handle(key).
    for rank, handle in enumerate(observed_ranking):
        if rank < len(true_frequency_ranking):
            if handle == true_frequency_ranking[rank]:
                correct += 1
    return correct / len(true_frequency_ranking)


def path_uniformity_pvalue(leaves: list[int], leaf_count: int, bins: int = 16) -> float:
    """Chi-square p-value for 'leaf choices are uniform'.

    Small p (< 0.01) means the physical access pattern is biased and
    potentially leaks; Path ORAM traces should comfortably pass.
    """
    if len(leaves) < bins * 5:
        raise ValueError("need at least 5 expected observations per bin")
    from scipy.stats import chisquare

    counts = [0] * bins
    for leaf in leaves:
        counts[leaf * bins // leaf_count] += 1
    return float(chisquare(counts).pvalue)


def repeated_access_correlation(leaf_pairs: list[tuple[int, int]], leaf_count: int) -> float:
    """P(same leaf twice) for repeated accesses to one logical key.

    For an oblivious store this equals 1/leaf_count in expectation; a
    broken store (e.g. no remap) returns ~1.0.  Returns the observed
    collision rate normalized by the chance rate (≈1.0 is good, ≫1 bad).
    """
    if not leaf_pairs:
        return 0.0
    collisions = sum(1 for a, b in leaf_pairs if a == b)
    chance = len(leaf_pairs) / leaf_count
    if chance == 0:
        return float("inf")
    return collisions / chance


@dataclass
class QueryTypeClassifier:
    """Threshold classifier on inter-arrival gaps (the §IV-D adversary).

    Intuition: without prefetch smoothing, code pages arrive in rapid
    bursts (small gaps) while storage queries are sporadic (large gaps).
    The classifier learns a single gap threshold on labeled training
    data and is scored on held-out accuracy; 0.5 = chance.
    """

    threshold_us: float = 0.0

    def fit(self, gaps_us: list[float], labels: list[bool]) -> "QueryTypeClassifier":
        """Labels: True = code query.  Learns the best split point."""
        if len(gaps_us) != len(labels) or not gaps_us:
            raise ValueError("need equal-length, non-empty training data")
        candidates = sorted(set(gaps_us))
        best_acc, best_thr = 0.0, candidates[0]
        for threshold in candidates:
            # Predict "code" when the gap is below the threshold.
            acc = sum(
                1 for gap, is_code in zip(gaps_us, labels)
                if (gap <= threshold) == is_code
            ) / len(labels)
            acc = max(acc, 1.0 - acc)  # allow the inverted rule
            if acc > best_acc:
                best_acc, best_thr = acc, threshold
        self.threshold_us = best_thr
        return self

    def accuracy(self, gaps_us: list[float], labels: list[bool]) -> float:
        if not gaps_us:
            return 0.0
        direct = sum(
            1 for gap, is_code in zip(gaps_us, labels)
            if (gap <= self.threshold_us) == is_code
        ) / len(labels)
        return max(direct, 1.0 - direct)


def mutual_information(xs: list[int], ys: list[int]) -> float:
    """Plug-in MI estimate (bits) between two discrete sequences."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("need equal-length, non-empty sequences")
    n = len(xs)
    joint = Counter(zip(xs, ys))
    px = Counter(xs)
    py = Counter(ys)
    mi = 0.0
    for (x, y), count in joint.items():
        p_xy = count / n
        mi += p_xy * math.log2(p_xy / ((px[x] / n) * (py[y] / n)))
    return max(0.0, mi)


def size_leakage(true_sizes: list[int], observed_sizes: list[int]) -> float:
    """Bits of information the swap bus leaks about true frame sizes.

    Compares MI(true, observed) to the entropy of the true sizes; the
    returned ratio is 1.0 for a perfect leak (no noise) and near 0 when
    the pre-evict/pre-load noise dominates.
    """
    if not true_sizes:
        return 0.0
    mi = mutual_information(true_sizes, observed_sizes)
    n = len(true_sizes)
    px = Counter(true_sizes)
    entropy = -sum((c / n) * math.log2(c / n) for c in px.values())
    if entropy == 0:
        return 0.0
    return mi / entropy
