"""Adversary models and statistical obliviousness tests."""

from repro.security.analysis import (
    QueryTypeClassifier,
    frequency_attack,
    mutual_information,
    path_uniformity_pvalue,
    repeated_access_correlation,
    size_leakage,
)
from repro.security.observer import AccessPatternObserver, SwapBusObserver

__all__ = [
    "AccessPatternObserver",
    "QueryTypeClassifier",
    "SwapBusObserver",
    "frequency_attack",
    "mutual_information",
    "path_uniformity_pvalue",
    "repeated_access_correlation",
    "size_leakage",
]
