"""Adversary observers: exactly what the SP can see, and nothing more.

The threat model gives the SP the ORAM server's physical access trace
(A7), the layer-3 swap bus (A5), and message timing.  These observers
collect those views so the statistical attacks in
:mod:`repro.security.analysis` can be run against real traces produced
by the system — the empirical counterpart of the paper's §V arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.memory_layers import SwapEvent
from repro.oram.server import OramServer, PathAccessEvent


@dataclass
class AccessPatternObserver:
    """Taps an ORAM server; records (time, leaf) for every access."""

    events: list[PathAccessEvent] = field(default_factory=list)

    def attach(self, server: OramServer) -> "AccessPatternObserver":
        server.add_observer(self.events.append)
        return self

    @property
    def leaves(self) -> list[int]:
        return [event.leaf for event in self.events]

    @property
    def times_us(self) -> list[float]:
        return [event.sim_time_us for event in self.events]

    def inter_arrival_us(self) -> list[float]:
        times = self.times_us
        return [b - a for a, b in zip(times, times[1:])]

    def clear(self) -> None:
        self.events.clear()


@dataclass
class SwapBusObserver:
    """Collects the adversary-visible layer-3 swap events.

    Only ``direction``, ``page_count`` (noise included) and time are
    readable; ``real_pages`` is ground truth used by the analysis to
    quantify what the adversary could NOT recover.
    """

    events: list[SwapEvent] = field(default_factory=list)

    def ingest(self, events: list[SwapEvent]) -> None:
        self.events.extend(events)

    def observed_sizes(self) -> list[int]:
        return [event.page_count for event in self.events]

    def true_sizes(self) -> list[int]:
        return [event.real_pages for event in self.events]
