"""Comparison baselines: Geth (software node) and TSC-VEE (TrustZone VEE)."""

from repro.baselines.geth import BaselineRun, GethSimulator
from repro.baselines.tscvee import TscVeeSimulator, UnsupportedContractCall

__all__ = [
    "BaselineRun",
    "GethSimulator",
    "TscVeeSimulator",
    "UnsupportedContractCall",
]
