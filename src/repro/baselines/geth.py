"""The Geth baseline: software EVM with all data prefetched in RAM.

Functionally identical to the HEVM (same interpreter core), timed with
the software per-opcode cost model calibrated to the paper's Geth box
(i7-12700 @ 4.35 GHz, evaluation-set data pre-loaded into main memory,
never competing with the ORAM server).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm.executor import TransactionResult, execute_transaction
from repro.evm.interpreter import ChainContext
from repro.evm.tracer import CountingTracer
from repro.hardware.timing import CostModel
from repro.state.backend import StateBackend
from repro.state.blocks import Transaction
from repro.state.journal import JournaledState


@dataclass
class BaselineRun:
    """Result + simulated time of one baseline transaction."""

    result: TransactionResult
    time_us: float
    counts: dict[str, int]


class GethSimulator:
    """Per-transaction Geth timing over the shared functional EVM."""

    def __init__(self, backend: StateBackend, cost: CostModel | None = None) -> None:
        self._backend = backend
        self._cost = cost or CostModel()
        self._state = JournaledState(backend)

    def reset_state(self) -> None:
        self._state = JournaledState(self._backend)

    def execute(
        self,
        chain: ChainContext,
        tx: Transaction,
        charge_fees: bool = True,
    ) -> BaselineRun:
        tracer = CountingTracer()
        result = execute_transaction(
            self._state, chain, tx, tracer=tracer, charge_fees=charge_fees
        )
        time_us = self._cost.geth_tx_fixed_us
        for group, count in tracer.counts.by_group.items():
            time_us += self._cost.geth_instruction_us(group, count)
        return BaselineRun(result, time_us, dict(tracer.counts.by_group))
