"""The TSC-VEE baseline (Jian et al., TPDS'23), modeled from its paper.

TSC-VEE runs a *single* Confidential Smart Contract inside TrustZone:
all of the contract's bytecode and storage records are prefetched into
secure memory before execution, so every access is local — but
cross-account contract calls are unsupported and the whole world state
cannot fit.  The model enforces both properties: it refuses transactions
whose call tree leaves the prefetched contract, and it times execution
with per-op costs close to the HEVM's (Figure 5 shows no significant
difference on local-hit workloads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.geth import BaselineRun
from repro.evm.executor import execute_transaction
from repro.evm.interpreter import ChainContext
from repro.evm.tracer import CountingTracer, MultiTracer, Tracer
from repro.hardware.timing import CostModel
from repro.state.account import Address
from repro.state.backend import StateBackend
from repro.state.blocks import Transaction
from repro.state.journal import JournaledState


class UnsupportedContractCall(Exception):
    """TSC-VEE cannot call outside the prefetched contract."""


class _CallBoundaryTracer(Tracer):
    """Rejects frames whose code address leaves the allowed set."""

    def __init__(self, allowed: set[Address]) -> None:
        self._allowed = allowed

    def on_frame_enter(self, frame, kind: str) -> None:
        code_address = frame.message.code_address
        if code_address not in self._allowed:
            raise UnsupportedContractCall(
                f"TSC-VEE cannot execute foreign contract {code_address.hex()}"
            )


class TscVeeSimulator:
    """Single-contract TrustZone VEE with prefetch-everything semantics."""

    def __init__(
        self,
        backend: StateBackend,
        contract: Address,
        cost: CostModel | None = None,
        prefetch_time_us: float = 1_200.0,
    ) -> None:
        self._backend = backend
        self._cost = cost or CostModel()
        self.contract = contract
        # Precompiles stay callable; everything else is out of bounds.
        from repro.evm.precompiles import PRECOMPILES

        self._allowed = {contract} | set(PRECOMPILES)
        self._state = JournaledState(backend)
        self.prefetch_time_us = prefetch_time_us
        self._prefetched = False

    def execute(
        self,
        chain: ChainContext,
        tx: Transaction,
        charge_fees: bool = True,
    ) -> BaselineRun:
        if tx.to != self.contract and tx.to is not None:
            raise UnsupportedContractCall(
                "transaction does not target the prefetched contract"
            )
        counting = CountingTracer()
        sender_allowed = self._allowed | {tx.sender, tx.to or b""}
        boundary = _CallBoundaryTracer(sender_allowed)
        result = execute_transaction(
            self._state,
            chain,
            tx,
            tracer=MultiTracer(boundary, counting),
            charge_fees=charge_fees,
        )
        time_us = 0.0
        if not self._prefetched:
            time_us += self.prefetch_time_us  # one-time bytecode+storage load
            self._prefetched = True
        for group, count in counting.counts.by_group.items():
            time_us += self._cost.tscvee_instruction_us(group, count)
        return BaselineRun(result, time_us, dict(counting.counts.by_group))
