"""SP capacity planning with the fleet simulator (§VI-D in practice).

An SP wants to know: how many HarDTAPE chips can one ORAM server carry,
and what response times will users see as the fleet grows?  This example
measures real transaction profiles from the pipeline, then sweeps fleet
sizes through the discrete-event model — the dynamic version of the
paper's ⌊630 µs / 25 µs⌋ = 25 HEVMs/server bound.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.hardware.fleet import (
    FleetSimulator,
    profiles_from_breakdowns,
    saturation_point,
)
from repro.workloads import EvaluationSetConfig, build_evaluation_set

ETHEREUM_TPS = 17.0


def main() -> None:
    print("measuring transaction profiles from the live pipeline...")
    evalset = build_evaluation_set(EvaluationSetConfig(blocks=2, txs_per_block=6))
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    breakdowns = []
    for tx in evalset.transactions:
        _, _, per_tx = client.pre_execute(service, session, [tx])
        breakdowns.extend(per_tx)
    profiles = profiles_from_breakdowns(breakdowns)
    mean_queries = sum(p.oram_queries for p in profiles) / len(profiles)
    print(f"  {len(profiles)} profiles; mean {mean_queries:.1f} ORAM "
          f"queries per transaction\n")

    sim = FleetSimulator(profiles)
    print(f"{'HEVMs':>6} {'chips':>6} {'tx/s':>8} {'vs Mainnet':>11} "
          f"{'server util':>12} {'queue wait':>11}")
    results = sim.sweep([3, 6, 12, 24, 48, 96, 144], transactions_per_hevm=15)
    for result in results:
        chips = result.hevm_count // 3
        verdict = (
            f"{result.throughput_tps / ETHEREUM_TPS:.0f}x"
            if result.throughput_tps >= ETHEREUM_TPS else "below!"
        )
        print(f"{result.hevm_count:>6} {chips:>6} "
              f"{result.throughput_tps:>8.1f} {verdict:>11} "
              f"{result.server_utilization:>11.0%} "
              f"{result.mean_queue_wait_us:>9.0f}µs")

    knee = saturation_point(results, threshold=0.9)
    print(f"\nthe ORAM server saturates around {knee} HEVMs "
          f"({knee // 3} chips); beyond that, add servers, not chips.")
    print("(the paper's analytic bound for its measured 630 µs query gap "
          "was 25 HEVMs — same mechanism, different gap.)")


if __name__ == "__main__":
    main()
