"""Scam detection: pre-execute a deposit/withdraw bundle on a honeypot.

The paper's motivating scenario (§I): scam contracts — phishing, Ponzi,
honeypots — defraud users who cannot evaluate a contract's behaviour
before sending funds.  A honeypot advertises deposit()/withdraw() but a
hidden owner check makes withdraw revert for everyone else.

A victim who pre-executes the *whole strategy as one bundle* sees the
withdraw fail in the trace and keeps their funds; the on-chain state is
never touched.

Run:  python examples/honeypot_detection.py
"""

from __future__ import annotations

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.node import EthereumNode
from repro.state import Account, Transaction, to_address
from repro.workloads.contracts import honeypot


def main() -> None:
    victim = to_address(0x7157)
    scammer = to_address(0xBAD)
    trap = to_address(0x7A9)
    node = EthereumNode(
        genesis_accounts={
            victim: Account(balance=10**20),
            scammer: Account(balance=10**20),
            trap: Account(
                code=honeypot.honeypot_runtime(),
                # The trap: slot 1 holds the hidden owner.
                storage={honeypot.OWNER_SLOT: int.from_bytes(scammer, "big")},
            ),
        }
    )
    node.add_block([])

    service = HarDTAPEService(node, SecurityFeatures.from_level("full"))
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)

    print("the victim's intended strategy: deposit 1 ETH, withdraw it back")
    strategy = [
        Transaction(sender=victim, to=trap,
                    data=honeypot.deposit_calldata(), value=10**18),
        Transaction(sender=victim, to=trap,
                    data=honeypot.withdraw_calldata()),
    ]
    report, _, _ = client.pre_execute(service, session, strategy)

    deposit, withdraw = report.traces
    print(f"  deposit : status={deposit.status} (funds would be accepted)")
    print(f"  withdraw: status={withdraw.status} "
          f"error={withdraw.error!r}")
    assert deposit.status == 1 and withdraw.status == 0

    print("\nverdict: the withdraw REVERTS -- this contract is a honeypot.")
    print("the victim aborts; their on-chain balance is untouched:")
    balance = node.state_at(node.height).accounts[victim].balance
    print(f"  victim balance: {balance / 10**18:.0f} ETH")

    # The scammer, for contrast, can pre-execute their own exit.
    exit_report, _, _ = client.pre_execute(
        service,
        PreExecutionClient(service.manufacturer.root_public_key).connect(service),
        [
            Transaction(sender=scammer, to=trap,
                        data=honeypot.deposit_calldata(), value=1),
            Transaction(sender=scammer, to=trap,
                        data=honeypot.withdraw_calldata()),
        ],
    )
    print(f"\n(the hidden owner's withdraw pre-executes with "
          f"status={exit_report.traces[1].status} — the trap is one-sided)")


if __name__ == "__main__":
    main()
