"""MEV privacy: what the service provider sees while you pre-execute.

The paper's core threat (§I): a user simulating a DEX swap leaks *which
token they are about to trade* through world-state access patterns, and
the SP frontruns them.  This example plays both roles:

* the user pre-executes swaps that heavily favour one pool,
* the SP watches everything it legitimately can — the ORAM server's
  physical access trace — and mounts a frequency-analysis attack.

With HarDTAPE's Path ORAM the attack recovers nothing; against a
baseline encrypted-but-deterministic store the same workload is fully
de-anonymized.

Run:  python examples/frontrunning_privacy.py
"""

from __future__ import annotations

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.oram.encrypted_store import EncryptedKvStore
from repro.security.analysis import frequency_attack, path_uniformity_pvalue
from repro.security.observer import AccessPatternObserver
from repro.state import Transaction
from repro.workloads import EvaluationSetConfig, build_evaluation_set
from repro.workloads.contracts import erc20


def main() -> None:
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=1, txs_per_block=4)
    )
    population = evalset.population
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )

    # The SP's tap on its own ORAM server: every physical path access.
    spy = AccessPatternObserver().attach(service.oram_server)

    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    user = population.users[0]

    print("the user's secret intention: they only care about token A")
    spy.clear()
    hot = Transaction(sender=user, to=population.token_a,
                      data=erc20.balance_of_calldata(user))
    cold = Transaction(sender=user, to=population.token_b,
                       data=erc20.balance_of_calldata(user))
    for _ in range(12):
        client.pre_execute(service, session, [hot])
    client.pre_execute(service, session, [cold])

    leaves = spy.leaves
    print(f"\nthe SP observed {len(leaves)} ORAM path accesses")
    pvalue = path_uniformity_pvalue(leaves, service.oram_server.leaf_count, bins=8)
    print(f"chi-square uniformity p-value: {pvalue:.3f} "
          f"({'looks uniform — nothing to learn' if pvalue > 0.01 else 'BIASED'})")

    handles = [leaf.to_bytes(4, "big") for leaf in leaves]
    accuracy = frequency_attack(handles, [b"token-a-page", b"token-b-page"])
    print(f"frequency-analysis accuracy vs HarDTAPE: {accuracy:.0%}")

    # --- the strawman the paper rules out -------------------------------
    print("\nsame workload against an encrypted-but-deterministic store:")
    store = EncryptedKvStore(b"sp-visible-key-material-32-bytes")
    store.put(b"token-a-page", b"...")
    store.put(b"token-b-page", b"...")
    warmup = len(store.trace.events)
    for _ in range(12):
        store.get(b"token-a-page")
    store.get(b"token-b-page")
    trace = [event.handle for event in store.trace.events[warmup:]]
    truth = [store._handle(b"token-a-page"), store._handle(b"token-b-page")]
    accuracy = frequency_attack(trace, truth)
    print(f"frequency-analysis accuracy vs encrypted store: {accuracy:.0%}")
    print("\nthe deterministic store leaks the user's target token; the "
          "ORAM hides it.")


if __name__ == "__main__":
    main()
