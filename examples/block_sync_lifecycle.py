"""Block synchronization lifecycle, including a tampering SP.

Workflow step 11: when new blocks land on-chain, HarDTAPE fetches the
touched accounts from the (untrusted) Node, verifies Merkle proofs
against the block's state root, and writes the pages into the ORAM.
This example advances the chain, syncs, shows pre-execution tracking the
new tip — and then plays a malicious Node that serves a tampered balance,
which the Hypervisor rejects (attack A6).

Run:  python examples/block_sync_lifecycle.py
"""

from __future__ import annotations

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.hypervisor.sync import SyncError
from repro.state import Transaction
from repro.workloads import EvaluationSetConfig, build_evaluation_set
from repro.workloads.contracts import erc20


def main() -> None:
    evalset = build_evaluation_set(EvaluationSetConfig(blocks=1, txs_per_block=2))
    population = evalset.population
    node = evalset.node
    service = HarDTAPEService(
        node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    user, peer = population.users[0], population.users[1]

    balance_query = Transaction(
        sender=user, to=population.token_a,
        data=erc20.balance_of_calldata(peer),
    )
    report, _, _ = client.pre_execute(service, session, [balance_query])
    before = int.from_bytes(report.traces[0].return_data, "big")
    print(f"synced height {service.synced_height}: peer balance = {before:,}")

    # --- a new block lands on-chain ---------------------------------------
    print("\na new block transfers 9,999 tokens to the peer on-chain...")
    node.add_block([
        Transaction(sender=user, to=population.token_a,
                    data=erc20.transfer_calldata(peer, 9_999)),
    ])
    synced = service.sync_new_blocks()
    stats = service.devices[0].hypervisor.synchronizer.stats
    print(f"synchronized {synced} block(s): "
          f"{stats.accounts_verified} accounts verified, "
          f"{stats.pages_written} ORAM pages written")

    report, _, _ = client.pre_execute(service, session, [balance_query])
    after = int.from_bytes(report.traces[0].return_data, "big")
    print(f"synced height {service.synced_height}: peer balance = {after:,}")
    assert after == before + 9_999

    # --- the SP's Node tries to lie ------------------------------------------
    print("\nnow the Node serves a tampered update (inflated balance)...")
    node.add_block([
        Transaction(sender=user, to=population.token_a,
                    data=erc20.transfer_calldata(peer, 1)),
    ])
    target = node.height
    updates = node.sync_updates_for(target)
    updates[0].account.balance += 10**18  # the lie
    state_root = node.block_at(target).block.header.state_root
    try:
        service.devices[0].hypervisor.sync_block(state_root, updates)
    except SyncError as exc:
        print(f"Hypervisor rejected the block: {exc}")
    else:
        raise AssertionError("tampered update was accepted!")
    print("\nonly Merkle-proof-verified data ever enters the ORAM (A6 defeated).")


if __name__ == "__main__":
    main()
