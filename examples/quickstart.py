"""Quickstart: stand up a HarDTAPE service and pre-execute a bundle.

Walks the paper's full workflow: a chain with an ERC-20 token, the SP's
service (ORAM server + one HarDTAPE device, all protections on), remote
attestation from the user side, and one pre-executed transfer bundle.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.node import EthereumNode
from repro.state import Account, Transaction, to_address
from repro.workloads.contracts import erc20


def main() -> None:
    # --- the chain: a token with two funded users -----------------------
    alice, bob = to_address(0xA11CE), to_address(0xB0B)
    token = to_address(0x70CE)
    node = EthereumNode(
        genesis_accounts={
            alice: Account(balance=10**20),
            bob: Account(balance=10**20),
            token: Account(
                code=erc20.erc20_runtime(),
                storage={erc20.balance_slot(alice): 1_000_000},
            ),
        }
    )
    node.add_block([])  # seal one block so there is a tip to sync

    # --- the SP side: ORAM server + device, all protections on -----------
    service = HarDTAPEService(node, SecurityFeatures.from_level("full"))
    print(f"service up: {len(service.devices)} device(s), "
          f"{service.devices[0].config.hevm_count} HEVMs, "
          f"ORAM height {service.oram_server.height}")

    # --- the user side: attest, then pre-execute -------------------------
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    print("attestation verified; secure channel established")

    bundle = [
        Transaction(sender=alice, to=token,
                    data=erc20.transfer_calldata(bob, 250)),
        Transaction(sender=bob, to=token,
                    data=erc20.balance_of_calldata(bob)),
    ]
    report, elapsed_us, breakdowns = client.pre_execute(service, session, bundle)

    print(f"\nbundle simulated in {elapsed_us / 1000:.1f} ms (simulated time)")
    for index, trace in enumerate(report.traces):
        print(f"  tx{index}: status={trace.status} gas={trace.gas_used} "
              f"return=0x{trace.return_data.hex()}")
    assert int.from_bytes(report.traces[1].return_data, "big") == 250
    print("\nthe second tx observed the first one's transfer -- and none of "
          "it was written on-chain:")
    onchain = node.state_at(node.height).accounts[token].storage.get(
        erc20.balance_slot(bob), 0
    )
    print(f"  bob's on-chain token balance is still {onchain}")


if __name__ == "__main__":
    main()
