"""HFT strategy testing: repeated swaps against the same pool.

The paper's 'practical case' (§VI-C): HFT designers call the same
contract on the same storage records over and over while tuning a
strategy.  Within one bundle, the first transaction pays the ORAM
fetches and the rest find everything in the HEVM's layer-1 cache — the
local regime where HarDTAPE matches TSC-VEE and Geth (Figure 5).
Between bundles the core is scrubbed (workflow step 10), so each
separate bundle pays the ORAM cost again: isolation is per session,
caching is per bundle.

This example quotes each swap size as its own bundle (independent
quotes against unmodified reserves), then re-runs the sweep as ONE
bundle to show the cache effect.

Run:  python examples/hft_strategy_testing.py
"""

from __future__ import annotations

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.state import Transaction
from repro.workloads import EvaluationSetConfig, build_evaluation_set
from repro.workloads.contracts import dex


def main() -> None:
    evalset = build_evaluation_set(EvaluationSetConfig(blocks=1, txs_per_block=2))
    population = evalset.population
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    trader = population.users[0]

    reserves = evalset.node.state_at(evalset.node.height).accounts[
        population.pool
    ].storage
    reserve_a, reserve_b = reserves[0], reserves[1]
    print(f"pool reserves: A={reserve_a:,}  B={reserve_b:,}")
    print("sweeping swap sizes to find the best execution...\n")

    print(f"{'swap in':>12} {'quoted out':>12} {'slippage':>9} {'sim time':>10}")
    best = None
    for amount_in in (10_000, 50_000, 250_000, 1_000_000, 5_000_000):
        tx = Transaction(
            sender=trader, to=population.pool,
            data=dex.swap_calldata(amount_in),
        )
        report, elapsed_us, breakdowns = client.pre_execute(
            service, session, [tx]
        )
        trace = report.traces[0]
        assert trace.status == 1, trace.error
        out = int.from_bytes(trace.return_data, "big")
        ideal = amount_in * reserve_b // reserve_a
        slippage = 1.0 - out / ideal if ideal else 0.0
        oram_ms = (breakdowns[0].oram_storage_us + breakdowns[0].oram_code_us) / 1000
        print(f"{amount_in:>12,} {out:>12,} {slippage:>8.2%} "
              f"{elapsed_us / 1000:>8.1f}ms  (oram {oram_ms:.1f}ms)")
        if best is None or slippage < best[2]:
            best = (amount_in, out, slippage)

    print("\neach bundle pays the full ORAM cost: the core is scrubbed")
    print("between bundles (step 10), so nothing leaks across sessions.")

    # The same sweep as ONE bundle: only the first tx pays the ORAM.
    bundle = [
        Transaction(sender=trader, to=population.pool,
                    data=dex.swap_calldata(amount_in))
        for amount_in in (10_000, 50_000, 250_000, 1_000_000, 5_000_000)
    ]
    report, elapsed_us, breakdowns = client.pre_execute(
        service, session, bundle
    )
    assert all(trace.status == 1 for trace in report.traces)
    oram_per_tx = [
        (b.oram_storage_us + b.oram_code_us) / 1000 for b in breakdowns
    ]
    print("\nthe same five swaps as ONE bundle (sequential quotes):")
    print("  per-tx ORAM ms:", ", ".join(f"{v:.1f}" for v in oram_per_tx))
    print(f"  bundle total: {elapsed_us / 1000:.1f}ms "
          f"vs {5 * 116:.0f}ms for five separate bundles")
    print("\nafter the first transaction the pool and tokens are warm in")
    print("layer 1: later swaps run at local speed (the Figure 5 regime).")
    print(f"\nchosen size: {best[0]:,} (slippage {best[2]:.2%}) — and the SP")
    print("learned neither the pool nor the direction while you decided.")


if __name__ == "__main__":
    main()
