"""Shared fixtures for the HarDTAPE reproduction test suite."""

from __future__ import annotations

import pytest

from repro.evm.interpreter import ChainContext
from repro.state.account import to_address
from repro.state.backend import DictBackend
from repro.state.blocks import BlockHeader
from repro.state.journal import JournaledState
from repro.workloads.generator import EvaluationSetConfig, build_evaluation_set

ALICE = to_address(0xA11CE)
BOB = to_address(0xB0B)
COINBASE = to_address(0xC01BA5E)


@pytest.fixture
def header() -> BlockHeader:
    return BlockHeader(
        number=100,
        parent_hash=b"\x11" * 32,
        state_root=b"\x22" * 32,
        timestamp=1_700_000_000,
        coinbase=COINBASE,
    )


@pytest.fixture
def chain(header) -> ChainContext:
    return ChainContext(header)


@pytest.fixture
def backend() -> DictBackend:
    be = DictBackend()
    be.ensure(ALICE).balance = 10**21
    be.ensure(BOB).balance = 10**18
    return be


@pytest.fixture
def state(backend) -> JournaledState:
    return JournaledState(backend)


@pytest.fixture(scope="session")
def tiny_evalset():
    """A small but complete evaluation set, built once per session."""
    return build_evaluation_set(
        EvaluationSetConfig(blocks=3, txs_per_block=6, profile_contract_count=10)
    )
