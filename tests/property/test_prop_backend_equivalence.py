"""Property: the oblivious backend is observationally equivalent to a
plain backend for any synced world state and any read sequence."""

from hypothesis import given, settings, strategies as st

from repro.oram.adapter import ObliviousStateBackend
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer
from repro.state import Account, DictBackend, to_address

addresses = st.integers(min_value=1, max_value=6).map(to_address)

accounts = st.builds(
    Account,
    balance=st.integers(min_value=0, max_value=2**100),
    nonce=st.integers(min_value=0, max_value=2**32),
    code=st.binary(max_size=2500),
    storage=st.dictionaries(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=2**128),
        max_size=8,
    ),
)

worlds = st.dictionaries(addresses, accounts, min_size=1, max_size=4)

reads = st.lists(
    st.tuples(
        addresses,
        st.sampled_from(["meta", "storage", "code", "page"]),
        st.integers(min_value=0, max_value=210),
    ),
    max_size=15,
)


@given(worlds, reads)
@settings(max_examples=30, deadline=None)
def test_oblivious_backend_equivalent_to_plain(world, read_ops):
    plain = DictBackend({a: acct.copy() for a, acct in world.items()})
    server = OramServer(height=7)
    client = PathOramClient(server, key=b"eq" + b"\x00" * 30)
    oblivious = ObliviousStateBackend(client)
    oblivious.sync_world({a: acct.copy() for a, acct in world.items()})

    for address, kind, key in read_ops:
        if kind == "meta":
            ours = oblivious.get_meta(address)
            theirs = plain.get_meta(address)
            assert (ours.balance, ours.nonce, ours.code_size) == (
                theirs.balance, theirs.nonce, theirs.code_size,
            )
            assert ours.code_hash == theirs.code_hash
        elif kind == "storage":
            assert oblivious.get_storage(address, key) == plain.get_storage(
                address, key
            )
        elif kind == "code":
            assert oblivious.get_code(address) == plain.get_code(address)
        else:
            page_index = key % 4
            assert oblivious.get_code_page(
                address, page_index
            ) == plain.get_code_page(address, page_index)
