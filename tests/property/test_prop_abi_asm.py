"""Property tests: ABI codec and assembler/disassembler round trips."""

from hypothesis import given, settings, strategies as st

from repro.evm.abi import decode, encode
from repro.evm.disassembler import disassemble
from repro.workloads.asm import assemble

# -- ABI ----------------------------------------------------------------------

_uint = st.integers(min_value=0, max_value=2**256 - 1)
_int = st.integers(min_value=-(2**255), max_value=2**255 - 1)
_address = st.binary(min_size=20, max_size=20)
_bytes = st.binary(max_size=100)
_bool = st.booleans()

_static_cases = st.one_of(
    st.tuples(st.just("uint256"), _uint),
    st.tuples(st.just("int256"), _int),
    st.tuples(st.just("address"), _address),
    st.tuples(st.just("bool"), _bool),
    st.tuples(st.just("bytes32"), st.binary(min_size=32, max_size=32)),
)

_dynamic_cases = st.one_of(
    st.tuples(st.just("bytes"), _bytes),
    st.tuples(
        st.just("string"),
        st.text(max_size=40).filter(lambda s: "\x00" not in s),
    ),
    st.tuples(st.just("uint256[]"), st.lists(_uint, max_size=6)),
    st.tuples(st.just("address[]"), st.lists(_address, max_size=4)),
)

_args = st.lists(st.one_of(_static_cases, _dynamic_cases), min_size=1, max_size=6)


@given(_args)
@settings(max_examples=120, deadline=None)
def test_abi_roundtrip(cases):
    types = [t for t, _ in cases]
    values = [v for _, v in cases]
    decoded = decode(types, encode(types, values))
    assert decoded == values


@given(_args)
@settings(max_examples=60, deadline=None)
def test_abi_head_is_word_aligned(cases):
    types = [t for t, _ in cases]
    values = [v for _, v in cases]
    encoded = encode(types, values)
    assert len(encoded) % 32 == 0
    assert len(encoded) >= 32 * len(types)


# -- assembler / disassembler -----------------------------------------------------

_mnemonics = st.sampled_from([
    "ADD", "MUL", "SUB", "POP", "MLOAD", "MSTORE", "SLOAD", "DUP1",
    "SWAP1", "CALLER", "STOP", "JUMPDEST", "RETURN", "PUSH0",
])

_items = st.lists(
    st.one_of(
        _mnemonics.map(lambda m: [m]),
        st.tuples(
            st.integers(min_value=1, max_value=32),
            st.integers(min_value=0),
        ).map(lambda t: [f"PUSH{t[0]}", t[1] % (1 << (8 * t[0]))]),
    ),
    min_size=1,
    max_size=30,
).map(lambda groups: [item for group in groups for item in group])


@given(_items)
@settings(max_examples=120, deadline=None)
def test_assemble_disassemble_roundtrip(items):
    code = assemble(items)
    rebuilt: list = []
    for instruction in disassemble(code):
        rebuilt.append(instruction.mnemonic)
        if instruction.immediate is not None:
            rebuilt.append(instruction.immediate)
    assert assemble(rebuilt) == code


@given(st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_disassemble_total_on_arbitrary_bytes(data):
    """Disassembly never crashes and covers every byte exactly once."""
    instructions = disassemble(data)
    covered = 0
    for instruction in instructions:
        assert instruction.offset == covered
        width = 1
        if instruction.immediate is not None and instruction.mnemonic.startswith("PUSH"):
            width += int(instruction.mnemonic[4:])
        covered += width
    # The last PUSH may declare more immediate bytes than remain.
    assert covered >= len(data)
