"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm
from repro.crypto.keccak import Keccak256, keccak256
from repro.crypto.suite import Blake2Aead, xor_bytes

settings.register_profile("crypto", deadline=None)
settings.load_profile("crypto")


@given(st.binary(max_size=512))
def test_keccak_incremental_equals_oneshot(data):
    hasher = Keccak256()
    midpoint = len(data) // 2
    hasher.update(data[:midpoint])
    hasher.update(data[midpoint:])
    assert hasher.digest() == keccak256(data)


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_keccak_injective_in_practice(a, b):
    if a != b:
        assert keccak256(a) != keccak256(b)


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_aes_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(
    st.binary(min_size=16, max_size=16),
    st.binary(min_size=12, max_size=12),
    st.binary(max_size=600),
    st.binary(max_size=64),
)
@settings(max_examples=40)
def test_gcm_roundtrip_with_aad(key, nonce, plaintext, aad):
    gcm = AesGcm(key)
    assert gcm.decrypt(nonce, gcm.encrypt(nonce, plaintext, aad), aad) == plaintext


@given(
    st.binary(min_size=32, max_size=32),
    st.binary(min_size=12, max_size=12),
    st.binary(max_size=2048),
)
def test_blake2_aead_roundtrip(key, nonce, plaintext):
    aead = Blake2Aead(key)
    assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext)) == plaintext


@given(
    st.binary(min_size=32, max_size=32),
    st.binary(min_size=12, max_size=12),
    st.binary(min_size=1, max_size=256),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0),
)
@settings(max_examples=50)
def test_blake2_aead_detects_any_flip(key, nonce, plaintext, xor_byte, position):
    from repro.crypto.gcm import AuthenticationError

    if xor_byte == 0:
        return
    aead = Blake2Aead(key)
    sealed = bytearray(aead.encrypt(nonce, plaintext))
    sealed[position % len(sealed)] ^= xor_byte
    try:
        recovered = aead.decrypt(nonce, bytes(sealed))
    except AuthenticationError:
        return
    raise AssertionError(f"tamper not detected: {recovered!r}")


@given(st.binary(min_size=1, max_size=128))
def test_xor_bytes_involution(data):
    key = bytes((i * 7 + 3) % 256 for i in range(len(data)))
    assert xor_bytes(xor_bytes(data, key), key) == data
