"""Differential testing: random programs vs a Python reference evaluator.

Hypothesis generates random straight-line stack programs (pushes,
arithmetic, comparisons, bitwise ops, DUP/SWAP); a tiny independent
Python evaluator computes the expected stack; the EVM must agree on the
final top-of-stack word.  This catches dispatch, operand-order, and
wrap-around bugs that example-based tests miss.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.evm import ChainContext, execute_transaction
from repro.state import (
    BlockHeader,
    DictBackend,
    JournaledState,
    Transaction,
    to_address,
)
from repro.workloads.asm import assemble

WORD = 2**256
MASK = WORD - 1
ALICE = to_address(0xA1)
TARGET = to_address(0xD1F)

_HEADER = BlockHeader(
    number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
    timestamp=0, coinbase=to_address(0xC0),
)


def _signed(value: int) -> int:
    return value - WORD if value >> 255 else value


# (mnemonic, arity, reference implementation) — top of stack is args[0].
_BINOPS = {
    "ADD": lambda a, b: (a + b) & MASK,
    "MUL": lambda a, b: (a * b) & MASK,
    "SUB": lambda a, b: (a - b) & MASK,
    "DIV": lambda a, b: a // b if b else 0,
    "MOD": lambda a, b: a % b if b else 0,
    "SDIV": lambda a, b: (
        0 if _signed(b) == 0 else (
            (abs(_signed(a)) // abs(_signed(b)))
            * (-1 if (_signed(a) < 0) != (_signed(b) < 0) else 1)
        ) & MASK
    ),
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "LT": lambda a, b: int(a < b),
    "GT": lambda a, b: int(a > b),
    "EQ": lambda a, b: int(a == b),
    "SLT": lambda a, b: int(_signed(a) < _signed(b)),
    "SGT": lambda a, b: int(_signed(a) > _signed(b)),
    "SHL": lambda shift, value: 0 if shift >= 256 else (value << shift) & MASK,
    "SHR": lambda shift, value: 0 if shift >= 256 else value >> shift,
}

_UNOPS = {
    "ISZERO": lambda a: int(a == 0),
    "NOT": lambda a: a ^ MASK,
}


class _Reference:
    """Independent straight-line stack evaluator."""

    def __init__(self) -> None:
        self.stack: list[int] = []

    def push(self, value: int) -> None:
        self.stack.append(value & MASK)

    def apply(self, op: str) -> None:
        if op in _BINOPS:
            a = self.stack.pop()
            b = self.stack.pop()
            self.stack.append(_BINOPS[op](a, b) & MASK)
        elif op in _UNOPS:
            self.stack.append(_UNOPS[op](self.stack.pop()) & MASK)
        elif op.startswith("DUP"):
            n = int(op[3:])
            self.stack.append(self.stack[-n])
        elif op.startswith("SWAP"):
            n = int(op[4:])
            self.stack[-1], self.stack[-1 - n] = (
                self.stack[-1 - n], self.stack[-1],
            )
        else:  # pragma: no cover - generator never emits others
            raise AssertionError(op)


@st.composite
def programs(draw):
    """A random program that always leaves ≥1 item on the stack."""
    ops: list = []
    reference = _Reference()
    # Seed the stack.
    for _ in range(draw(st.integers(2, 4))):
        value = draw(st.integers(0, MASK))
        ops += ["PUSH32", value]
        reference.push(value)
    step_count = draw(st.integers(1, 25))
    for _ in range(step_count):
        depth = len(reference.stack)
        choices = ["push"]
        if depth >= 2:
            choices += ["binop", "swap"]
        if depth >= 1:
            choices += ["unop", "dup"]
        kind = draw(st.sampled_from(choices))
        if kind == "push":
            value = draw(st.integers(0, MASK))
            ops += ["PUSH32", value]
            reference.push(value)
        elif kind == "binop":
            op = draw(st.sampled_from(sorted(_BINOPS)))
            ops.append(op)
            reference.apply(op)
        elif kind == "unop":
            op = draw(st.sampled_from(sorted(_UNOPS)))
            ops.append(op)
            reference.apply(op)
        elif kind == "dup":
            n = draw(st.integers(1, min(depth, 16)))
            ops.append(f"DUP{n}")
            reference.apply(f"DUP{n}")
        else:
            n = draw(st.integers(1, min(depth - 1, 16)))
            ops.append(f"SWAP{n}")
            reference.apply(f"SWAP{n}")
    return ops, reference.stack[-1]


@given(programs())
@settings(max_examples=120, deadline=None)
def test_random_programs_match_reference(case):
    ops, expected_top = case
    program = ops + ["PUSH0", "MSTORE", "PUSH1", 32, "PUSH0", "RETURN"]
    backend = DictBackend()
    backend.ensure(ALICE).balance = 10**18
    backend.ensure(TARGET).code = assemble(program)
    state = JournaledState(backend)
    result = execute_transaction(
        state, ChainContext(_HEADER), Transaction(sender=ALICE, to=TARGET)
    )
    assert result.success, result.error
    assert int.from_bytes(result.return_data, "big") == expected_top
