"""Properties of the consistent-hash ring: the scale-out contract.

A live fleet grows and shrinks by re-encrypting only the ORAM trees
whose pages move, so the ring must guarantee — for *any* topology and
key population, not just the benchmarked ones:

* adding a shard moves keys only **onto** the new shard;
* removing a shard moves only **that shard's** keys, spread over the
  survivors;
* the volume moved stays near the K/N minimum;
* placement is a pure function of (seed, shard ids, vnodes) — byte
  stable across processes and runs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sharding import ConsistentHashRing

pytestmark = pytest.mark.sharding

shard_sets = st.sets(st.integers(0, 31), min_size=1, max_size=8)
key_lists = st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=80)
seeds = st.binary(min_size=1, max_size=32)


@given(shards=shard_sets, keys=key_lists, new=st.integers(32, 63))
@settings(max_examples=120, deadline=None)
def test_adding_a_shard_only_gains_keys(shards, keys, new):
    before = ConsistentHashRing(shards)
    after = before.with_shard(new)
    for key in keys:
        a, b = before.shard_for(key), after.shard_for(key)
        assert b == a or b == new


@given(shards=st.sets(st.integers(0, 31), min_size=2, max_size=8), keys=key_lists)
@settings(max_examples=120, deadline=None)
def test_removing_a_shard_strands_only_its_keys(shards, keys):
    victim = min(shards)
    before = ConsistentHashRing(shards)
    after = before.without_shard(victim)
    for key in keys:
        a, b = before.shard_for(key), after.shard_for(key)
        if a != victim:
            assert b == a
        else:
            assert b != victim


@given(shards=shard_sets, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_placement_is_byte_stable(shards, seed):
    keys = [b"probe-%04d" % i for i in range(50)]
    first = ConsistentHashRing(shards, seed=seed)
    second = ConsistentHashRing(shards, seed=seed)
    assert first.table_digest() == second.table_digest()
    assert [first.shard_for(k) for k in keys] == [second.shard_for(k) for k in keys]


@given(n=st.integers(2, 12))
@settings(max_examples=12, deadline=None)
def test_movement_stays_near_the_k_over_n_minimum(n):
    # A fixed dense corpus so the bound is statistical, not adversarial.
    keys = [b"corpus-%05d" % i for i in range(2000)]
    before = ConsistentHashRing(range(n))
    after = before.with_shard(n)
    moved = sum(1 for k in keys if before.shard_for(k) != after.shard_for(k))
    minimum = len(keys) / (n + 1)
    assert moved <= 2.5 * minimum  # near-minimal movement, generous slack
    assert moved > 0  # the new shard actually takes load
