"""Property: journal replay is idempotent over any prefix.

Recovery may double-apply records after an ill-timed crash (e.g. the
checkpoint that superseded a journal prefix raced the crash), so the
replay semantics must make re-application harmless: for any record
sequence and any prefix of it, replaying ``prefix + sequence`` equals
replaying ``sequence`` alone, and replaying anything twice equals once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.recovery import journal
from repro.recovery.state import SessionRecord, TrustedState

pytestmark = pytest.mark.recovery

keys = st.binary(min_size=1, max_size=8)
payloads = st.binary(min_size=0, max_size=16)

lease_records = st.builds(
    lambda until: (journal.LEASE, journal.lease_payload(until)),
    st.integers(min_value=0, max_value=2**32),
)

access_records = st.builds(
    lambda stash, positions, versions, nonce: (
        journal.ACCESS,
        journal.access_payload(stash, positions, versions, nonce),
    ),
    st.dictionaries(keys, st.one_of(st.none(), payloads), max_size=4),
    st.dictionaries(keys, st.one_of(st.none(), st.integers(0, 63)), max_size=4),
    st.dictionaries(st.integers(0, 30), st.integers(0, 1000), max_size=4),
    st.integers(min_value=0, max_value=2**32),
)

session_records = st.builds(
    lambda sid, public, index, at: (
        journal.SESSION,
        journal.session_payload(
            SessionRecord(
                session_id=sid,
                user_public=public,
                device_index=index,
                established_at_us=float(at),
            )
        ),
    ),
    st.binary(min_size=4, max_size=16),
    st.binary(min_size=1, max_size=65),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=10**9),
)

root_records = st.builds(
    lambda root: (journal.ROOT, journal.root_payload(root)),
    st.binary(min_size=32, max_size=32),
)

records = st.one_of(lease_records, access_records, session_records, root_records)
sequences = st.lists(records, max_size=12)


def _digest(state: TrustedState) -> bytes:
    return state.encode()


@settings(max_examples=200, deadline=None)
@given(sequences, st.data())
def test_replaying_any_prefix_twice_equals_once(sequence, data):
    """replay(prefix + sequence) == replay(sequence) for any prefix of it."""
    cut = data.draw(st.integers(min_value=0, max_value=len(sequence)))
    prefix = sequence[:cut]
    once = journal.replay(TrustedState(), list(sequence))
    doubled = journal.replay(TrustedState(), prefix + list(sequence))
    assert _digest(doubled) == _digest(once)


@settings(max_examples=100, deadline=None)
@given(sequences)
def test_full_double_replay_equals_single(sequence):
    once = journal.replay(TrustedState(), list(sequence))
    twice = journal.replay(TrustedState(), list(sequence) + list(sequence))
    assert _digest(twice) == _digest(once)


@settings(max_examples=100, deadline=None)
@given(sequences)
def test_records_survive_the_wire_codec(sequence):
    """Seal-shaped round trip: encode/decode every record, same replay."""
    direct = journal.replay(TrustedState(), list(sequence))
    decoded = [
        journal.decode_record(journal.encode_record(kind, payload))
        for kind, payload in sequence
    ]
    assert _digest(journal.replay(TrustedState(), decoded)) == _digest(direct)
