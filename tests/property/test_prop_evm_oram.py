"""Property-based tests: EVM arithmetic vs Python ints, journal vs model,
ORAM vs dict, and the L2 ring's conservation invariants."""

from hypothesis import given, settings, strategies as st

from repro.crypto.kdf import Drbg
from repro.evm import ChainContext, execute_transaction
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer
from repro.state import (
    BlockHeader,
    DictBackend,
    JournaledState,
    Transaction,
    to_address,
)
from repro.workloads.asm import assemble, push

WORD = 2**256
ALICE = to_address(0xA1)
TARGET = to_address(0xE7)

_HEADER = BlockHeader(
    number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
    timestamp=0, coinbase=to_address(0xC0),
)


def _eval_binop(op: str, a: int, b: int) -> int:
    backend = DictBackend()
    backend.ensure(ALICE).balance = 10**18
    backend.ensure(TARGET).code = assemble(
        ["PUSH32", b, "PUSH32", a, op]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    state = JournaledState(backend)
    result = execute_transaction(
        state, ChainContext(_HEADER), Transaction(sender=ALICE, to=TARGET)
    )
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


words = st.integers(min_value=0, max_value=WORD - 1)


@given(words, words)
@settings(max_examples=30, deadline=None)
def test_add_mod_2_256(a, b):
    assert _eval_binop("ADD", a, b) == (a + b) % WORD


@given(words, words)
@settings(max_examples=30, deadline=None)
def test_mul_mod_2_256(a, b):
    assert _eval_binop("MUL", a, b) == (a * b) % WORD


@given(words, words)
@settings(max_examples=30, deadline=None)
def test_sub_wraps(a, b):
    assert _eval_binop("SUB", a, b) == (a - b) % WORD


@given(words, words)
@settings(max_examples=30, deadline=None)
def test_div_is_floored(a, b):
    assert _eval_binop("DIV", a, b) == (a // b if b else 0)


@given(words, words)
@settings(max_examples=30, deadline=None)
def test_comparisons(a, b):
    assert _eval_binop("LT", a, b) == int(a < b)
    assert _eval_binop("AND", a, b) == a & b


# -- journal vs dict model ------------------------------------------------------

journal_programs = st.lists(
    st.tuples(
        st.sampled_from(["balance", "storage", "snapshot", "revert"]),
        st.integers(min_value=0, max_value=3),   # address index
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=40,
)


@given(journal_programs)
@settings(max_examples=60, deadline=None)
def test_journal_matches_model(program):
    backend = DictBackend()
    addresses = [to_address(i + 1) for i in range(4)]
    for address in addresses:
        backend.ensure(address).balance = 100
    journal = JournaledState(backend)
    model_balances = {address: 100 for address in addresses}
    model_storage: dict[tuple, int] = {}
    snapshots: list[tuple[int, dict, dict]] = []
    for op, index, value in program:
        address = addresses[index]
        if op == "balance":
            journal.set_balance(address, value)
            model_balances[address] = value
        elif op == "storage":
            journal.set_storage(address, index, value)
            model_storage[(address, index)] = value
        elif op == "snapshot":
            snapshots.append(
                (journal.snapshot(), dict(model_balances), dict(model_storage))
            )
        elif op == "revert" and snapshots:
            snap_id, balances, storage = snapshots.pop()
            journal.revert(snap_id)
            model_balances = balances
            model_storage = storage
    for address in addresses:
        assert journal.get_balance(address) == model_balances[address]
    for (address, key), value in model_storage.items():
        assert journal.get_storage(address, key) == value


# -- ORAM vs dict model ------------------------------------------------------------

oram_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=30),
        st.binary(min_size=1, max_size=32),
    ),
    min_size=1,
    max_size=40,
)


@given(oram_ops)
@settings(max_examples=25, deadline=None)
def test_oram_matches_dict_model(operations):
    server = OramServer(height=5)
    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, rng=Drbg(b"prop")
    )
    model: dict[bytes, bytes] = {}
    for op, key_index, value in operations:
        key = b"key%d" % key_index
        if op == "write":
            client.write(key, value)
            model[key] = value.ljust(64, b"\x00")
        else:
            assert client.read(key) == model.get(key)
    for key, value in model.items():
        assert client.read(key) == value


@given(oram_ops)
@settings(max_examples=15, deadline=None)
def test_oram_write_paths_always_full_shape(operations):
    """Every bucket the server holds is either empty or exactly Z slots."""
    server = OramServer(height=5)
    client = PathOramClient(server, key=b"k" * 32, block_size=64, rng=Drbg(b"p2"))
    for op, key_index, value in operations:
        key = b"key%d" % key_index
        if op == "write":
            client.write(key, value)
        else:
            client.read(key)
    for bucket in server._buckets:
        assert len(bucket) in (0, server.bucket_size)


# -- layer-2 ring invariants ----------------------------------------------------------

l2_ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "expand"]),
        st.integers(min_value=1, max_value=60),  # KB
    ),
    max_size=50,
)


@given(l2_ops)
@settings(max_examples=60, deadline=None)
def test_l2_never_exceeds_capacity_and_conserves_pages(operations):
    from repro.hardware.memory_layers import Layer2CallStack, MemoryOverflowError

    l2 = Layer2CallStack(capacity_bytes=128 * 1024, rng=Drbg(b"l2"))
    depth = 0
    for op, size_kb in operations:
        try:
            if op == "push":
                l2.push_frame(size_kb * 1024)
                depth += 1
            elif op == "pop" and depth:
                l2.pop_frame()
                depth -= 1
            elif op == "expand" and depth:
                l2.expand_current(size_kb * 1024)
        except MemoryOverflowError:
            return  # legal outcome for oversized frames
        assert l2.resident_pages <= l2.capacity_pages
        assert l2.depth == depth
    # Swap conservation: everything dumped was either reloaded or still out.
    stats = l2.stats
    assert stats.pages_swapped_in <= stats.pages_swapped_out
