"""Trace-bench determinism and exactness properties (the PR's acceptance bar).

Two identically seeded runs must produce byte-identical exports; every
sampled request's exclusive per-layer buckets must sum exactly to its
root duration (virtual time is sequential, so the partition is exact up
to float association); and at full sampling the telemetry totals must
reconcile with the cost-model accounting the simulator keeps through a
separate code path.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry.bench import TraceBenchConfig, run_trace_bench

pytestmark = pytest.mark.telemetry

# Small fleet/load so the whole module stays in tier-1 time budgets.
_SMALL = dict(device_count=2, hevms_per_device=1, tenants=2, requests_per_tenant=2)


@pytest.fixture(scope="module")
def traced_pair(tiny_evalset):
    """Two independent runs of the same seeded config."""
    config = TraceBenchConfig(seed=7, **_SMALL)
    return (
        run_trace_bench(config, tiny_evalset),
        run_trace_bench(config, tiny_evalset),
    )


def test_same_seed_produces_byte_identical_exports(traced_pair):
    first, second = traced_pair
    assert first.chrome_json == second.chrome_json
    assert first.prometheus_text == second.prometheus_text
    assert first.buckets == second.buckets


def test_chrome_export_is_valid_and_covers_every_request(traced_pair):
    report, _ = traced_pair
    document = json.loads(report.chrome_json)
    events = document["traceEvents"]
    spans = [event for event in events if event["ph"] == "X"]
    assert len(spans) == report.span_count
    rows = {
        event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    # One row per sampled request plus the control plane (attestation).
    assert rows == {"control-plane"} | {
        f"request-{n}" for n in range(1, report.sampled_requests + 1)
    }
    for event in spans:
        assert event["dur"] >= 0.0


def test_buckets_sum_exactly_to_each_root_duration(traced_pair):
    report, _ = traced_pair
    assert report.sampled_requests == report.load.submitted
    # residual_us is the max |bucket sum - root duration| over requests;
    # virtual time is sequential, so the partition is exact.
    assert report.residual_us == 0.0


def test_telemetry_reconciles_with_cost_model_accounting(traced_pair):
    report, _ = traced_pair
    assert report.reconciliation, "full sampling must produce reconciliation rows"
    tolerance = TraceBenchConfig().tolerance_us
    for row in report.reconciliation:
        assert abs(row.delta_us) <= tolerance, (
            f"{row.name}: traced {row.traced_us} vs model {row.model_us}"
        )
    # The decomposition is non-trivial: execution and the security
    # overheads all charge real time at the -full level.
    assert report.buckets["execution"] > 0.0
    assert report.buckets["signature"] > 0.0
    assert report.buckets["oram_storage"] > 0.0


def test_partial_sampling_is_deterministic_and_a_strict_subset(tiny_evalset):
    config = TraceBenchConfig(seed=11, sample_rate=0.5, **_SMALL)
    first = run_trace_bench(config, tiny_evalset)
    second = run_trace_bench(config, tiny_evalset)
    assert first.chrome_json == second.chrome_json
    assert 0 < first.sampled_requests < first.load.submitted
    assert first.reconciliation == []  # only exact at full sampling
    # Unsampled requests leave no orphan device spans behind.
    document = json.loads(first.chrome_json)
    for event in document["traceEvents"]:
        if event["ph"] == "X":
            assert event["tid"] != 0 or event["cat"] == "session"


def test_tracing_never_perturbs_the_workload(tiny_evalset):
    """The traced run's virtual timeline equals the untraced one."""
    traced = run_trace_bench(TraceBenchConfig(seed=7, **_SMALL), tiny_evalset)
    untraced = run_trace_bench(
        TraceBenchConfig(seed=7, sample_rate=0.0, **_SMALL), tiny_evalset
    )
    assert traced.load.duration_us == untraced.load.duration_us
    assert traced.load.metrics == untraced.load.metrics
    # At rate 0 nothing request-shaped survives — only the unconditional
    # control-plane spans (attestation/DHKE at connect time) remain.
    assert untraced.sampled_requests == 0
    unsampled = json.loads(untraced.chrome_json)
    assert all(
        event["cat"] == "session"
        for event in unsampled["traceEvents"]
        if event["ph"] == "X"
    )
