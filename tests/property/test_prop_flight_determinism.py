"""Flight-recorder determinism properties (the observability PR's S3 bar).

Two identically seeded histories must seal byte-identical dumps —
digest, canonical JSON, everything — because the recorder is a pure fold
over (session, entry, failure) events with no clock or RNG of its own.
And a history containing no trigger-typed failure must seal nothing at
all: a zero-failure run leaves the black box closed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.flight import SEAL_CAUSES, FlightRecorder

pytestmark = pytest.mark.observability

# One recorded observability entry: (session, name, at_us, attrs).
_sessions = st.integers(min_value=0, max_value=5).map(
    lambda n: b"sess-%02d" % n
)
_attr_values = st.one_of(
    st.integers(min_value=-2**32, max_value=2**32),
    st.text(max_size=8),
    st.binary(max_size=8),
    st.booleans(),
)
_entries = st.tuples(
    _sessions,
    st.sampled_from(["tier.admit", "tier.handshake", "tier.dispatch", "kind"]),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    st.dictionaries(
        st.sampled_from(["shard", "kind", "name", "request_id"]),
        _attr_values,
        max_size=3,
    ),
)
# A failure event: (session, cause_type, reason, at_us).  Cause names are
# drawn from both trigger and non-trigger types.
_failures = st.tuples(
    _sessions,
    st.sampled_from(sorted(SEAL_CAUSES) + ["ValueError", "TimeoutError"]),
    st.text(max_size=16),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
)
_histories = st.lists(
    st.one_of(
        _entries.map(lambda e: ("note", e)),
        _failures.map(lambda f: ("fail", f)),
    ),
    max_size=40,
)


def _replay(history, capacity):
    recorder = FlightRecorder(capacity=capacity)
    for tag, payload in history:
        if tag == "note":
            session, name, at_us, attrs = payload
            recorder.note(session, "event", name, at_us, **attrs)
        else:
            session, cause, reason, at_us = payload
            recorder.seal_if_triggered(session, cause, reason, at_us)
    return recorder


@given(history=_histories, capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_identical_histories_seal_byte_identical_dumps(history, capacity):
    first = _replay(history, capacity)
    second = _replay(history, capacity)
    assert first.dump_digests() == second.dump_digests()
    assert [dump.canonical_json() for dump in first.dumps] == [
        dump.canonical_json() for dump in second.dumps
    ]


@given(history=_histories, capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_dump_count_matches_trigger_typed_failures_exactly(history, capacity):
    recorder = _replay(history, capacity)
    triggers = [
        payload for tag, payload in history
        if tag == "fail" and payload[1] in SEAL_CAUSES
    ]
    assert len(recorder.dumps) == len(triggers)
    for dump, (session, cause, reason, at_us) in zip(recorder.dumps, triggers):
        assert dump.cause_type == cause
        assert dump.session_id == session.hex()
        assert dump.sealed_at_us == at_us


@given(
    history=st.lists(_entries, max_size=30),
    non_triggers=st.lists(
        st.tuples(_sessions,
                  st.sampled_from(["ValueError", "KeyError", "OSError"]),
                  st.text(max_size=8),
                  st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
        max_size=10,
    ),
)
@settings(max_examples=60, deadline=None)
def test_zero_failure_run_emits_no_dump(history, non_triggers):
    recorder = FlightRecorder(capacity=4)
    for session, name, at_us, attrs in history:
        recorder.note(session, "event", name, at_us, **attrs)
    for session, cause, reason, at_us in non_triggers:
        assert recorder.seal_if_triggered(session, cause, reason, at_us) is None
    assert recorder.dumps == []
    assert recorder.dump_digests() == []
