"""Property tests: Merkle membership proofs over committed step traces.

Soundness and completeness of :func:`repro.telemetry.unified.merkle_proof`
/ :func:`verify_merkle_proof` — the substrate the receipt auditor's
O(log n) spot checks stand on.  Completeness: every honestly produced
proof verifies against the honest root.  Soundness (second-preimage
style): perturbing the leaf, any path sibling, or the root makes
verification fail; so does replaying a proof for a different index's
leaf content.
"""

import hashlib
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.unified import (
    MerkleProof,
    _merkle_root,
    merkle_proof,
    verify_merkle_proof,
)

_leaves = st.lists(
    st.binary(min_size=0, max_size=24), min_size=1, max_size=33
)


def _flip(data: bytes, bit: int) -> bytes:
    index, mask = bit // 8, 1 << (bit % 8)
    return data[:index] + bytes([data[index] ^ mask]) + data[index + 1:]


@given(_leaves, st.data())
@settings(max_examples=150, deadline=None)
def test_every_index_opens_against_the_root(leaves, data):
    root = _merkle_root(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1), label="index")
    proof = merkle_proof(leaves, index)
    assert proof.index == index
    assert proof.leaf == leaves[index]
    assert verify_merkle_proof(proof, root)
    # The verifier's cost is logarithmic: one leaf hash plus at most
    # ceil(log2(n)) sibling hashes ("P" promotions are free).
    assert proof.hash_ops <= 1 + math.ceil(math.log2(max(len(leaves), 2)))


@given(_leaves, st.data())
@settings(max_examples=150, deadline=None)
def test_perturbed_proofs_fail(leaves, data):
    root = _merkle_root(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1), label="index")
    proof = merkle_proof(leaves, index)

    # A lying leaf fails, wherever the bit lands.
    bad_leaf = _flip(proof.leaf + b"\x00", data.draw(
        st.integers(0, 8 * len(proof.leaf) + 7), label="leaf bit"
    ))
    assert not verify_merkle_proof(
        MerkleProof(index=index, leaf=bad_leaf, path=proof.path), root
    )

    # A lying sibling anywhere along a non-trivial path fails.
    hashed = [i for i, (side, _) in enumerate(proof.path) if side != "P"]
    if hashed:
        level = data.draw(st.sampled_from(hashed), label="path level")
        side, sibling = proof.path[level]
        bad_path = list(proof.path)
        bad_path[level] = (side, _flip(sibling, data.draw(
            st.integers(0, 8 * len(sibling) - 1), label="sibling bit"
        )))
        assert not verify_merkle_proof(
            MerkleProof(index=index, leaf=proof.leaf, path=tuple(bad_path)),
            root,
        )

    # A lying root fails.
    bad_root = bytes.fromhex(root)
    bad_root = _flip(bad_root, data.draw(
        st.integers(0, 8 * len(bad_root) - 1), label="root bit"
    ))
    assert not verify_merkle_proof(proof, bad_root.hex())


@given(st.lists(st.binary(min_size=1, max_size=16), min_size=2,
                max_size=17, unique=True), st.data())
@settings(max_examples=100, deadline=None)
def test_a_proof_cannot_be_replayed_for_another_leaf(leaves, data):
    root = _merkle_root(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1), label="index")
    other = data.draw(
        st.integers(0, len(leaves) - 1).filter(lambda i: i != index),
        label="other",
    )
    proof = merkle_proof(leaves, index)
    # Grafting another index's leaf content onto this path must fail:
    # the path authenticates position, not just membership.
    assert not verify_merkle_proof(
        MerkleProof(index=index, leaf=leaves[other], path=proof.path), root
    )


@given(_leaves)
@settings(max_examples=60, deadline=None)
def test_out_of_range_indices_raise(leaves):
    with pytest.raises(IndexError):
        merkle_proof(leaves, len(leaves))
    with pytest.raises(IndexError):
        merkle_proof(leaves, -1)


@given(_leaves)
@settings(max_examples=60, deadline=None)
def test_root_matches_a_reference_fold(leaves):
    """The iterative builder agrees with an independent recursive one."""
    _LEAF = b"\x00hardtape.trace.leaf"
    _NODE = b"\x01hardtape.trace.node"

    def fold(nodes):
        if len(nodes) == 1:
            return nodes[0]
        paired = [
            hashlib.sha256(_NODE + nodes[i] + nodes[i + 1]).digest()
            for i in range(0, len(nodes) - 1, 2)
        ]
        if len(nodes) % 2:
            paired.append(nodes[-1])
        return fold(paired)

    expected = fold(
        [hashlib.sha256(_LEAF + leaf).digest() for leaf in leaves]
    ).hex()
    assert _merkle_root(leaves) == expected
