"""Properties of the CryptoBackend tier: batch == sequential, always.

Every accelerated path must be an *exact rewrite* of the reference one:
batch keccak equals a loop of scalar sponges, batched ECDSA equals a
loop of single verifies (including which failures it raises), the
precomputed scalar multiplication equals the textbook double-and-add,
and ``SecureChannel.open_batch`` equals a sequential ``open`` loop.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecc
from repro.crypto.backend import available_backends, get_backend
from repro.crypto.ecc import InvalidSignature, PrivateKey, Signature
from repro.crypto.keccak import Keccak256, keccak256, keccak256_many
from repro.hypervisor.channel import ChannelError, SecureChannel

settings.register_profile("crypto_backends", deadline=None)
settings.load_profile("crypto_backends")

# ECDSA over pure-Python secp256k1 costs tens of ms per scalar multiply;
# fixed keys + few examples keep the suite fast without losing the
# property (the varying part is the data, not the key).
_SIGNER = PrivateKey.from_bytes(b"\x5a" * 31 + b"\x01")
_OPENER = PrivateKey.from_bytes(b"\xa5" * 31 + b"\x02")


@given(st.lists(st.binary(max_size=400), max_size=12))
def test_batch_keccak_equals_sequential(items):
    expected = [Keccak256(item).digest() for item in items]
    assert keccak256_many(items) == expected
    for name in available_backends():
        assert get_backend(name).keccak_engine().hash_many(items) == expected


@given(st.binary(max_size=600))
def test_every_engine_matches_scalar_sponge(data):
    expected = Keccak256(data).digest()
    assert keccak256(data) == expected
    for name in available_backends():
        assert get_backend(name).keccak_engine().hash_one(data) == expected


@settings(max_examples=15)
@given(st.integers(min_value=1, max_value=ecc.N - 1))
def test_fixed_base_mul_equals_double_and_add(k):
    assert ecc.fixed_base_mul(k) == ecc._scalar_mul(k, ecc.G)


@settings(max_examples=6)
@given(st.lists(st.binary(min_size=32, max_size=32), min_size=1, max_size=3))
def test_batch_ecdsa_verify_equals_sequential(digests):
    public = _SIGNER.public_key()
    triples = [
        (public, digest, _SIGNER.sign(digest)) for digest in digests
    ]
    for name in available_backends():
        get_backend(name).ecdsa_verify_many(triples)  # must not raise
    # Flip one signature: every backend must reject, exactly like the
    # sequential reference loop does.
    _pk, digest, good = triples[0]
    bad = Signature(r=good.r, s=(good.s + 1) % ecc.N or 1)
    tampered = [(public, digest, bad)] + triples[1:]
    with pytest.raises(InvalidSignature):
        public.verify(digest, bad)
    for name in available_backends():
        with pytest.raises(InvalidSignature):
            get_backend(name).ecdsa_verify_many(tampered)


@settings(max_examples=6)
@given(
    st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=4),
    st.sampled_from(["numpy", "hashlib"]),
)
def test_open_batch_equals_sequential_open(payloads, backend_name):
    session_key = bytes(range(32))

    def channel_pair():
        sealer = SecureChannel(
            session_key,
            own_signing_key=_SIGNER,
            peer_verify_key=_OPENER.public_key(),
            backend=backend_name,
        )
        opener = SecureChannel(
            session_key,
            own_signing_key=_OPENER,
            peer_verify_key=_SIGNER.public_key(),
            backend=backend_name,
        )
        return sealer, opener

    sealer, batch_opener = channel_pair()
    sealed = [sealer.seal(payload) for payload in payloads]
    assert batch_opener.open_batch(sealed) == payloads

    _sealer, loop_opener = channel_pair()
    assert [loop_opener.open(message) for message in sealed] == payloads
    assert (
        batch_opener.nonce_watermark == loop_opener.nonce_watermark
    )


def test_open_batch_rejects_before_releasing_any_plaintext():
    session_key = bytes(range(32))
    sealer = SecureChannel(
        session_key,
        own_signing_key=_SIGNER,
        peer_verify_key=_OPENER.public_key(),
        backend="numpy",
    )
    opener = SecureChannel(
        session_key,
        own_signing_key=_OPENER,
        peer_verify_key=_SIGNER.public_key(),
        backend="numpy",
    )
    sealed = [sealer.seal(b"msg-%d" % i) for i in range(3)]
    good = sealed[-1]
    forged = type(good)(
        nonce=good.nonce,
        ciphertext=good.ciphertext,
        signature=Signature(r=good.signature.r, s=(good.signature.s + 1) % ecc.N or 1),
    )
    with pytest.raises(ChannelError):
        opener.open_batch(sealed[:-1] + [forged])
    # The bad signature aborted the batch before any decrypt: the
    # replay watermark never moved, so the full valid batch still opens.
    assert opener.nonce_watermark == (0, 0)
    assert opener.open_batch(sealed) == [b"msg-0", b"msg-1", b"msg-2"]
