"""Property-based tests for the wire codecs (bundle, trace, header)."""

from hypothesis import given, settings, strategies as st

from repro.hypervisor.bundle_codec import (
    TraceReport,
    TransactionBundle,
    TransactionTrace,
    decode_bundle,
    decode_trace_report,
    encode_bundle,
    encode_trace_report,
)
from repro.hypervisor.messages import (
    HEADER_SIZE,
    MessageError,
    MessageHeader,
    MessageType,
)
from repro.state.blocks import Transaction

addresses = st.binary(min_size=20, max_size=20)

transactions = st.builds(
    Transaction,
    sender=addresses,
    to=st.one_of(st.none(), addresses),
    value=st.integers(min_value=0, max_value=2**100),
    data=st.binary(max_size=200),
    gas_limit=st.integers(min_value=21_000, max_value=2**40),
    gas_price=st.integers(min_value=0, max_value=2**40),
    nonce=st.one_of(st.none(), st.integers(min_value=0, max_value=2**32)),
)

bundles = st.builds(
    lambda txs, block: TransactionBundle(tuple(txs), block),
    st.lists(transactions, min_size=1, max_size=5),
    st.integers(min_value=0, max_value=2**32),
)


@given(bundles)
@settings(max_examples=80, deadline=None)
def test_bundle_roundtrip(bundle):
    assert decode_bundle(encode_bundle(bundle)) == bundle


@given(bundles)
@settings(max_examples=40, deadline=None)
def test_bundle_id_stable(bundle):
    assert bundle.bundle_id() == decode_bundle(encode_bundle(bundle)).bundle_id()


traces = st.builds(
    TransactionTrace,
    status=st.integers(min_value=0, max_value=1),
    gas_used=st.integers(min_value=0, max_value=2**40),
    return_data=st.binary(max_size=100),
    error=st.one_of(st.none(), st.text(min_size=1, max_size=30)),
    balance_changes=st.dictionaries(addresses, st.integers(min_value=0, max_value=2**90), max_size=4),
    storage_changes=st.dictionaries(
        st.tuples(addresses, st.integers(min_value=0, max_value=2**64)),
        st.integers(min_value=0, max_value=2**128),
        max_size=4,
    ),
    logs=st.lists(
        st.tuples(
            addresses,
            st.lists(st.integers(min_value=0, max_value=2**128), max_size=3),
            st.binary(max_size=40),
        ),
        max_size=3,
    ),
)

reports = st.builds(
    TraceReport,
    bundle_id=st.binary(min_size=16, max_size=16),
    traces=st.lists(traces, max_size=4),
    aborted=st.booleans(),
    abort_reason=st.one_of(st.none(), st.text(min_size=1, max_size=40)),
)


@given(reports)
@settings(max_examples=80, deadline=None)
def test_trace_report_roundtrip(report):
    decoded = decode_trace_report(encode_trace_report(report))
    assert decoded.bundle_id == report.bundle_id
    assert decoded.aborted == report.aborted
    assert decoded.abort_reason == report.abort_reason
    assert len(decoded.traces) == len(report.traces)
    for ours, original in zip(decoded.traces, report.traces):
        assert ours.status == original.status
        assert ours.gas_used == original.gas_used
        assert ours.return_data == original.return_data
        assert ours.error == original.error
        assert ours.balance_changes == original.balance_changes
        assert ours.storage_changes == original.storage_changes
        assert ours.logs == original.logs


headers = st.builds(
    MessageHeader,
    msg_type=st.sampled_from(list(MessageType)),
    body_length=st.integers(min_value=0, max_value=4 * 1024 * 1024),
    target_hevm=st.integers(min_value=0, max_value=255),
    sequence=st.integers(min_value=0, max_value=2**60),
)


@given(headers)
@settings(max_examples=100)
def test_header_roundtrip(header):
    packed = header.pack()
    assert len(packed) == HEADER_SIZE
    assert MessageHeader.unpack(packed) == header


@given(
    headers,
    st.integers(min_value=0, max_value=HEADER_SIZE - 1),
    st.integers(min_value=1, max_value=255),
)
@settings(max_examples=100)
def test_header_bitflips_never_parse_silently(header, position, xor):
    """Any single-byte corruption is either caught or changes nothing."""
    packed = bytearray(header.pack())
    packed[position] ^= xor
    try:
        parsed = MessageHeader.unpack(bytes(packed))
    except MessageError:
        return  # rejected: the desired outcome
    # Only bit-flips inside the padding word can slip through unnoticed;
    # everything that reaches the DMA must equal the original header.
    assert parsed == header
