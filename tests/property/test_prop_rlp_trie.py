"""Property-based tests for RLP and the Merkle Patricia Trie."""

from hypothesis import given, settings, strategies as st

from repro import rlp
from repro.trie import MerklePatriciaTrie, verify_proof

rlp_items = st.recursive(
    st.binary(max_size=70),
    lambda children: st.lists(children, max_size=6),
    max_leaves=25,
)


@given(rlp_items)
def test_rlp_roundtrip(item):
    assert rlp.decode(rlp.encode(item)) == item


@given(st.integers(min_value=0, max_value=2**300))
def test_rlp_uint_roundtrip(value):
    assert rlp.decode_uint(rlp.encode_uint(value)) == value


@given(rlp_items, rlp_items)
def test_rlp_encoding_injective(a, b):
    if a != b:
        assert rlp.encode(a) != rlp.encode(b)


trie_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.binary(min_size=1, max_size=6),
        st.binary(min_size=1, max_size=20),
    ),
    max_size=60,
)


@given(trie_ops)
@settings(max_examples=60, deadline=None)
def test_trie_matches_dict_model(operations):
    trie = MerklePatriciaTrie()
    model: dict[bytes, bytes] = {}
    for op, key, value in operations:
        if op == "put":
            trie.put(key, value)
            model[key] = value
        else:
            trie.delete(key)
            model.pop(key, None)
    for key, value in model.items():
        assert trie.get(key) == value
    assert dict(trie.items()) == model


@given(trie_ops)
@settings(max_examples=40, deadline=None)
def test_trie_root_is_content_determined(operations):
    """The root depends only on final contents, not operation history."""
    trie = MerklePatriciaTrie()
    model: dict[bytes, bytes] = {}
    for op, key, value in operations:
        if op == "put":
            trie.put(key, value)
            model[key] = value
        else:
            trie.delete(key)
            model.pop(key, None)
    fresh = MerklePatriciaTrie()
    for key, value in sorted(model.items(), reverse=True):
        fresh.put(key, value)
    assert fresh.root_hash() == trie.root_hash()


@given(trie_ops, st.binary(min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_trie_proofs_always_verify(operations, probe_key):
    trie = MerklePatriciaTrie()
    model: dict[bytes, bytes] = {}
    for op, key, value in operations:
        if op == "put":
            trie.put(key, value)
            model[key] = value
        else:
            trie.delete(key)
            model.pop(key, None)
    root = trie.root_hash()
    proof = trie.prove(probe_key)
    assert verify_proof(root, probe_key, proof) == model.get(probe_key)
