"""Device configuration options exercised end-to-end."""

import pytest

from repro.core import (
    DeviceConfig,
    HarDTAPEService,
    PreExecutionClient,
    SecurityFeatures,
)
from repro.state import Transaction
from repro.workloads.contracts import erc20, rollup


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


def _service(evalset, **config_kwargs):
    return HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        device_config=DeviceConfig(oram_height=10, **config_kwargs),
        charge_fees=False,
    )


def _session(service):
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x0c" * 32
    )
    return client, client.connect(service)


def test_recursive_position_map_end_to_end(evalset):
    service = _service(evalset, recursive_position_map=True)
    client, session = _session(service)
    tx = evalset.transactions[0]
    report, _, _ = client.pre_execute(service, session, [tx])
    assert report.traces[0].status == 1
    # The recursion actually ran: inner ORAM accesses happened.
    oram = service.devices[0].oram_backend
    assert oram._client._positions.inner_accesses > 0


def test_recursive_and_flat_posmaps_agree(evalset):
    flat = _service(evalset)
    recursive = _service(evalset, recursive_position_map=True)
    tx = evalset.transactions[1]
    reports = []
    for service in (flat, recursive):
        client, session = _session(service)
        report, _, _ = client.pre_execute(service, session, [tx])
        reports.append(report.traces[0])
    assert reports[0].gas_used == reports[1].gas_used
    assert reports[0].return_data == reports[1].return_data
    assert reports[0].storage_changes == reports[1].storage_changes


def test_spill_device_completes_rollups(evalset):
    service = _service(evalset, oversize_policy="spill")
    client, session = _session(service)
    population = evalset.population
    updates = [(i, i + 1) for i in range(9_000)]
    tx = Transaction(
        sender=population.users[0],
        to=population.rollup_contract,
        data=rollup.rollup_calldata(updates),
        gas_limit=10**9,
    )
    report, _, _ = client.pre_execute(service, session, [tx])
    assert not report.aborted
    assert report.traces[0].status == 1


def test_single_hevm_device(evalset):
    service = _service(evalset, hevm_count=1)
    client, session = _session(service)
    assert service.devices[0].idle_hevms == 1
    report, _, _ = client.pre_execute(service, session, [evalset.transactions[0]])
    assert report.traces[0].status == 1
    assert service.devices[0].idle_hevms == 1  # released after the bundle


def test_too_many_hevms_rejected(evalset):
    with pytest.raises(ValueError):
        _service(evalset, hevm_count=4)  # the XCZU15EV fits three


def test_gas_cap_rejects_dos_bundles(evalset):
    from repro.hypervisor import BundleRejected

    service = _service(evalset)
    hypervisor = service.devices[0].hypervisor
    hypervisor.max_bundle_gas = 1_000_000  # a strict SP policy
    client, session = _session(service)
    greedy = Transaction(
        sender=evalset.population.users[0],
        to=evalset.population.token_a,
        data=erc20.balance_of_calldata(evalset.population.users[0]),
        gas_limit=30_000_000,
    )
    with pytest.raises(BundleRejected):
        client.pre_execute(service, session, [greedy])
    # A bundle within the cap still runs, and the core was not leaked
    # by the rejected submission.
    modest = Transaction(
        sender=greedy.sender, to=greedy.to, data=greedy.data, gas_limit=500_000
    )
    report, _, _ = client.pre_execute(service, session, [modest])
    assert report.traces[0].status == 1
    assert service.devices[0].idle_hevms == service.devices[0].config.hevm_count
