"""§VI-B: HarDTAPE behaviour is identical to a standard node.

The node re-executes evaluation-set transactions and serves
debug_traceTransaction-style ground truth; HarDTAPE (full security
stack, ORAM world state) pre-executes the same transactions against the
same state version.  Gas, status, return data, and storage effects must
match exactly.
"""

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.evm.tracer import StructTracer
from repro.evm.executor import execute_transaction
from repro.state.journal import JournaledState


@pytest.fixture(scope="module")
def setup(request):
    evalset = request.getfixturevalue("tiny_evalset")
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x03" * 32
    )
    session = client.connect(service)
    return evalset, service, client, session


def _ground_truth(evalset, service, tx):
    """Execute tx on the node's synced state (fees off, like the HEVM)."""
    state = JournaledState(evalset.node.state_at(service.synced_height).copy())
    tracer = StructTracer()
    result = execute_transaction(
        state,
        service.pending_chain_context(),
        tx,
        tracer=tracer,
        charge_fees=False,
    )
    return result, tracer.logs


def test_traces_match_ground_truth(setup):
    evalset, service, client, session = setup
    for tx in evalset.transactions[:10]:
        expected, _ = _ground_truth(evalset, service, tx)
        report, _, _ = client.pre_execute(service, session, [tx])
        trace = report.traces[0]
        assert trace.status == expected.status
        assert trace.gas_used == expected.gas_used
        assert trace.return_data == expected.return_data
        expected_storage = dict(expected.write_set.storage)
        assert trace.storage_changes == expected_storage


def test_struct_traces_match_node_rpc(setup):
    """Step-by-step PC/op/gas equality against debug_traceTransaction."""
    evalset, service, client, session = setup
    node = evalset.node
    # Compare the node's own replay of an on-chain tx against a direct
    # re-execution — the RPC must be internally consistent first.
    block_number = 2
    executed = node.block_at(block_number)
    for index, tx in enumerate(executed.block.transactions[:3]):
        logs_a, result_a = node.debug_trace_transaction(block_number, index)
        logs_b, result_b = node.debug_trace_transaction(block_number, index)
        assert result_a.gas_used == result_b.gas_used
        assert [l.to_dict() for l in logs_a] == [l.to_dict() for l in logs_b]


def test_hevm_struct_trace_equals_node_trace(setup):
    """The HEVM's opcode stream equals the node's for the same tx."""
    evalset, service, client, session = setup
    tx = evalset.transactions[0]
    _, expected_logs = _ground_truth(evalset, service, tx)

    device = service.devices[0]
    core = device.cores[0]
    results, _, _, struct_traces = core.run_bundle(
        [tx],
        service.pending_chain_context(),
        service._synced_state,
        device.oram_backend,
        storage_via_oram=True,
        code_via_oram=True,
        struct_trace=True,
        charge_fees=False,
    )
    core.reset()
    assert results[0].success
    hevm_logs = struct_traces[0]
    assert len(hevm_logs) == len(expected_logs)
    for ours, theirs in zip(hevm_logs, expected_logs):
        assert (ours.pc, ours.op, ours.gas, ours.depth) == (
            theirs.pc, theirs.op, theirs.gas, theirs.depth
        )
        assert ours.stack == theirs.stack


def test_gas_identical_across_all_security_levels(setup):
    evalset, service, client, session = setup
    tx = evalset.transactions[1]
    expected, _ = _ground_truth(evalset, service, tx)
    for level in ("raw", "E", "ES", "ESO", "full"):
        svc = HarDTAPEService(
            evalset.node, SecurityFeatures.from_level(level), charge_fees=False
        )
        cl = PreExecutionClient(
            svc.manufacturer.root_public_key, rng_seed=b"\x04" * 32
        )
        sess = cl.connect(svc)
        report, _, _ = cl.pre_execute(svc, sess, [tx])
        assert report.traces[0].gas_used == expected.gas_used, level
