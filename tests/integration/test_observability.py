"""The observability plane end to end: async-plane spans, S2 trace
metadata, the plane-labelled Prometheus exposition, armed flight
recorders, and the node's unified-trace RPC.

The byte-identity half of the story (arming the full stack changes
nothing the frontend emits) is gated by ``obs-bench``; these tests pin
the individual seams.
"""

import json

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.hardware.timing import CostModel
from repro.serving import (
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    ShardSessionRouter,
    synthetic_profiles,
)
from repro.serving.metrics import MetricsRegistry
from repro.telemetry.exporters import render_chrome_trace, render_prometheus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.tracer import install_tracer, uninstall_tracer
from repro.async_serving import (
    AsyncServingConfig,
    AsyncServingTier,
    ModelHandshakeEngine,
    SessionState,
    VirtualReactor,
)

pytestmark = pytest.mark.observability

COST = CostModel()


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


@pytest.fixture(scope="module")
def service(evalset):
    return HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )


def _model_tier(*, shards=2, flight=None, seed=3, suspend_after_us=1000.0):
    gateways = {
        shard: Gateway(FleetModelExecutor(2, COST), GatewayConfig())
        for shard in range(shards)
    }
    router = ShardSessionRouter(gateways)
    reactor = VirtualReactor()
    engine = ModelHandshakeEngine(COST, seed=seed)
    tier = AsyncServingTier(
        reactor, router, engine,
        config=AsyncServingConfig(suspend_after_us=suspend_after_us),
        flight=flight,
    )
    return tier, reactor, engine


# ---------------------------------------------------------------------
# Async-plane span instrumentation (tentpole: reactor-keyed tracer)
# ---------------------------------------------------------------------

def test_tier_spans_cover_the_session_lifecycle():
    tier, reactor, _ = _model_tier()
    tracer = install_tracer(reactor)
    try:
        profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
        tier.open_session(b"observed-user")
        tier.submit(b"observed-user", profiles[0])
        tier.run()                       # handshake, serve, idle, suspend
        tier.submit(b"observed-user", profiles[1])
        tier.run()                       # resume via ticket, serve again
        names = [span.name for span in tracer.spans]
        assert "tier.admit" in names
        assert "tier.suspend" in names
        handshakes = [s for s in tracer.spans if s.name == "tier.handshake"]
        assert [s.attributes["kind"] for s in handshakes] == ["full", "resumed"]
        # Open spans were closed with an outcome at completion time.
        assert all(s.attributes["outcome"] == "active" for s in handshakes)
        assert all(s.end_us is not None and s.end_us >= s.start_us
                   for s in handshakes)
        assert all(span.layer == "async" for span in tracer.spans)
    finally:
        uninstall_tracer(reactor)


def test_stale_fallback_records_epochs():
    tier, reactor, engine = _model_tier()
    tracer = install_tracer(reactor)
    try:
        profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
        tier.open_session(b"bumped-user")
        tier.submit(b"bumped-user", profiles[0])
        tier.run()
        engine.advance_epoch()           # hypervisor "restart"
        tier.submit(b"bumped-user", profiles[1])
        tier.run()
        stale = [s for s in tracer.spans if s.name == "tier.stale_fallback"]
        assert len(stale) == 1
        assert stale[0].attributes["minted_epoch"] == 0
        assert stale[0].attributes["current_epoch"] == 1
        # The session recovered through the fallback full handshake.
        kinds = [s.attributes["kind"] for s in tracer.spans
                 if s.name == "tier.handshake"]
        assert kinds == ["full", "full"]
    finally:
        uninstall_tracer(reactor)


def test_tier_spans_never_touch_a_frontend_tracer(service):
    # The tier's tracer is keyed off the *reactor*; a tracer installed on
    # the service clock must see none of the async-plane spans.
    frontend = install_tracer(service.clock)
    try:
        tier, reactor, _ = _model_tier()
        tracer = install_tracer(reactor)
        try:
            tier.open_session(b"domain-user")
            tier.run()
            assert tracer.spans
            assert frontend.spans == []
        finally:
            uninstall_tracer(reactor)
    finally:
        uninstall_tracer(service.clock)


# ---------------------------------------------------------------------
# S2: ticket mint/resume spans carry session/tenant/shard/epoch/seq
# ---------------------------------------------------------------------

def test_mint_and_resume_spans_carry_identity_metadata(service):
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x21" * 32
    )
    tracer = install_tracer(service.clock)
    try:
        session = client.connect(service)
        suspended = client.suspend(session)
        resumed = client.resume(suspended)
        assert resumed.session_id != session.session_id

        mints = [s for s in tracer.spans if s.name == "session.ticket_mint"]
        resumes = [s for s in tracer.spans if s.name == "session.resume"]
        assert len(mints) == 1 and len(resumes) == 1
        mint, resume = mints[0].attributes, resumes[0].attributes
        assert mint["session"] == session.session_id.hex()[:16]
        assert len(mint["tenant"]) == 16
        assert mint["shard"] == -1          # unsharded suspend
        assert (mint["epoch"], mint["seq"]) == (0, 0)
        # The resume names the same ticket and the same tenant, so a
        # resumed session is attributable in the timeline (S2).
        assert resume["resumed_from"] == session.session_id.hex()[:16]
        assert resume["tenant"] == mint["tenant"]
        assert (resume["epoch"], resume["seq"]) == (0, 0)

        # And the metadata survives into the Chrome export as args.
        document = json.loads(render_chrome_trace(tracer))
        mint_events = [e for e in document["traceEvents"]
                       if e.get("name") == "session.ticket_mint"]
        assert mint_events[0]["args"]["epoch"] == 0
        assert mint_events[0]["args"]["tenant"] == mint["tenant"]
    finally:
        uninstall_tracer(service.clock)


# ---------------------------------------------------------------------
# S1: plane-labelled Prometheus exposition, frontend bytes unchanged
# ---------------------------------------------------------------------

def test_prometheus_planes_parameter_is_byte_invisible_when_unused():
    registry = MetricsRegistry()
    registry.counter("gateway.submitted").inc(7)
    registry.gauge("gateway.queue_depth").set(2)
    registry.histogram("gateway.latency_us").observe(130.0)
    assert render_prometheus(registry) == render_prometheus(registry, planes=None)
    assert render_prometheus(registry) == render_prometheus(registry, planes={})


def test_prometheus_async_plane_renders_labelled_after_frontend():
    registry = MetricsRegistry()
    registry.counter("gateway.submitted").inc(7)
    tier, _, _ = _model_tier()
    profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
    tier.open_session(b"plane-user")
    tier.submit(b"plane-user", profiles[0])
    tier.run()

    frontend_only = render_prometheus(registry)
    combined = render_prometheus(registry, planes={"async": tier.metrics})
    # The frontend exposition is a byte-identical prefix (S1 regression).
    assert combined.startswith(frontend_only.rstrip("\n"))
    plane_lines = [line for line in combined.splitlines()
                   if 'plane="async"' in line]
    assert any("tier_live_sessions" in line for line in plane_lines)
    assert any("tier_full_handshakes_total" in line for line in plane_lines)
    # No frontend line grew a plane label.
    assert not any('plane="async"' in line
                   for line in frontend_only.splitlines())


# ---------------------------------------------------------------------
# Flight recorder armed on the tier
# ---------------------------------------------------------------------

def test_epoch_bump_seals_a_stale_ticket_dump():
    flight = FlightRecorder(capacity=16)
    tier, _, engine = _model_tier(flight=flight)
    profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
    tier.open_session(b"doomed-user")
    tier.submit(b"doomed-user", profiles[0])
    tier.run()
    assert flight.dumps == []            # clean so far
    engine.advance_epoch()
    tier.submit(b"doomed-user", profiles[1])
    tier.run()

    assert len(flight.dumps) == 1
    dump = flight.dumps[0]
    assert dump.cause_type == "StaleTicketError"
    assert dump.session_id == b"doomed-user".hex()
    # The ring captured the session's life up to the failure.
    names = [entry.name for entry in dump.entries]
    assert "tier.handshake_begin" in names
    assert "tier.suspend" in names
    assert names[-1] == "tier.stale_fallback"
    # The session still recovered (dump is observability, not control).
    assert tier.sessions[b"doomed-user"].state in (
        SessionState.ACTIVE, SessionState.SUSPENDED
    )


def test_clean_run_seals_nothing():
    flight = FlightRecorder(capacity=16)
    tier, _, _ = _model_tier(flight=flight)
    profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
    for n in range(3):
        rid = b"clean-%d" % n
        tier.open_session(rid)
        tier.submit(rid, profiles[n])
    tier.run()
    assert flight.dumps == []
    assert flight.session_count == 3     # rings recorded, nothing sealed


# ---------------------------------------------------------------------
# Node RPC: unified trace lifted from debug_traceTransaction
# ---------------------------------------------------------------------

def test_node_unified_trace_commits_deterministically(evalset):
    node = evalset.node
    block = next(n for n in range(1, node.height + 1)
                 if node.block_at(n).block.transactions)
    first = node.unified_trace(block, 0)
    second = node.unified_trace(block, 0)
    assert first.instructions > 0
    assert first.commitment() == second.commitment()
    assert sum(first.group_counts().values()) == first.instructions
    # The committed schema drops stacks but keeps the debug trace's view.
    logs, _ = node.debug_trace_transaction(block, 0)
    assert [r.op for r in first.records] == [log.op for log in logs]
