"""Empirical security: obliviousness, swap noise, level ordering, overflow."""

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.security.analysis import (
    frequency_attack,
    path_uniformity_pvalue,
    size_leakage,
)
from repro.security.observer import AccessPatternObserver
from repro.state import Transaction
from repro.workloads.contracts import erc20, rollup


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


def _service(evalset, level="full"):
    return HarDTAPEService(
        evalset.node, SecurityFeatures.from_level(level), charge_fees=False
    )


def _session(service, seed=b"\x05" * 32):
    client = PreExecutionClient(service.manufacturer.root_public_key, rng_seed=seed)
    return client, client.connect(service)


# -- A7: query obliviousness ---------------------------------------------------


def test_oram_paths_uniform_under_skewed_workload(evalset):
    """A maximally skewed logical workload yields uniform physical paths."""
    service = _service(evalset)
    observer = AccessPatternObserver().attach(service.oram_server)
    client, session = _session(service)
    population = evalset.population
    user = population.users[0]
    observer.clear()
    # Hammer ONE token's balanceOf over and over: logical pattern is a
    # point mass, physical pattern must still look uniform.
    tx = Transaction(
        sender=user, to=population.token_a,
        data=erc20.balance_of_calldata(user),
    )
    for _ in range(30):
        client.pre_execute(service, session, [tx])
    leaves = observer.leaves
    assert len(leaves) >= 80
    assert path_uniformity_pvalue(leaves, service.oram_server.leaf_count, bins=8) > 0.01


def test_identical_bundles_produce_different_paths(evalset):
    service = _service(evalset)
    observer = AccessPatternObserver().attach(service.oram_server)
    client, session = _session(service)
    tx = evalset.transactions[0]
    observer.clear()
    client.pre_execute(service, session, [tx])
    first = list(observer.leaves)
    observer.clear()
    client.pre_execute(service, session, [tx])
    second = list(observer.leaves)
    # Same logical queries, fresh random paths (remap on every access).
    assert first != second


def test_frequency_attack_fails_against_oram(evalset):
    """The §I co-occurrence attack: works on handles, not on paths."""
    service = _service(evalset)
    observer = AccessPatternObserver().attach(service.oram_server)
    client, session = _session(service)
    population = evalset.population
    user = population.users[0]
    observer.clear()
    # Token A queried 10x more than token B: frequency signal exists
    # logically but must not be recoverable from the trace.
    tx_a = Transaction(sender=user, to=population.token_a,
                       data=erc20.balance_of_calldata(user))
    tx_b = Transaction(sender=user, to=population.token_b,
                       data=erc20.balance_of_calldata(user))
    for _ in range(10):
        client.pre_execute(service, session, [tx_a])
    client.pre_execute(service, session, [tx_b])
    # The adversary's best handle is the physical leaf id.
    handles = [leaf.to_bytes(4, "big") for leaf in observer.leaves]
    accuracy = frequency_attack(handles, [b"tokenA-page", b"tokenB-page"])
    assert accuracy == 0.0


# -- A5: swap-pattern noise --------------------------------------------------------


def _deep_recursion_swaps(noise: bool):
    """Drive the L2 ring into swapping and collect the bus events."""
    from repro.crypto.kdf import Drbg
    from repro.hardware.memory_layers import Layer2CallStack

    l2 = Layer2CallStack(
        capacity_bytes=128 * 1024, rng=Drbg(b"n"), noise_enabled=noise
    )
    events = []
    sizes = [34, 40, 36, 50, 34, 42, 38, 44]
    for size_kb in sizes:
        events += l2.push_frame(size_kb * 1024)
    for _ in sizes:
        events += l2.pop_frame()
    return events


def test_swap_noise_hides_frame_sizes():
    leaky = _deep_recursion_swaps(noise=False)
    noisy = _deep_recursion_swaps(noise=True)
    leak_plain = size_leakage(
        [e.real_pages for e in leaky], [e.page_count for e in leaky]
    )
    leak_noisy = size_leakage(
        [e.real_pages for e in noisy], [e.page_count for e in noisy]
    )
    assert leak_plain == pytest.approx(1.0)  # exact counts leak everything
    assert leak_noisy < leak_plain  # noise strictly reduces leakage


# -- Figure 4 ordering: more security, more time -------------------------------------


def test_security_levels_monotone_in_time(evalset):
    tx = evalset.transactions[0]
    times = {}
    for level in ("raw", "E", "ES", "ESO", "full"):
        service = _service(evalset, level)
        client, session = _session(service, seed=b"\x06" * 32)
        _, elapsed, _ = client.pre_execute(service, session, [tx])
        times[level] = elapsed
    assert times["raw"] < times["E"] < times["ES"] < times["ESO"] < times["full"]
    # The paper's big jumps: signatures and ORAM dominate.
    assert times["ES"] - times["E"] > 50_000  # ~80 ms of ECDSA
    assert times["full"] - times["ES"] > 10_000  # ORAM round trips


# -- rollups: Memory Overflow Error ----------------------------------------------------


def test_rollup_aborts_with_memory_overflow(evalset):
    service = _service(evalset)
    client, session = _session(service)
    population = evalset.population
    # A batch big enough to exceed half of the 1 MB layer-2 ring:
    # frame base 33 KB + calldata copied to Memory > 512 KB.
    updates = [(i, i + 1) for i in range(8000)]  # 8000*64B = 512 KB
    tx = Transaction(
        sender=population.users[0],
        to=population.rollup_contract,
        data=rollup.rollup_calldata(updates),
        gas_limit=300_000_000,
    )
    report, _, _ = client.pre_execute(service, session, [tx])
    assert report.aborted
    assert "page" in (report.abort_reason or "")


def test_small_rollup_fits(evalset):
    service = _service(evalset)
    client, session = _session(service)
    population = evalset.population
    updates = [(i, i + 1) for i in range(50)]
    tx = Transaction(
        sender=population.users[0],
        to=population.rollup_contract,
        data=rollup.rollup_calldata(updates),
    )
    report, _, _ = client.pre_execute(service, session, [tx])
    assert not report.aborted
    assert report.traces[0].status == 1


# -- multi-device ORAM key sharing ------------------------------------------------------


def test_devices_share_oram_key(evalset):
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        device_count=2,
        charge_fees=False,
    )
    key_a = service.devices[0].hypervisor.oram_key
    key_b = service.devices[1].hypervisor.oram_key
    assert key_a == key_b  # stateless ORAM shared across devices


def test_oram_key_handoff_via_dhke(evalset):
    from repro.crypto.puf import Manufacturer

    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False,
        manufacturer=Manufacturer(b"deployment-one"),
    )
    other = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False,
        manufacturer=Manufacturer(b"deployment-two"),
    )
    assert (
        service.devices[0].hypervisor.oram_key
        != other.devices[0].hypervisor.oram_key
    )
    service.devices[0].hypervisor.share_oram_key_with(other.devices[0].hypervisor)
    assert (
        service.devices[0].hypervisor.oram_key
        == other.devices[0].hypervisor.oram_key
    )
