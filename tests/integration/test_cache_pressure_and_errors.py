"""L1 cache pressure, query padding, and service error paths."""

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.hypervisor.channel import ChannelError, SealedMessage
from repro.state import Transaction
from repro.workloads.contracts import rollup
from repro.workloads.contracts.profile import profile_calldata


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


def _service(evalset, level="full", **features_overrides):
    features = SecurityFeatures.from_level(level)
    for name, value in features_overrides.items():
        setattr(features, name, value)
    return HarDTAPEService(evalset.node, features, charge_fees=False)


def _session(service, seed=b"\x0e" * 32):
    client = PreExecutionClient(service.manufacturer.root_public_key, rng_seed=seed)
    return client, client.connect(service)


def test_l1_ws_cache_evicts_past_64_records(evalset):
    """A frame touching 80 slots overflows the 64-record L1 partition,
    forcing re-queries on revisit — visible as extra ORAM accesses."""
    service = _service(evalset)
    client, session = _session(service)
    population = evalset.population
    target = population.profiles[0]
    # Touch 80 consecutive slots twice (two txs in one bundle).
    tx = Transaction(
        sender=population.users[0], to=target, data=profile_calldata(80, 0)
    )
    server = service.oram_server
    before = server.stats.reads
    report, _, _ = client.pre_execute(service, session, [tx, tx])
    assert report.traces[0].status == 1
    queries = server.stats.reads - before
    # With 80 > 64 slots, the second tx cannot be served fully from L1:
    # storage groups must be refetched.  A pure-cache run of the second
    # tx would add ~0 storage queries; we require clearly more than one
    # tx's worth (~80/32 groups + meta + code) but less than double.
    one_tx_floor = 80 // 32 + 1
    assert queries > one_tx_floor * 1.2


def test_small_frames_fully_cached_on_second_tx(evalset):
    """Contrast: ≤64 slots fit in L1, so the second tx adds no storage
    ORAM queries at all."""
    service = _service(evalset)
    client, session = _session(service)
    population = evalset.population
    target = population.profiles[1]
    tx = Transaction(
        sender=population.users[0], to=target, data=profile_calldata(8, 0)
    )
    backend = service.devices[0].oram_backend
    client.pre_execute(service, session, [tx])
    storage_after_first = backend.stats.storage_queries
    client.pre_execute(service, session, [tx])
    # New bundle = scrubbed core = cold cache again; but within ONE
    # bundle of two txs the second is free:
    before = backend.stats.storage_queries
    client.pre_execute(service, session, [tx, tx])
    two_tx = backend.stats.storage_queries - before
    assert two_tx <= storage_after_first + 1  # second tx ~free


def test_query_padding_rounds_to_power_of_two(evalset):
    service = _service(evalset, query_padding=True)
    client, session = _session(service)
    population = evalset.population
    server = service.oram_server
    tx = Transaction(
        sender=population.users[0],
        to=population.profiles[0],
        data=profile_calldata(3, 0),
    )
    before = server.stats.reads
    client.pre_execute(service, session, [tx])
    queries = server.stats.reads - before
    assert queries & (queries - 1) == 0, f"{queries} is not a power of two"


def test_unknown_session_rejected(evalset):
    service = _service(evalset)
    with pytest.raises(KeyError):
        service.devices[0].hypervisor.submit_bundle(
            b"\x00" * 16, b"garbage", service.pending_chain_context()
        )


def test_garbage_ciphertext_rejected(evalset):
    service = _service(evalset)
    client, session = _session(service)
    bogus = SealedMessage(nonce=(99).to_bytes(12, "big"), ciphertext=b"\x00" * 64)
    with pytest.raises(ChannelError):
        service.devices[0].hypervisor.submit_bundle(
            session.session_id, bogus, service.pending_chain_context()
        )


def test_cross_session_bundle_rejected(evalset):
    """A bundle sealed under session A cannot be submitted to session B."""
    service = _service(evalset)
    client_a, session_a = _session(service, seed=b"\x0a" * 32)
    client_b, session_b = _session(service, seed=b"\x0b" * 32)
    from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle

    population = evalset.population
    bundle = TransactionBundle(
        transactions=(evalset.transactions[0],),
        block_number=service.synced_height,
    )
    sealed = session_a.channel.seal(encode_bundle(bundle))
    with pytest.raises(ChannelError):
        service.devices[0].hypervisor.submit_bundle(
            session_b.session_id, sealed, service.pending_chain_context()
        )


def test_memory_overflow_still_returns_partial_report(evalset):
    """An aborted bundle reports the abort instead of crashing the core,
    and the core returns to the pool."""
    service = _service(evalset)
    client, session = _session(service)
    population = evalset.population
    updates = [(i, 1) for i in range(9_000)]
    tx = Transaction(
        sender=population.users[0],
        to=population.rollup_contract,
        data=rollup.rollup_calldata(updates),
        gas_limit=10**9,
    )
    report, _, _ = client.pre_execute(service, session, [tx])
    assert report.aborted
    assert service.devices[0].idle_hevms == service.devices[0].config.hevm_count
    # The next bundle on the same session works fine.
    report, _, _ = client.pre_execute(service, session, [evalset.transactions[0]])
    assert not report.aborted
