"""Gateway ↔ service integration: functional parity, routing, overload."""

import pytest

from repro.core import (
    HarDTAPEService,
    NoIdleHevmError,
    PreExecutionClient,
    SecurityFeatures,
)
from repro.hypervisor.bundle_codec import (
    TransactionBundle,
    decode_trace_report,
    encode_bundle,
)
from repro.serving import (
    Gateway,
    GatewayConfig,
    RejectReason,
    RequestStatus,
    ServiceExecutor,
)


def _service(evalset, **kwargs):
    return HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        charge_fees=False,
        **kwargs,
    )


def _connect(service, device=None, seed=b"\x09" * 32):
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=seed
    )
    return client, client.connect(service, device)


def _sealed_payload(service, session, transactions):
    """A zero-arg callable sealing the bundle at dispatch time.

    Sealing late keeps the secure channel's strictly increasing nonces
    aligned with dispatch order (the gateway may reorder submissions).
    """
    bundle = TransactionBundle(
        transactions=tuple(transactions),
        block_number=service.synced_height,
    )

    def seal():
        return session.channel.seal(encode_bundle(bundle))

    return bundle, seal


def _open_report(session, bundle, sealed_out):
    report = decode_trace_report(session.channel.open(sealed_out))
    assert report.bundle_id == bundle.bundle_id()
    return report


def test_gateway_results_match_direct_path(tiny_evalset):
    transactions = tiny_evalset.transactions[:4]

    # Direct path: one service, pre_execute each tx.
    direct_service = _service(tiny_evalset)
    client, session = _connect(direct_service)
    direct = [
        client.pre_execute(direct_service, session, [tx])[0].traces[0]
        for tx in transactions
    ]

    # Gateway path: a separate but identically configured service.
    gw_service = _service(tiny_evalset)
    device = gw_service.least_loaded_device()
    device_index = gw_service.devices.index(device)
    _, gw_session = _connect(gw_service, device)
    gateway = Gateway(
        ServiceExecutor(gw_service),
        # One in flight per session: completion order == submit order,
        # so the channel's report nonces open in sequence.
        GatewayConfig(max_in_flight_per_session=1),
    )
    via_gateway = []
    for tx in transactions:
        bundle, seal = _sealed_payload(gw_service, gw_session, [tx])
        request = gateway.submit(
            gw_session.session_id, seal, device_index=device_index
        )
        assert request.status != RequestStatus.REJECTED
        gateway.drain()
        assert request.status == RequestStatus.COMPLETED
        report = _open_report(gw_session, bundle, request.result)
        via_gateway.append(report.traces[0])

    for direct_trace, gateway_trace in zip(direct, via_gateway):
        assert gateway_trace.status == direct_trace.status
        assert gateway_trace.gas_used == direct_trace.gas_used
        assert gateway_trace.return_data == direct_trace.return_data


def test_gateway_tracks_service_clock_and_waits(tiny_evalset):
    service = _service(tiny_evalset)
    device = service.devices[0]
    _, session = _connect(service, device)
    gateway = Gateway(
        ServiceExecutor(service),
        GatewayConfig(max_in_flight_per_session=1),
    )
    bundle, seal = _sealed_payload(
        service, session, [tiny_evalset.transactions[0]]
    )
    request = gateway.submit(session.session_id, seal, device_index=0)
    gateway.drain()
    # Service time is the SimClock delta of the real pipeline.
    assert request.service_us is not None and request.service_us > 0
    assert request.latency_us == pytest.approx(request.service_us)
    snapshot = gateway.metrics.snapshot()
    assert snapshot["gateway.completed"] == 1.0
    assert snapshot["gateway.service_us.count"] == 1.0


def test_overload_queues_then_sheds_with_typed_reasons(tiny_evalset):
    service = _service(tiny_evalset)
    device = service.devices[0]
    capacity = device.config.hevm_count
    gateway = Gateway(
        ServiceExecutor(service),
        GatewayConfig(max_queue_depth=2, max_in_flight_per_session=1),
    )
    sessions = [
        _connect(service, device, seed=bytes([index + 1]) * 32)[1]
        for index in range(capacity + 4)
    ]
    requests, bundles = [], {}
    for session in sessions:
        bundle, seal = _sealed_payload(
            service, session, [tiny_evalset.transactions[0]]
        )
        request = gateway.submit(session.session_id, seal, device_index=0)
        requests.append((session, request))
        bundles[request.request_id] = bundle

    statuses = [request.status for _, request in requests]
    assert statuses.count(RequestStatus.RUNNING) == capacity
    assert statuses.count(RequestStatus.QUEUED) == 2
    rejected = [
        request for _, request in requests
        if request.status == RequestStatus.REJECTED
    ]
    assert len(rejected) == 2
    assert {request.reject_reason for request in rejected} == {
        RejectReason.QUEUE_FULL
    }

    gateway.drain()
    for session, request in requests:
        if request.status == RequestStatus.COMPLETED:
            report = _open_report(
                session, bundles[request.request_id], request.result
            )
            assert report.traces[0].status == 1
    completed = sum(
        1 for _, request in requests
        if request.status == RequestStatus.COMPLETED
    )
    assert completed == capacity + 2           # everyone admitted finished


def test_pick_device_raises_typed_error_when_saturated(tiny_evalset):
    service = _service(tiny_evalset)
    scheduler = service.devices[0].hypervisor.scheduler
    held = []
    while service.devices[0].idle_hevms:
        scheduler.submit(b"hog", 0.0)
        assignment, _ = scheduler.try_assign(0.0)
        held.append(assignment)
    assert service.try_pick_device() is None
    with pytest.raises(NoIdleHevmError):
        service.pick_device()
    scheduler.release(held[0].core)
    assert service.pick_device() is service.devices[0]


def test_queue_depths_reflect_scheduler_state(tiny_evalset):
    service = _service(tiny_evalset)
    assert service.queue_depths() == [0]
    scheduler = service.devices[0].hypervisor.scheduler
    for _ in range(service.devices[0].config.hevm_count):
        scheduler.submit(b"hog", 0.0)
        scheduler.try_assign(0.0)
    scheduler.submit(b"waiting", 5.0)
    assert service.queue_depths() == [1]
    assert scheduler.queued_waits_us(15.0) == [10.0]
