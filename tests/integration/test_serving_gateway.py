"""Gateway ↔ service integration: functional parity, routing, overload,
and typed failure recovery (retry, failover, exhausted attempts)."""

import pytest

pytestmark = pytest.mark.serving

from repro.core import (
    HarDTAPEService,
    NoIdleHevmError,
    PreExecutionClient,
    SecurityFeatures,
)
from repro.faults import (
    FailoverBundle,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    ResilientServiceExecutor,
    RetryPolicy,
)
from repro.hypervisor.bundle_codec import (
    TransactionBundle,
    decode_trace_report,
    encode_bundle,
)
from repro.hypervisor.hypervisor import UnknownSessionError
from repro.serving import (
    Gateway,
    GatewayConfig,
    MetricsRegistry,
    RejectReason,
    RequestStatus,
    ServiceExecutor,
)


def _service(evalset, **kwargs):
    return HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        charge_fees=False,
        **kwargs,
    )


def _connect(service, device=None, seed=b"\x09" * 32):
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=seed
    )
    return client, client.connect(service, device)


def _sealed_payload(service, session, transactions):
    """A zero-arg callable sealing the bundle at dispatch time.

    Sealing late keeps the secure channel's strictly increasing nonces
    aligned with dispatch order (the gateway may reorder submissions).
    """
    bundle = TransactionBundle(
        transactions=tuple(transactions),
        block_number=service.synced_height,
    )

    def seal():
        return session.channel.seal(encode_bundle(bundle))

    return bundle, seal


def _open_report(session, bundle, sealed_out):
    report = decode_trace_report(session.channel.open(sealed_out))
    assert report.bundle_id == bundle.bundle_id()
    return report


def test_gateway_results_match_direct_path(tiny_evalset):
    transactions = tiny_evalset.transactions[:4]

    # Direct path: one service, pre_execute each tx.
    direct_service = _service(tiny_evalset)
    client, session = _connect(direct_service)
    direct = [
        client.pre_execute(direct_service, session, [tx])[0].traces[0]
        for tx in transactions
    ]

    # Gateway path: a separate but identically configured service.
    gw_service = _service(tiny_evalset)
    device = gw_service.least_loaded_device()
    device_index = gw_service.devices.index(device)
    _, gw_session = _connect(gw_service, device)
    gateway = Gateway(
        ServiceExecutor(gw_service),
        # One in flight per session: completion order == submit order,
        # so the channel's report nonces open in sequence.
        GatewayConfig(max_in_flight_per_session=1),
    )
    via_gateway = []
    for tx in transactions:
        bundle, seal = _sealed_payload(gw_service, gw_session, [tx])
        request = gateway.submit(
            gw_session.session_id, seal, device_index=device_index
        )
        assert request.status != RequestStatus.REJECTED
        gateway.drain()
        assert request.status == RequestStatus.COMPLETED
        report = _open_report(gw_session, bundle, request.result)
        via_gateway.append(report.traces[0])

    for direct_trace, gateway_trace in zip(direct, via_gateway):
        assert gateway_trace.status == direct_trace.status
        assert gateway_trace.gas_used == direct_trace.gas_used
        assert gateway_trace.return_data == direct_trace.return_data


def test_gateway_tracks_service_clock_and_waits(tiny_evalset):
    service = _service(tiny_evalset)
    device = service.devices[0]
    _, session = _connect(service, device)
    gateway = Gateway(
        ServiceExecutor(service),
        GatewayConfig(max_in_flight_per_session=1),
    )
    bundle, seal = _sealed_payload(
        service, session, [tiny_evalset.transactions[0]]
    )
    request = gateway.submit(session.session_id, seal, device_index=0)
    gateway.drain()
    # Service time is the SimClock delta of the real pipeline.
    assert request.service_us is not None and request.service_us > 0
    assert request.latency_us == pytest.approx(request.service_us)
    snapshot = gateway.metrics.snapshot()
    assert snapshot["gateway.completed"] == 1.0
    assert snapshot["gateway.service_us.count"] == 1.0


def test_overload_queues_then_sheds_with_typed_reasons(tiny_evalset):
    service = _service(tiny_evalset)
    device = service.devices[0]
    capacity = device.config.hevm_count
    gateway = Gateway(
        ServiceExecutor(service),
        GatewayConfig(max_queue_depth=2, max_in_flight_per_session=1),
    )
    sessions = [
        _connect(service, device, seed=bytes([index + 1]) * 32)[1]
        for index in range(capacity + 4)
    ]
    requests, bundles = [], {}
    for session in sessions:
        bundle, seal = _sealed_payload(
            service, session, [tiny_evalset.transactions[0]]
        )
        request = gateway.submit(session.session_id, seal, device_index=0)
        requests.append((session, request))
        bundles[request.request_id] = bundle

    statuses = [request.status for _, request in requests]
    assert statuses.count(RequestStatus.RUNNING) == capacity
    assert statuses.count(RequestStatus.QUEUED) == 2
    rejected = [
        request for _, request in requests
        if request.status == RequestStatus.REJECTED
    ]
    assert len(rejected) == 2
    assert {request.reject_reason for request in rejected} == {
        RejectReason.QUEUE_FULL
    }

    gateway.drain()
    for session, request in requests:
        if request.status == RequestStatus.COMPLETED:
            report = _open_report(
                session, bundles[request.request_id], request.result
            )
            assert report.traces[0].status == 1
    completed = sum(
        1 for _, request in requests
        if request.status == RequestStatus.COMPLETED
    )
    assert completed == capacity + 2           # everyone admitted finished


def test_pick_device_raises_typed_error_when_saturated(tiny_evalset):
    service = _service(tiny_evalset)
    scheduler = service.devices[0].hypervisor.scheduler
    held = []
    while service.devices[0].idle_hevms:
        scheduler.submit(b"hog", 0.0)
        assignment, _ = scheduler.try_assign(0.0)
        held.append(assignment)
    assert service.try_pick_device() is None
    with pytest.raises(NoIdleHevmError):
        service.pick_device()
    scheduler.release(held[0].core)
    assert service.pick_device() is service.devices[0]


def test_unknown_session_bounces_with_typed_error(tiny_evalset):
    service = _service(tiny_evalset)
    _, session = _connect(service)
    bundle = TransactionBundle(
        transactions=(tiny_evalset.transactions[0],),
        block_number=service.synced_height,
    )
    sealed = session.channel.seal(encode_bundle(bundle))
    bogus = b"\x00" * len(session.session_id)
    with pytest.raises(UnknownSessionError) as excinfo:
        service.submit_bundle(service.devices[0], bogus, sealed)
    assert bogus.hex() in str(excinfo.value)
    assert isinstance(excinfo.value, KeyError)  # compat with old handlers
    assert service.stats.unknown_sessions == 1
    assert service.stats.bundles_served == 0


def test_failover_redispatches_crashed_bundle_to_other_device(tiny_evalset):
    service = _service(tiny_evalset, device_count=2)
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x21" * 32
    )
    # The tenant attests a session on every device so its bundle can run
    # anywhere; the payload re-seals per attempt for the target channel.
    sessions = {
        index: client.connect(service, device)
        for index, device in enumerate(service.devices)
    }
    metrics = MetricsRegistry()
    # The very first transaction start crashes its core — exactly once.
    plan = FaultPlan(5, [FaultRule(FaultKind.HEVM_CRASH, rate=1.0, max_fires=1)])
    FaultInjector(plan, metrics).arm_service(service)

    gateway = Gateway(
        ResilientServiceExecutor(service, metrics=metrics),
        GatewayConfig(max_in_flight_per_session=1),
        metrics=metrics,
    )
    bundle = TransactionBundle(
        transactions=(tiny_evalset.transactions[0],),
        block_number=service.synced_height,
    )
    payload = FailoverBundle(sessions, encode_bundle(bundle))
    request = gateway.submit(sessions[0].session_id, payload, device_index=0)
    gateway.drain()

    assert request.status == RequestStatus.COMPLETED
    recovery = request.recovery
    assert recovery.attempts == 2
    assert recovery.recovered_errors == ["HevmCrashError"]
    assert recovery.failover is not None
    assert recovery.failover.from_device == 0
    assert recovery.failover.to_device == 1
    # The trace opens under the channel of the device that finished it.
    report = decode_trace_report(payload.open_with(1, request.result))
    assert report.bundle_id == bundle.bundle_id()
    assert report.traces[0].status == 1

    snapshot = metrics.snapshot()
    assert snapshot["faults.injected{kind=hevm-crash}"] == 1.0
    assert snapshot["recovery.errors{error=HevmCrashError}"] == 1.0
    assert snapshot["recovery.recovered"] == 1.0
    assert snapshot["gateway.failover"] == 1.0
    assert snapshot["faults.outcome{outcome=FailedOverError}"] == 1.0
    assert snapshot["gateway.completed"] == 1.0


def test_exhausted_recovery_surfaces_typed_gateway_failure(tiny_evalset):
    service = _service(tiny_evalset)  # one device: nowhere to fail over
    _, session = _connect(service)
    metrics = MetricsRegistry()
    plan = FaultPlan(6, [FaultRule(FaultKind.HEVM_CRASH, rate=1.0)])
    FaultInjector(plan, metrics).arm_service(service)
    gateway = Gateway(
        ResilientServiceExecutor(
            service,
            retry=RetryPolicy(max_attempts=2, backoff_us=50.0),
            metrics=metrics,
        ),
        GatewayConfig(max_in_flight_per_session=1),
        metrics=metrics,
    )
    _, seal = _sealed_payload(service, session, [tiny_evalset.transactions[0]])
    request = gateway.submit(session.session_id, seal, device_index=0)
    gateway.drain()

    assert request.status == RequestStatus.FAILED
    assert request.failure is not None
    assert request.failure.error_type == "BundleFailedError"
    assert request.failure.cause_type == "HevmCrashError"
    assert request.recovery.attempts == 2
    snapshot = metrics.snapshot()
    assert snapshot["gateway.failed"] == 1.0
    assert snapshot["gateway.failed{cause=HevmCrashError}"] == 1.0
    assert snapshot.get("gateway.completed", 0.0) == 0.0


def test_queue_depths_reflect_scheduler_state(tiny_evalset):
    service = _service(tiny_evalset)
    assert service.queue_depths() == [0]
    scheduler = service.devices[0].hypervisor.scheduler
    for _ in range(service.devices[0].config.hevm_count):
        scheduler.submit(b"hog", 0.0)
        scheduler.try_assign(0.0)
    scheduler.submit(b"waiting", 5.0)
    assert service.queue_depths() == [1]
    assert scheduler.queued_waits_us(15.0) == [10.0]
