"""Integration tests: the sharded ORAM fleet end to end.

Covers the fleet lifecycle the unit tests only touch in pieces: arm
per-shard recovery, crash one shard mid-service, verify the typed
per-shard error (the regression: it must NOT be the whole-fleet
``BundleFailedError``), recover from that shard's store alone, and
confirm data continuity — plus the pyramid backend running under a
real ``HarDTAPEService`` via ``DeviceConfig``.
"""

import hashlib

import pytest

from repro.core import (
    DeviceConfig,
    HarDTAPEService,
    PreExecutionClient,
    SecurityFeatures,
)
from repro.faults.errors import BundleFailedError
from repro.oram import paging
from repro.serving import MetricsRegistry
from repro.sharding import (
    PYRAMID_BACKEND,
    ShardedObliviousStateBackend,
    ShardedOramConfig,
    ShardedOramFleet,
    ShardMetricsExporter,
    ShardRecoveryCoordinator,
    ShardUnavailableError,
    SoftwareSealingAuthority,
    UnsupportedShardBackendError,
)
from repro.state.account import Account
from repro.telemetry.exporters import render_prometheus

pytestmark = pytest.mark.sharding

MASTER = hashlib.sha256(b"integration-fleet-master").digest()


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


def _accounts(n=12):
    out = {}
    for i in range(n):
        address = hashlib.blake2b(b"int-acct-%d" % i, digest_size=20).digest()
        out[address] = Account(
            balance=5000 + i,
            nonce=i % 5,
            code=bytes([i % 200] * 80),
            storage={0: i, 33: i * 3},
        )
    return out


def _armed_backend(shard_count=3):
    fleet = ShardedOramFleet(
        ShardedOramConfig(shard_count=shard_count, oram_height=7), MASTER
    )
    backend = ShardedObliviousStateBackend(fleet)
    coordinator = ShardRecoveryCoordinator(
        backend, SoftwareSealingAuthority(MASTER), checkpoint_interval=4
    )
    return backend, coordinator


def test_single_shard_crash_recovers_without_disturbing_the_fleet():
    backend, recovery = _armed_backend()
    accounts = _accounts()
    backend.sync_world(accounts)
    recovery.arm()
    assert recovery.armed_shards() == (0, 1, 2)

    # Journal some post-checkpoint traffic so recovery has work to do.
    addresses = sorted(accounts)
    for address in addresses:
        backend.get_meta(address)
    victim_address = addresses[0]
    victim = backend.shard_for_page(paging.account_page_key(victim_address))
    untouched = [sid for sid in backend.fleet.shard_ids if sid != victim]

    recovery.crash_shard(victim, "integration crash")
    with pytest.raises(ShardUnavailableError) as err:
        backend.get_meta(victim_address)
    assert err.value.shard_id == victim
    # Regression: the per-shard outage is NOT the whole-fleet error the
    # fault plane uses for condemned bundles.
    assert not isinstance(err.value, BundleFailedError)
    # Survivors keep serving reads correctly during the outage.
    for address in addresses:
        owner = backend.shard_for_page(paging.account_page_key(address))
        if owner != victim:
            assert backend.get_meta(address).balance == accounts[address].balance

    stores_before = {sid: recovery.store(sid).snapshot() for sid in untouched}
    replayed = recovery.recover_shard(victim)
    assert replayed >= 0
    # Blast radius: recovering the victim wrote to ITS store alone.
    for sid in untouched:
        assert recovery.store(sid).snapshot() == stores_before[sid]
    # Continuity: the recovered shard serves exactly the pre-crash state.
    for address in addresses:
        assert backend.get_meta(address).balance == accounts[address].balance
        assert backend.get_storage(address, 33) == accounts[address].storage[33]


def test_arming_a_pyramid_shard_is_a_typed_refusal():
    fleet = ShardedOramFleet(
        ShardedOramConfig(
            shard_count=2, oram_height=7,
            backend_overrides={1: PYRAMID_BACKEND},
        ),
        MASTER,
    )
    backend = ShardedObliviousStateBackend(fleet)
    recovery = ShardRecoveryCoordinator(backend, SoftwareSealingAuthority(MASTER))
    with pytest.raises(UnsupportedShardBackendError) as err:
        recovery.arm()
    assert err.value.shard_id == 1
    assert err.value.backend == PYRAMID_BACKEND


def test_shard_metrics_export_with_labels():
    backend, _ = _armed_backend()
    accounts = _accounts(8)
    backend.sync_world(accounts)
    for address in accounts:
        backend.get_meta(address)
    registry = MetricsRegistry()
    exporter = ShardMetricsExporter(registry)
    exporter.collect(backend.fleet)
    snapshot = registry.snapshot()
    total = sum(
        value for name, value in snapshot.items()
        if name.startswith("shard.oram.accesses{")
    )
    per_shard = backend.router.per_shard_accesses()
    assert total == sum(per_shard.values())
    # Collect is delta-based: a second pass with no traffic adds nothing.
    exporter.collect(backend.fleet)
    assert sum(
        value for name, value in registry.snapshot().items()
        if name.startswith("shard.oram.accesses{")
    ) == total
    rendered = render_prometheus(registry)
    assert 'shard="0"' in rendered
    assert 'backend="path"' in rendered
    assert "shard_oram_stash_blocks" in rendered


def test_pyramid_device_config_end_to_end(evalset):
    """The second ORAM backend under a real service, selected per device."""
    def run(backend_name):
        service = HarDTAPEService(
            evalset.node,
            SecurityFeatures.from_level("full"),
            device_config=DeviceConfig(
                oram_height=10, oram_backend=backend_name,
                pyramid_cache_blocks=64,
            ),
            charge_fees=False,
        )
        client = PreExecutionClient(
            service.manufacturer.root_public_key, rng_seed=b"\x0c" * 32
        )
        session = client.connect(service)
        results = []
        for tx in evalset.transactions[:3]:
            report, _, _ = client.pre_execute(service, session, [tx])
            trace = report.traces[0]
            results.append((trace.status, trace.gas_used, trace.return_data))
        return results

    assert run("pyramid") == run("path")


def test_pyramid_rejects_recursive_position_map(evalset):
    with pytest.raises(ValueError):
        HarDTAPEService(
            evalset.node,
            SecurityFeatures.from_level("full"),
            device_config=DeviceConfig(
                oram_backend="pyramid", recursive_position_map=True
            ),
            charge_fees=False,
        )
