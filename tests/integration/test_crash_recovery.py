"""Crash recovery end to end: the ISSUE's acceptance criteria as tests.

Three scenarios drive the full serving stack (gateway, sessions, ORAM,
checkpointing supervisor) rather than unit seams:

1. seeded mid-bundle hypervisor crashes — every affected request either
   completes after recovery or terminates with a typed crash failure,
   and the converged world-state digest is byte-identical to a no-crash
   baseline;
2. an SP rollback attack — stale tree served after restart is detected
   on the *first* access as ``RollbackDetectedError`` and healed by
   re-sync, and a rolled-back durable store is refused at boot;
3. the observer effect — zero-crash runs with checkpointing armed are
   byte-identical (traces, metrics, wire bytes, digest) to runs without.
"""

import pytest

from repro.recovery.bench import (
    CRASH_ERROR_TYPES,
    RecoveryBenchConfig,
    _run_deployment,
    _run_rollback_attack,
)

pytestmark = pytest.mark.recovery


@pytest.fixture(scope="module")
def config():
    return RecoveryBenchConfig.smoke(seed=1)


@pytest.fixture(scope="module")
def baseline(config):
    return _run_deployment(config, checkpointing=True, crash_rate=0.0)


@pytest.fixture(scope="module")
def crashed(config):
    return _run_deployment(config, checkpointing=True, crash_rate=config.crash_rate)


def test_crashes_fired_and_recovered(config, crashed):
    assert crashed.crashes_fired >= config.min_crashes
    assert crashed.restarts == crashed.crashes_fired
    assert crashed.affected, "no request ever observed a crash"


def test_every_affected_request_is_accounted(crashed):
    """100% of crash-affected requests complete after recovery or end in
    a typed FAILED — none hang, none vanish, none fail untyped."""
    for request in crashed.affected:
        if request.failure is not None:
            assert request.failure.cause_type in CRASH_ERROR_TYPES
        else:
            assert request.result is not None
    for load in crashed.loads:
        assert (
            load.completed + load.failed + load.rejected + load.expired
            == load.submitted
        )


def test_world_digest_matches_no_crash_baseline(baseline, crashed):
    """Recovery converges: crashes mid-bundle never corrupt or fork the
    synced world state."""
    assert crashed.digest == baseline.digest


def test_journal_and_checkpoints_actually_flowed(crashed):
    assert crashed.checkpoints_written > 0
    assert crashed.journal_records > 0
    assert crashed.store_bytes > 0


def test_checkpointing_is_byte_invisible_when_idle(config, baseline):
    """Arming the recovery plane must not perturb a healthy run: no DRBG
    draws, no clock advances, no extra trace records."""
    plain = _run_deployment(config, checkpointing=False, crash_rate=0.0)
    assert baseline.trace_hash == plain.trace_hash
    assert baseline.metrics_hash == plain.metrics_hash
    assert baseline.wire_hash == plain.wire_hash
    assert baseline.digest == plain.digest


def test_rollback_attack_detected_and_healed(config):
    result = _run_rollback_attack(config)
    # Stale tree after restart: caught on the very first path read, with
    # the pinned epoch strictly ahead of what the SP served.
    assert result["detected_first_access"]
    assert result["served_version"] < result["expected_version"]
    # Re-sync recovers a usable world on the honest tree.
    assert result["healed"]
    # Rolling back the durable store itself trips the NVRAM pin at boot.
    assert result["store_rollback_refused"]
