"""Session resumption end to end: real hypervisor tickets, crash epochs,
and SessionDirectory/ReattachableBundle re-join through the shard router.

Covers the two resumption-specific acceptance criteria:

* a ticket minted before a hypervisor crash is refused after restart
  with a typed ``StaleTicketError`` (epoch mismatch) — never absorbed
  by the fault plane as a retryable fault;
* a resumed session keeps its shard affinity through the shard-aware
  router, and the affinity is re-derived when the ring changes.
"""

import pytest

from repro.core import (
    HarDTAPEService,
    PreExecutionClient,
    SecurityFeatures,
)
from repro.faults.policy import RetryPolicy
from repro.hardware.timing import CostModel
from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle
from repro.hypervisor.hypervisor import UnknownSessionError
from repro.hypervisor.resumption import StaleTicketError
from repro.recovery.supervisor import (
    HypervisorSupervisor,
    ReattachableBundle,
    SessionDirectory,
)
from repro.serving import (
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    ShardSessionRouter,
    synthetic_profiles,
)
from repro.async_serving import (
    AsyncServingConfig,
    AsyncServingTier,
    ModelHandshakeEngine,
    ServiceHandshakeEngine,
    ServiceTenant,
    SessionState,
    VirtualReactor,
)

pytestmark = pytest.mark.serving

COST = CostModel()


@pytest.fixture(scope="module")
def service(request):
    evalset = request.getfixturevalue("tiny_evalset")
    return HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        charge_fees=False,
    )


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


def _client(service, seed=b"\x0a"):
    return PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=seed * 32
    )


# ---------------------------------------------------------------------
# Suspend/resume through the real hypervisor
# ---------------------------------------------------------------------

def test_suspend_evicts_and_resume_restores(service, evalset):
    client = _client(service)
    session = client.connect(service)
    device = session.device
    tx = evalset.transactions[0]
    client.pre_execute(service, session, [tx])

    before = device.hypervisor.session_count
    suspended = client.suspend(session)
    # Eviction is the point: the hypervisor holds nothing for the
    # session; the client holds the opaque ticket.
    assert device.hypervisor.session_count == before - 1

    resumed = client.resume(suspended)
    assert resumed.session_id != session.session_id
    report, _, _ = client.pre_execute(service, resumed, [tx])
    assert report.traces[0].status == 1

    # The evicted pre-suspend session id is gone for good.
    with pytest.raises(UnknownSessionError):
        client.pre_execute(service, session, [tx])


def test_resume_costs_under_five_percent_of_connect(service):
    client = _client(service, seed=b"\x0b")
    clock = service.clock

    t0 = clock.now_us
    session = client.connect(service)
    connect_us = clock.now_us - t0

    suspended = client.suspend(session)
    t1 = clock.now_us
    client.resume(suspended)
    resume_us = clock.now_us - t1

    assert connect_us >= COST.attestation_us + COST.dhke_us
    assert resume_us <= 0.05 * connect_us


def test_ticket_is_single_use(service):
    client = _client(service, seed=b"\x0c")
    suspended = client.suspend(client.connect(service))
    client.resume(suspended)
    with pytest.raises(Exception) as excinfo:
        client.resume(suspended)
    assert "already redeemed" in str(excinfo.value)


# ---------------------------------------------------------------------
# Crash epoch binding (satellite: stale tickets are typed, not retried)
# ---------------------------------------------------------------------

def test_pre_crash_ticket_refused_typed_after_restart(evalset):
    # A dedicated service: restarting its hypervisor must not disturb
    # the module-scoped fixture other tests share.
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("ES"), charge_fees=False
    )
    client = _client(service)
    suspended = client.suspend(client.connect(service))
    device = service.devices[0]
    assert device.hypervisor.generation == 0

    device.restart_hypervisor(None)
    assert device.hypervisor.generation == 1

    with pytest.raises(StaleTicketError) as excinfo:
        client.resume(suspended)
    error = excinfo.value
    assert error.minted_epoch == 0
    assert error.current_epoch == 1

    # The fault plane must refuse to absorb it: not retryable, and the
    # supervisor seam performs no intervention for it.
    assert RetryPolicy().is_recoverable(error) is False
    assert HypervisorSupervisor(None, None, None).intervene(error, 0) is False

    # The prescribed fallback — a fresh full handshake — still works.
    session = client.connect(service, device)
    assert device.hypervisor.session_count == 1
    assert session.session_id


# ---------------------------------------------------------------------
# Shard affinity across suspend/resume (satellite: router re-join)
# ---------------------------------------------------------------------

def _model_router(shards):
    gateways = {
        shard: Gateway(FleetModelExecutor(2, COST), GatewayConfig())
        for shard in range(shards)
    }
    return ShardSessionRouter(gateways)


def test_resumed_session_keeps_shard_affinity():
    router = _model_router(4)
    tier = AsyncServingTier(
        VirtualReactor(), router, ModelHandshakeEngine(COST, seed=3),
        config=AsyncServingConfig(suspend_after_us=1000.0),
    )
    profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
    session = tier.open_session(b"sticky-user")
    pinned = session.shard_affinity
    assert pinned == router.shard_for_session(b"sticky-user")

    tier.submit(b"sticky-user", profiles[0])
    tier.run()
    assert session.state == SessionState.SUSPENDED

    tier.submit(b"sticky-user", profiles[1])
    tier.run()
    # Same ring, same pin: the ticket carried the affinity through.
    assert session.shard_affinity == pinned
    assert "tier.affinity_rederived" not in tier.metrics.snapshot()


def test_affinity_rederived_after_ring_change():
    tier = AsyncServingTier(
        VirtualReactor(), _model_router(2), ModelHandshakeEngine(COST, seed=3),
        config=AsyncServingConfig(suspend_after_us=1000.0),
    )
    profiles = synthetic_profiles(COST, "mixed", count=4, seed=3)
    session = tier.open_session(b"migrating-user")
    tier.submit(b"migrating-user", profiles[0])
    tier.run()
    assert session.state == SessionState.SUSPENDED

    # Topology change while suspended: a bigger ring with a different
    # table digest.  The resume must re-derive, not trust the ticket.
    bigger = _model_router(8)
    tier.rebind_frontend(bigger)
    tier.submit(b"migrating-user", profiles[1])
    tier.run()
    assert session.shard_affinity == bigger.shard_for_session(
        b"migrating-user"
    )
    assert session.ring_digest == bigger.ring.table_digest()
    assert tier.metrics.snapshot()["tier.affinity_rederived"] == 1


# ---------------------------------------------------------------------
# SessionDirectory / ReattachableBundle re-join (real pipeline)
# ---------------------------------------------------------------------

def test_reattachable_bundle_follows_resumed_session(service, evalset):
    client = _client(service, seed=b"\x0d")
    directory = SessionDirectory()
    tenants = {b"tenant-0": ServiceTenant(client, directory, device_index=0)}
    engine = ServiceHandshakeEngine(service, tenants)
    tier = AsyncServingTier(
        VirtualReactor(start_us=service.clock.now_us),
        Gateway(FleetModelExecutor(2, COST), GatewayConfig()),
        engine,
        config=AsyncServingConfig(suspend_after_us=1000.0),
    )

    device = service.devices[0]
    before = device.hypervisor.session_count
    session = tier.open_session(b"tenant-0")
    assert device.hypervisor.session_count == before + 1
    first_id = directory.get(0).session_id

    bundle = TransactionBundle(
        transactions=(evalset.transactions[0],),
        block_number=service.synced_height,
    )
    payload = ReattachableBundle(directory, encode_bundle(bundle))

    # Drain to quiescence: the handshake completes, the session idles
    # past the suspend threshold, and the engine parks it via a real
    # hypervisor ticket — the hypervisor evicts its side entirely.
    tier.run()
    assert session.state == SessionState.SUSPENDED
    assert device.hypervisor.session_count == before

    # Wake it: the engine resumes through the ticket and re-points the
    # directory, so the bundle re-resolves to the *resumed* session.
    # (Idle eviction is done proving itself — leave the resumed session
    # live so the bundle can actually be submitted against it.)
    tier.config.suspend_after_us = None
    tier.submit(b"tenant-0", synthetic_profiles(COST, "mixed")[0])
    tier.run()
    assert session.state == SessionState.ACTIVE
    resumed_id = directory.get(0).session_id
    assert resumed_id != first_id
    assert payload.session_for(0) == resumed_id

    sealed_out, _, _, _ = service.submit_bundle(
        device, payload.session_for(0), payload.seal_for(0)
    )
    assert payload.open_with(0, sealed_out)
