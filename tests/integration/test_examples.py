"""The runnable examples stay runnable (smoke tests over main())."""

import importlib.util
import pathlib
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "attestation verified" in out
    assert "still 0" in out  # nothing persisted on-chain


def test_honeypot_detection(capsys):
    out = _run_example("honeypot_detection", capsys)
    assert "this contract is a honeypot" in out
    assert "victim balance: 100 ETH" in out


def test_block_sync_lifecycle(capsys):
    out = _run_example("block_sync_lifecycle", capsys)
    assert "Hypervisor rejected the block" in out


def test_frontrunning_privacy(capsys):
    out = _run_example("frontrunning_privacy", capsys)
    assert "frequency-analysis accuracy vs HarDTAPE: 0%" in out
    assert "frequency-analysis accuracy vs encrypted store: 100%" in out
