"""The -ESO configuration: storage through ORAM, code through plain
prefetched memory — the intermediate point of Figure 4."""

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.state import Transaction
from repro.workloads.contracts.profile import profile_calldata


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


@pytest.fixture(scope="module")
def eso(evalset):
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("ESO"), charge_fees=False
    )
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x0f" * 32
    )
    return service, client, client.connect(service)


def test_eso_storage_goes_through_oram(eso, evalset):
    service, client, session = eso
    backend = service.devices[0].oram_backend
    assert backend is not None
    tx = Transaction(
        sender=evalset.population.users[0],
        to=evalset.population.profiles[0],
        data=profile_calldata(4, 0),
    )
    before_storage = backend.stats.storage_queries
    before_code = backend.stats.code_queries
    report, _, breakdowns = client.pre_execute(service, session, [tx])
    assert report.traces[0].status == 1
    assert backend.stats.storage_queries > before_storage  # K-V via ORAM
    assert backend.stats.code_queries == before_code       # code NOT via ORAM
    assert breakdowns[0].oram_storage_us > 0
    assert breakdowns[0].oram_code_us == 0


def test_eso_code_fetches_visible_to_adversary(eso, evalset):
    """In -ESO the adversary sees plain code fetches (direct queries) —
    the leak that motivates going -full."""
    service, client, session = eso
    tx = Transaction(
        sender=evalset.population.users[1],
        to=evalset.population.profiles[2],
        data=profile_calldata(1, 0),
    )
    _, _, _, run_stats = service.submit_bundle(
        session.device,
        session.session_id,
        _seal(session, service, [tx]),
    )
    assert run_stats.direct_queries > 0


def _seal(session, service, transactions):
    from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle

    bundle = TransactionBundle(
        transactions=tuple(transactions), block_number=service.synced_height
    )
    return session.channel.seal(encode_bundle(bundle))


def test_eso_results_match_full(eso, evalset):
    service, client, session = eso
    full_service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    full_client = PreExecutionClient(
        full_service.manufacturer.root_public_key, rng_seed=b"\x1f" * 32
    )
    full_session = full_client.connect(full_service)
    tx = evalset.transactions[2]
    report_eso, _, _ = client.pre_execute(service, session, [tx])
    report_full, _, _ = full_client.pre_execute(full_service, full_session, [tx])
    assert report_eso.traces[0].gas_used == report_full.traces[0].gas_used
    assert report_eso.traces[0].return_data == report_full.traces[0].return_data
