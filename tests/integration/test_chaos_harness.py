"""The chaos harness end to end: determinism, recovery, accounting.

These are the ISSUE's acceptance criteria as tests: an armed all-zero
plan reproduces the unarmed baseline bit-for-bit, the same seed
reproduces the same report, a 5% DMA-corruption run still completes
≥ 90% of bundles, and every non-completion carries a typed reason —
no silent drops anywhere.
"""

import pytest

from repro.faults import ChaosConfig, FaultKind, run_chaos

pytestmark = pytest.mark.faults

# Small fleet/load so the whole module stays in tier-1 time budgets.
_SMALL = dict(tenants=2, requests_per_tenant=3)


def test_zero_rate_armed_run_matches_unarmed_baseline(tiny_evalset):
    armed = run_chaos(
        ChaosConfig(seed=3, fault_rate=0.0, armed=True, **_SMALL), tiny_evalset
    )
    unarmed = run_chaos(
        ChaosConfig(seed=3, fault_rate=0.0, armed=False, **_SMALL), tiny_evalset
    )
    assert armed.injected_total == 0
    # The armed-but-quiet injector perturbed *nothing*: every metric —
    # latency histograms included — is bit-for-bit the baseline's.
    assert armed.metrics == unarmed.metrics
    assert armed.load.completed == unarmed.load.completed
    assert armed.goodput_tps == unarmed.goodput_tps


def test_same_seed_reproduces_chaos_bit_for_bit(tiny_evalset):
    config = dict(seed=9, fault_rate=0.05, **_SMALL)
    first = run_chaos(ChaosConfig(**config), tiny_evalset)
    second = run_chaos(ChaosConfig(**config), tiny_evalset)
    assert first.metrics == second.metrics
    assert first.injected_by_kind == second.injected_by_kind
    assert first.goodput_tps == second.goodput_tps
    assert first.completion_rate == second.completion_rate


def test_dma_corruption_mostly_recovered_and_fully_accounted(tiny_evalset):
    report = run_chaos(
        ChaosConfig(seed=1, fault_rate=0.05, kinds=(FaultKind.DMA_CORRUPT,)),
        tiny_evalset,
    )
    load = report.load
    # Closed accounting: every submission ends in exactly one typed bin.
    assert (
        load.completed + load.failed + load.rejected + load.expired
        == load.submitted
    )
    assert sum(load.failed_by_reason.values()) == load.failed
    # ≥ 90% of bundles complete despite the corruption (via retry/failover).
    assert report.completion_rate >= 0.9
    # Injections flow through the metrics registry, not a side channel.
    assert report.metrics.get("faults.injected", 0.0) == report.injected_total
    if report.injected_total:
        assert report.metrics["faults.injected{kind=dma-corrupt}"] > 0
        assert report.recovered >= 1
