"""Service-level block sync, A.E.DMA, service stats, deployer edges."""

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.hypervisor.channel import SecureChannel
from repro.hypervisor.messages import AeDma, MessageError
from repro.state import Transaction
from repro.workloads.contracts import erc20


@pytest.fixture(scope="module")
def evalset():
    # A private evaluation set: this module GROWS the chain, so it must
    # not share the session-scoped fixture with other tests.
    from repro.workloads import EvaluationSetConfig, build_evaluation_set

    return build_evaluation_set(
        EvaluationSetConfig(blocks=2, txs_per_block=4, profile_contract_count=8)
    )


def test_service_sync_tracks_multiple_new_blocks(evalset):
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x2a" * 32
    )
    session = client.connect(service)
    population = evalset.population
    user, peer = population.users[0], population.users[1]

    start_height = service.synced_height
    for _ in range(3):
        evalset.node.add_block([
            Transaction(sender=user, to=population.token_a,
                        data=erc20.transfer_calldata(peer, 7)),
        ])
    synced = service.sync_new_blocks()
    assert synced == 3
    assert service.synced_height == start_height + 3
    assert service.stats.blocks_synced >= 3

    # The new balance is visible through the ORAM.
    report, _, _ = client.pre_execute(service, session, [
        Transaction(sender=user, to=population.token_a,
                    data=erc20.balance_of_calldata(peer)),
    ])
    onchain = evalset.node.state_at(service.synced_height).accounts[
        population.token_a
    ].storage[erc20.balance_slot(peer)]
    assert int.from_bytes(report.traces[0].return_data, "big") == onchain


def test_service_stats_accumulate(evalset):
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("ES"), charge_fees=False
    )
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x2b" * 32
    )
    session = client.connect(service)
    for tx in evalset.transactions[:3]:
        client.pre_execute(service, session, [tx])
    assert service.stats.bundles_served == 3
    assert service.stats.transactions_served == 3
    assert service.stats.total_service_time_us > 0
    assert len(service.stats.per_tx_breakdowns) == 3


def test_ae_dma_ingress_egress_accounting():
    key = b"\x77" * 32
    sender = SecureChannel(key, sign_messages=False)
    receiver = SecureChannel(key, sign_messages=False)
    dma = AeDma()
    body = b"x" * 300
    sealed = sender.seal(body)
    plaintext = dma.ingress(receiver, sealed, expected_length=300)
    assert plaintext == body
    out = dma.egress(sender, b"trace bytes")
    assert receiver.open(out) == b"trace bytes"
    assert dma.transfers == 2
    assert dma.bytes_moved == 300 + len(b"trace bytes")


def test_ae_dma_rejects_oversized_body():
    key = b"\x77" * 32
    sender = SecureChannel(key, sign_messages=False)
    receiver = SecureChannel(key, sign_messages=False)
    dma = AeDma()
    sealed = sender.seal(b"y" * 500)
    with pytest.raises(MessageError):
        dma.ingress(receiver, sealed, expected_length=100)


def test_deployer_handles_large_runtime(backend, chain):
    """Runtimes > 255 bytes force a wider PUSH in the init header."""
    from repro.evm import execute_transaction
    from repro.state import JournaledState, Transaction
    from repro.workloads.asm import assemble, deployer, push

    from tests.conftest import ALICE

    body = []
    for i in range(120):
        body += push(i + 1) + ["POP"]
    runtime = assemble(body + ["STOP"])
    assert len(runtime) > 255
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=None, data=deployer(runtime))
    )
    assert result.success, result.error
    assert state.get_code(result.created_address) == runtime
