"""End-to-end: user ↔ service ↔ device ↔ ORAM, full security stack."""

import pytest

from repro.core import (
    HarDTAPEService,
    PreExecutionClient,
    SecurityFeatures,
)
from repro.crypto.puf import Manufacturer
from repro.hypervisor.attestation import AttestationError
from repro.state import Transaction
from repro.workloads.contracts import erc20


@pytest.fixture(scope="module")
def service(request):
    evalset = request.getfixturevalue("tiny_evalset")
    return HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        charge_fees=False,
    )


@pytest.fixture(scope="module")
def evalset(request):
    return request.getfixturevalue("tiny_evalset")


def _client(service):
    return PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x09" * 32
    )


def test_connect_and_pre_execute(service, evalset):
    client = _client(service)
    session = client.connect(service)
    tx = evalset.transactions[0]
    report, elapsed, breakdowns = client.pre_execute(service, session, [tx])
    assert len(report.traces) == 1
    assert report.traces[0].status == 1
    assert elapsed > 0
    assert breakdowns[0].oram_storage_us > 0


def test_trace_matches_onchain_effects(service, evalset):
    client = _client(service)
    session = client.connect(service)
    population = evalset.population
    user = population.users[0]
    peer = population.users[1]
    tx = Transaction(
        sender=user,
        to=population.token_a,
        data=erc20.transfer_calldata(peer, 123),
    )
    report, _, _ = client.pre_execute(service, session, [tx])
    trace = report.traces[0]
    assert trace.status == 1
    assert int.from_bytes(trace.return_data, "big") == 1
    # The storage changes cover both balance slots.
    changed_slots = {key for (addr, key) in trace.storage_changes}
    assert erc20.balance_slot(user) in changed_slots
    assert erc20.balance_slot(peer) in changed_slots
    # One Transfer log with the canonical topic.
    assert trace.logs[0][1][0] == erc20.TRANSFER_EVENT_SIG


def test_bundle_transactions_see_each_other(service, evalset):
    client = _client(service)
    session = client.connect(service)
    population = evalset.population
    user = population.users[2]
    peer = population.users[3]
    bundle = [
        Transaction(
            sender=user, to=population.token_a,
            data=erc20.transfer_calldata(peer, 500),
        ),
        Transaction(
            sender=peer, to=population.token_a,
            data=erc20.balance_of_calldata(peer),
        ),
    ]
    report, _, _ = client.pre_execute(service, session, bundle)
    balance_after = int.from_bytes(report.traces[1].return_data, "big")
    # The second tx observes the first one's transfer within the bundle.
    onchain = service.node.state_at(service.synced_height).accounts[
        population.token_a
    ].storage.get(erc20.balance_slot(peer), 0)
    assert balance_after == onchain + 500


def test_pre_execution_does_not_persist(service, evalset):
    client = _client(service)
    session = client.connect(service)
    population = evalset.population
    user = population.users[4]
    peer = population.users[5]
    slot = erc20.balance_slot(peer)
    before = service.node.state_at(service.synced_height).accounts[
        population.token_b
    ].storage.get(slot, 0)
    tx = Transaction(
        sender=user, to=population.token_b,
        data=erc20.transfer_calldata(peer, 77),
    )
    client.pre_execute(service, session, [tx])
    client.pre_execute(service, session, [tx])  # run twice: still isolated
    after = service.node.state_at(service.synced_height).accounts[
        population.token_b
    ].storage.get(slot, 0)
    assert after == before  # workflow step 10: nothing persists


def test_fake_manufacturer_detected(service):
    rogue = Manufacturer(b"rogue")
    client = PreExecutionClient(rogue.root_public_key, rng_seed=b"\x01" * 32)
    with pytest.raises(AttestationError):
        client.connect(service)


def test_wrong_firmware_measurement_detected(service):
    from repro.hardware.csu import BootImage

    client = PreExecutionClient(
        service.manufacturer.root_public_key,
        expected_measurement=BootImage("hv", b"other").measurement(),
        rng_seed=b"\x02" * 32,
    )
    with pytest.raises(AttestationError):
        client.connect(service)


def test_sessions_are_independent(service, evalset):
    client_a = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x0a" * 32
    )
    client_b = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x0b" * 32
    )
    session_a = client_a.connect(service)
    session_b = client_b.connect(service)
    assert session_a.session_id != session_b.session_id
    tx = evalset.transactions[0]
    report_a, _, _ = client_a.pre_execute(service, session_a, [tx])
    report_b, _, _ = client_b.pre_execute(service, session_b, [tx])
    assert report_a.traces[0].gas_used == report_b.traces[0].gas_used


def test_scheduler_stats_track_bundles(service):
    device = service.devices[0]
    stats = device.hypervisor.scheduler.stats
    assert stats.bundles_completed == stats.bundles_started
    assert device.idle_hevms == device.config.hevm_count  # all released
