"""RLP codec against the canonical Ethereum examples."""

import pytest

from repro import rlp
from repro.rlp.codec import DecodingError


@pytest.mark.parametrize(
    "item,expected",
    [
        (b"dog", b"\x83dog"),
        ([b"cat", b"dog"], b"\xc8\x83cat\x83dog"),
        (b"", b"\x80"),
        ([], b"\xc0"),
        (b"\x00", b"\x00"),
        (b"\x0f", b"\x0f"),
        (b"\x04\x00", b"\x82\x04\x00"),
        (
            [[], [[]], [[], [[]]]],
            b"\xc7\xc0\xc1\xc0\xc3\xc0\xc1\xc0",
        ),
    ],
)
def test_canonical_examples(item, expected):
    assert rlp.encode(item) == expected
    assert rlp.decode(expected) == item


def test_long_string():
    payload = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit"
    encoded = rlp.encode(payload)
    assert encoded[0] == 0xB8
    assert encoded[1] == len(payload)
    assert rlp.decode(encoded) == payload


def test_long_list():
    items = [b"x" * 10] * 10
    encoded = rlp.encode(items)
    assert encoded[0] >= 0xF8
    assert rlp.decode(encoded) == items


def test_nested_structures():
    item = [b"a", [b"b", [b"c", b""]], b"d"]
    assert rlp.decode(rlp.encode(item)) == item


def test_encode_uint():
    assert rlp.encode_uint(0) == b""
    assert rlp.encode_uint(1) == b"\x01"
    assert rlp.encode_uint(255) == b"\xff"
    assert rlp.encode_uint(256) == b"\x01\x00"
    with pytest.raises(ValueError):
        rlp.encode_uint(-1)


def test_decode_uint_roundtrip():
    for value in (0, 1, 127, 128, 255, 2**64, 2**255):
        assert rlp.decode_uint(rlp.encode_uint(value)) == value


def test_decode_uint_rejects_leading_zero():
    with pytest.raises(DecodingError):
        rlp.decode_uint(b"\x00\x01")


def test_reject_trailing_bytes():
    with pytest.raises(DecodingError):
        rlp.decode(rlp.encode(b"dog") + b"\x00")


def test_reject_truncated_input():
    encoded = rlp.encode(b"x" * 100)
    with pytest.raises(DecodingError):
        rlp.decode(encoded[:-1])


def test_reject_non_minimal_single_byte():
    # 0x81 0x05 encodes a single byte < 0x80, which must self-encode.
    with pytest.raises(DecodingError):
        rlp.decode(b"\x81\x05")


def test_reject_non_canonical_long_length():
    # Long-string form used for a 1-byte payload.
    with pytest.raises(DecodingError):
        rlp.decode(b"\xb8\x01\x05")


def test_reject_unencodable_type():
    with pytest.raises(TypeError):
        rlp.encode(42)  # ints must go through encode_uint


def test_deep_nesting_roundtrip():
    item = b"leaf"
    for _ in range(30):
        item = [item]
    assert rlp.decode(rlp.encode(item)) == item
