"""EVM building blocks: stack, memory, gas schedule, opcode table, asm."""

import pytest

from repro.evm import gas, opcodes
from repro.evm.exceptions import StackOverflow, StackUnderflow
from repro.evm.frame import analyze_jumpdests
from repro.evm.memory import Memory, read_padded
from repro.evm.stack import STACK_LIMIT, Stack
from repro.workloads.asm import assemble, deployer, label, push, push_label, raw


# -- stack ------------------------------------------------------------------


def test_stack_push_pop():
    stack = Stack()
    stack.push(1)
    stack.push(2)
    assert stack.pop() == 2
    assert stack.pop() == 1


def test_stack_wraps_to_256_bits():
    stack = Stack()
    stack.push(2**256 + 5)
    assert stack.pop() == 5


def test_stack_underflow():
    with pytest.raises(StackUnderflow):
        Stack().pop()
    with pytest.raises(StackUnderflow):
        Stack().pop_many(1)


def test_stack_overflow_at_1024():
    stack = Stack()
    for i in range(STACK_LIMIT):
        stack.push(i)
    with pytest.raises(StackOverflow):
        stack.push(0)


def test_stack_dup_swap():
    stack = Stack()
    for i in (1, 2, 3):
        stack.push(i)
    stack.dup(3)  # copy the 1
    assert stack.peek() == 1
    stack.swap(3)  # swap top with 4th
    assert stack.pop() == 1
    assert stack.snapshot() == [1, 2, 3]


def test_stack_pop_many_order():
    stack = Stack()
    for i in (1, 2, 3):
        stack.push(i)
    assert stack.pop_many(3) == [3, 2, 1]


# -- memory ------------------------------------------------------------------


def test_memory_word_aligned_expansion():
    memory = Memory()
    memory.expand_to(0, 1)
    assert memory.size == 32
    memory.expand_to(33, 1)
    assert memory.size == 64


def test_memory_zero_length_does_not_expand():
    memory = Memory()
    memory.expand_to(1000, 0)
    assert memory.size == 0


def test_memory_read_write():
    memory = Memory()
    memory.expand_to(10, 4)
    memory.write(10, b"abcd")
    assert memory.read(10, 4) == b"abcd"
    assert memory.read(0, 2) == b"\x00\x00"


def test_read_padded():
    assert read_padded(b"abc", 1, 4) == b"bc\x00\x00"
    assert read_padded(b"abc", 10, 3) == b"\x00\x00\x00"
    assert read_padded(b"abc", 0, 0) == b""


# -- gas schedule --------------------------------------------------------------


def test_memory_cost_quadratic():
    assert gas.memory_cost(0) == 0
    assert gas.memory_cost(1) == 3
    assert gas.memory_cost(32) == 32 * 3 + 32 * 32 // 512


def test_memory_expansion_cost_is_delta():
    cost_0_to_2 = gas.memory_expansion_cost(0, 32, 32)
    cost_1_to_2 = gas.memory_expansion_cost(32, 32, 32)
    assert cost_0_to_2 == gas.memory_cost(2)
    assert cost_1_to_2 == gas.memory_cost(2) - gas.memory_cost(1)
    assert gas.memory_expansion_cost(64, 0, 32) == 0


def test_intrinsic_gas():
    assert gas.intrinsic_gas(b"", False) == 21_000
    assert gas.intrinsic_gas(b"\x00", False) == 21_004
    assert gas.intrinsic_gas(b"\x01", False) == 21_016
    create = gas.intrinsic_gas(b"\x01" * 32, True)
    assert create == 21_000 + 32_000 + 16 * 32 + 2  # one initcode word


def test_exp_cost_by_exponent_size():
    assert gas.exp_cost(0) == 0
    assert gas.exp_cost(1) == 50
    assert gas.exp_cost(256) == 100
    assert gas.exp_cost(2**255) == 50 * 32


def test_sstore_outcomes():
    # No-op write.
    assert gas.sstore_outcome(0, 5, 5).gas == gas.WARM_ACCESS
    # Fresh set.
    out = gas.sstore_outcome(0, 0, 5)
    assert out.gas == gas.SSTORE_SET and out.refund_delta == 0
    # Reset existing.
    out = gas.sstore_outcome(9, 9, 5)
    assert out.gas == gas.SSTORE_RESET
    # Clear existing refunds.
    out = gas.sstore_outcome(9, 9, 0)
    assert out.refund_delta == gas.SSTORE_CLEAR_REFUND
    # Dirty restore to original value.
    out = gas.sstore_outcome(9, 5, 9)
    assert out.gas == gas.WARM_ACCESS
    assert out.refund_delta == gas.SSTORE_RESET + gas.COLD_SLOAD - gas.WARM_ACCESS


def test_max_call_gas_63_64():
    assert gas.max_call_gas(6400) == 6400 - 100


# -- opcode table ------------------------------------------------------------------


def test_opcode_table_coverage():
    # All PUSH/DUP/SWAP/LOG families present.
    for n in range(1, 33):
        assert opcodes.name(0x5F + n) == f"PUSH{n}"
    for n in range(1, 17):
        assert opcodes.name(0x7F + n) == f"DUP{n}"
        assert opcodes.name(0x8F + n) == f"SWAP{n}"
    assert opcodes.push_size(0x60) == 1
    assert opcodes.push_size(0x7F) == 32
    assert opcodes.push_size(0x01) == 0
    assert opcodes.info(0xEF) is None


def test_every_opcode_has_a_handler():
    from repro.evm.instructions import DISPATCH

    for value in opcodes.ALL_OPCODES:
        assert value in DISPATCH, f"no handler for {opcodes.name(value)}"


def test_jumpdest_analysis_skips_push_immediates():
    # PUSH2 0x5B5B embeds JUMPDEST bytes that are NOT valid targets.
    code = assemble(["PUSH2", 0x5B5B, "JUMPDEST", "STOP"])
    valid = analyze_jumpdests(code)
    assert valid == {3}


# -- assembler ---------------------------------------------------------------------


def test_assemble_push_immediates():
    assert assemble(["PUSH1", 0xAA]) == b"\x60\xaa"
    assert assemble(["PUSH2", 0xBEEF]) == b"\x61\xbe\xef"
    assert assemble(push(0)) == b"\x5f"
    assert assemble(push(300)) == b"\x61\x01\x2c"


def test_assemble_labels():
    code = assemble(
        [push_label("end"), "JUMP", "INVALID", label("end"), "JUMPDEST", "STOP"]
    )
    # PUSH2 0x0005 JUMP INVALID JUMPDEST STOP
    assert code == b"\x61\x00\x05\x56\xfe\x5b\x00"


def test_assemble_raw_bytes():
    assert assemble([raw(b"\xde\xad"), "STOP"]) == b"\xde\xad\x00"


def test_assemble_errors():
    with pytest.raises(ValueError):
        assemble(["NOTANOP"])
    with pytest.raises(ValueError):
        assemble([push_label("missing"), "JUMP"])
    with pytest.raises(ValueError):
        assemble([label("a"), label("a")])
    with pytest.raises(ValueError):
        assemble([42])


def test_deployer_wraps_runtime():
    runtime = assemble(push(1) + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"])
    init = deployer(runtime)
    assert init.endswith(runtime)
    assert len(init) > len(runtime)
