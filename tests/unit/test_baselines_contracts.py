"""Baselines (Geth, TSC-VEE) and the workload contract library."""

import pytest

from repro.baselines import GethSimulator, TscVeeSimulator, UnsupportedContractCall
from repro.evm import execute_transaction
from repro.state import JournaledState, Transaction, to_address
from repro.workloads.contracts import dex, erc20, honeypot, rollup
from repro.workloads.contracts.profile import profile_calldata, profile_runtime

from tests.conftest import ALICE

TOKEN = to_address(0x70CE)


@pytest.fixture
def token_backend(backend):
    backend.ensure(TOKEN).code = erc20.erc20_runtime()
    return backend


# -- Geth baseline ------------------------------------------------------------


def test_geth_executes_and_times(token_backend, chain):
    geth = GethSimulator(token_backend)
    run = geth.execute(chain, Transaction(
        sender=ALICE, to=TOKEN, data=erc20.mint_calldata(ALICE, 100)
    ))
    assert run.result.success
    assert run.time_us > 0
    assert run.counts.get("storage", 0) >= 2  # balance + total supply


def test_geth_state_persists_across_calls(token_backend, chain):
    geth = GethSimulator(token_backend)
    geth.execute(chain, Transaction(
        sender=ALICE, to=TOKEN, data=erc20.mint_calldata(ALICE, 100)
    ))
    run = geth.execute(chain, Transaction(
        sender=ALICE, to=TOKEN, data=erc20.balance_of_calldata(ALICE)
    ))
    assert int.from_bytes(run.result.return_data, "big") == 100
    geth.reset_state()
    run = geth.execute(chain, Transaction(
        sender=ALICE, to=TOKEN, data=erc20.balance_of_calldata(ALICE)
    ))
    assert int.from_bytes(run.result.return_data, "big") == 0


def test_geth_fixed_cost_dominates_small_tx(token_backend, chain):
    geth = GethSimulator(token_backend)
    run = geth.execute(chain, Transaction(sender=ALICE, to=to_address(0xB0B)))
    from repro.hardware.timing import CostModel

    assert run.time_us >= CostModel().geth_tx_fixed_us


# -- TSC-VEE baseline -------------------------------------------------------------


def test_tscvee_single_contract_works(token_backend, chain):
    vee = TscVeeSimulator(token_backend, contract=TOKEN)
    run = vee.execute(chain, Transaction(
        sender=ALICE, to=TOKEN, data=erc20.mint_calldata(ALICE, 5)
    ))
    assert run.result.success
    # First call pays the prefetch; later calls do not.
    second = vee.execute(chain, Transaction(
        sender=ALICE, to=TOKEN, data=erc20.balance_of_calldata(ALICE)
    ))
    assert second.time_us < run.time_us


def test_tscvee_rejects_foreign_target(token_backend, chain):
    vee = TscVeeSimulator(token_backend, contract=TOKEN)
    with pytest.raises(UnsupportedContractCall):
        vee.execute(chain, Transaction(sender=ALICE, to=to_address(0x999)))


def test_tscvee_rejects_cross_contract_call(backend, chain):
    # A DEX calling out to tokens is exactly what TSC-VEE cannot do.
    token_a, token_b, pool = to_address(0xA0), to_address(0xB0), to_address(0xD0)
    backend.ensure(token_a).code = erc20.erc20_runtime()
    backend.ensure(token_b).code = erc20.erc20_runtime()
    backend.ensure(pool).code = dex.dex_runtime(token_a, token_b)
    backend.ensure(pool).storage.update({0: 1000, 1: 1000})
    vee = TscVeeSimulator(backend, contract=pool)
    with pytest.raises(UnsupportedContractCall):
        vee.execute(chain, Transaction(
            sender=ALICE, to=pool, data=dex.swap_calldata(10)
        ))


# -- contract library ----------------------------------------------------------------


def _run(backend, chain, to, data, sender=ALICE, value=0):
    state = JournaledState(backend)
    return execute_transaction(
        state, chain, Transaction(sender=sender, to=to, data=data, value=value)
    ), state


def test_profile_runtime_padding():
    assert len(profile_runtime(pad_to_bytes=4096)) == 4096
    with pytest.raises(ValueError):
        profile_runtime(pad_to_bytes=10)


def test_profile_contract_touches_requested_slots(backend, chain):
    target = to_address(0x51)
    backend.ensure(target).code = profile_runtime()
    result, state = _run(backend, chain, target, profile_calldata(5, 100))
    assert result.success, result.error
    for slot in range(100, 105):
        assert state.get_storage(target, slot) == 1
    assert state.get_storage(target, 105) == 0


def test_profile_contract_chain_depth(backend, chain):
    from repro.evm import CallTracer

    contracts = [to_address(0x51 + i) for i in range(4)]
    for address in contracts:
        backend.ensure(address).code = profile_runtime()
    tracer = CallTracer()
    state = JournaledState(backend)
    result = execute_transaction(
        state,
        chain,
        Transaction(
            sender=ALICE,
            to=contracts[0],
            data=profile_calldata(1, 0, chain=contracts[1:]),
        ),
        tracer=tracer,
    )
    assert result.success
    assert tracer.max_depth == 4


def test_erc20_full_lifecycle(token_backend, chain):
    state = JournaledState(token_backend)

    def call(data, sender=ALICE):
        return execute_transaction(
            state, chain, Transaction(sender=sender, to=TOKEN, data=data)
        )

    bob = to_address(0xB0B)
    assert call(erc20.mint_calldata(ALICE, 1000)).success
    assert call(erc20.transfer_calldata(bob, 400)).success
    result = call(erc20.balance_of_calldata(bob))
    assert int.from_bytes(result.return_data, "big") == 400
    result = call(erc20.total_supply_calldata())
    assert int.from_bytes(result.return_data, "big") == 1000
    # Transfer event uses the real Solidity topic.
    result = call(erc20.transfer_calldata(bob, 1))
    assert result.logs[0].topics[0] == erc20.TRANSFER_EVENT_SIG
    # Over-balance transfer reverts.
    assert not call(erc20.transfer_calldata(bob, 10**9)).success
    # Unknown selector reverts.
    assert not call(b"\xde\xad\xbe\xef").success


def test_erc20_storage_layout_is_solidity(token_backend, chain):
    state = JournaledState(token_backend)
    execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=TOKEN, data=erc20.mint_calldata(ALICE, 77)),
    )
    assert state.get_storage(TOKEN, erc20.balance_slot(ALICE)) == 77


def test_dex_swap_constant_product(backend, chain):
    token_a, token_b, pool = to_address(0xA0), to_address(0xB0), to_address(0xD0)
    backend.ensure(token_a).code = erc20.erc20_runtime()
    backend.ensure(token_b).code = erc20.erc20_runtime()
    backend.ensure(pool).code = dex.dex_runtime(token_a, token_b)
    backend.ensure(pool).storage.update({0: 50_000, 1: 80_000})
    state = JournaledState(backend)

    def call(to, data, sender=ALICE):
        return execute_transaction(
            state, chain, Transaction(sender=sender, to=to, data=data)
        )

    assert call(token_a, erc20.mint_calldata(ALICE, 10_000)).success
    assert call(token_b, erc20.mint_calldata(pool, 80_000)).success
    assert call(token_a, erc20.approve_calldata(pool, 10_000)).success
    result = call(pool, dex.swap_calldata(5_000))
    assert result.success, result.error
    out = int.from_bytes(result.return_data, "big")
    assert out == dex.expected_output(5_000, 50_000, 80_000)
    assert state.get_storage(pool, 0) == 55_000
    assert state.get_storage(pool, 1) == 80_000 - out
    # Without approval the swap reverts.
    result = call(pool, dex.swap_calldata(100, a_for_b=False))
    assert not result.success


def test_dex_reserves_getter(backend, chain):
    token_a, token_b, pool = to_address(0xA0), to_address(0xB0), to_address(0xD0)
    backend.ensure(pool).code = dex.dex_runtime(token_a, token_b)
    backend.ensure(pool).storage.update({0: 11, 1: 22})
    result, _ = _run(backend, chain, pool, dex.reserves_calldata())
    assert int.from_bytes(result.return_data[:32], "big") == 11
    assert int.from_bytes(result.return_data[32:], "big") == 22


def test_rollup_batch_updates(backend, chain):
    contract = to_address(0x0110)
    backend.ensure(contract).code = rollup.rollup_runtime()
    updates = [(i * 3, i + 1) for i in range(100)]
    result, state = _run(backend, chain, contract, rollup.rollup_calldata(updates))
    assert result.success
    for key, value in updates:
        assert state.get_storage(contract, key) == value


def test_rollup_memory_grows_with_batch(backend, chain):
    from repro.evm import CallTracer

    contract = to_address(0x0110)
    backend.ensure(contract).code = rollup.rollup_runtime()
    tracer = CallTracer()
    state = JournaledState(backend)
    updates = [(i, 1) for i in range(500)]
    execute_transaction(
        state,
        chain,
        Transaction(
            sender=ALICE, to=contract, data=rollup.rollup_calldata(updates),
            gas_limit=60_000_000,
        ),
        tracer=tracer,
    )
    # 500 pairs * 64 B + 32 B of calldata are copied into Memory.
    assert tracer.footprints[0].memory >= 500 * 64 + 32


def test_honeypot_traps_victims(backend, chain):
    contract = to_address(0xBAD)
    owner = to_address(0x0DD)
    backend.ensure(contract).code = honeypot.honeypot_runtime()
    backend.ensure(contract).storage[honeypot.OWNER_SLOT] = int.from_bytes(
        owner, "big"
    )
    backend.ensure(owner).balance = 10**18
    state = JournaledState(backend)

    def call(data, sender, value=0):
        return execute_transaction(
            state, chain,
            Transaction(sender=sender, to=contract, data=data, value=value),
        )

    assert call(honeypot.deposit_calldata(), ALICE, value=1000).success
    assert not call(honeypot.withdraw_calldata(), ALICE).success  # trapped
    assert call(honeypot.deposit_calldata(), owner, value=10).success
    assert call(honeypot.withdraw_calldata(), owner).success  # owner exits
