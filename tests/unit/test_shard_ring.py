"""Unit tests for the consistent-hash ring (repro.sharding.ring)."""

import pytest

from repro.sharding import ConsistentHashRing, RingConfigurationError

pytestmark = pytest.mark.sharding


def _keys(n: int) -> list[bytes]:
    return [b"page-%06d" % i for i in range(n)]


def test_ring_is_deterministic_and_seed_scoped():
    a = ConsistentHashRing(range(4))
    b = ConsistentHashRing(range(4))
    assert a.table_digest() == b.table_digest()
    assert [a.shard_for(k) for k in _keys(200)] == [
        b.shard_for(k) for k in _keys(200)
    ]
    other = ConsistentHashRing(range(4), seed=b"other-deployment")
    assert other.table_digest() != a.table_digest()


def test_every_shard_owns_keys():
    ring = ConsistentHashRing(range(8), vnodes=128)
    counts = ring.assignment_counts(_keys(2000))
    assert set(counts) == set(range(8))
    assert all(count > 0 for count in counts.values())
    assert sum(counts.values()) == 2000


def test_shards_for_is_sorted_and_distinct():
    ring = ConsistentHashRing(range(8))
    touched = ring.shards_for(_keys(100))
    assert list(touched) == sorted(set(touched))
    assert all(sid in range(8) for sid in touched)


def test_add_shard_moves_only_keys_onto_the_new_shard():
    small = ConsistentHashRing(range(4))
    big = small.with_shard(4)
    keys = _keys(3000)
    moved = 0
    for key in keys:
        before, after = small.shard_for(key), big.shard_for(key)
        if before != after:
            assert after == 4  # minimal movement: changes only gain the new shard
            moved += 1
    # ~K/N with generous slack for hash variance.
    assert 0 < moved <= 2.5 * len(keys) / 5


def test_remove_shard_strands_only_its_keys():
    big = ConsistentHashRing(range(5))
    small = big.without_shard(2)
    for key in _keys(3000):
        before, after = big.shard_for(key), small.shard_for(key)
        if before != 2:
            assert after == before  # untouched shards keep every key
        else:
            assert after != 2


def test_mutation_returns_new_rings():
    ring = ConsistentHashRing(range(3))
    grown = ring.with_shard(7)
    assert ring.shard_ids == (0, 1, 2)
    assert grown.shard_ids == (0, 1, 2, 7)
    with pytest.raises(RingConfigurationError):
        ring.with_shard(1)
    with pytest.raises(RingConfigurationError):
        ring.without_shard(9)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"shard_ids": []},
        {"shard_ids": [1, 1]},
        {"shard_ids": [-1]},
        {"shard_ids": [0], "vnodes": 0},
        {"shard_ids": [0], "seed": b""},
        {"shard_ids": [0], "seed": b"x" * 65},
    ],
)
def test_invalid_configurations_are_rejected(kwargs):
    shard_ids = kwargs.pop("shard_ids")
    with pytest.raises(RingConfigurationError):
        ConsistentHashRing(shard_ids, **kwargs)
