"""Unit tests for repro.telemetry.flight: rings, sealing, determinism."""

import json

import pytest

from repro.telemetry.flight import (
    SEAL_CAUSES,
    FlightEntry,
    FlightRecorder,
    SealedDump,
)


def _fill(recorder, session=b"\x01" * 8, n=3):
    for i in range(n):
        recorder.note(session, "event", f"step-{i}", float(i), ordinal=i)
    return session


class TestRing:
    def test_entries_record_in_order(self):
        recorder = FlightRecorder()
        session = _fill(recorder)
        ring = recorder.ring_of(session)
        assert [entry.name for entry in ring] == ["step-0", "step-1", "step-2"]
        assert all(isinstance(entry, FlightEntry) for entry in ring)

    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=4)
        session = _fill(recorder, n=10)
        ring = recorder.ring_of(session)
        assert len(ring) == 4
        assert ring[0].name == "step-6"  # oldest entries fell off

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_sessions_are_isolated(self):
        recorder = FlightRecorder()
        _fill(recorder, session=b"a" * 8)
        _fill(recorder, session=b"b" * 8, n=1)
        assert len(recorder.ring_of(b"a" * 8)) == 3
        assert len(recorder.ring_of(b"b" * 8)) == 1
        assert recorder.session_count == 2

    def test_attr_keys_may_shadow_header_names(self):
        # The note() header is positional-only precisely so instrumentation
        # can attach attributes called kind/name without a collision.
        recorder = FlightRecorder()
        recorder.note(b"s", "event", "handshake", 0.0, kind="full", name="x")
        entry = recorder.ring_of(b"s")[0]
        assert dict(entry.data) == {"kind": "full", "name": "x"}

    def test_note_span_and_metric_kinds(self):
        recorder = FlightRecorder()
        recorder.note_span(b"s", "tier.handshake", 1.0, 42.0, shard=3)
        recorder.note_metric(b"s", "tier.live", 2.0, delta=1.0)
        kinds = [entry.kind for entry in recorder.ring_of(b"s")]
        assert kinds == ["span", "metric"]


class TestSealing:
    def test_seal_causes_are_the_typed_failures(self):
        assert SEAL_CAUSES == {
            "BundleFailedError", "StaleTicketError", "ShardUnavailableError",
            # Byzantine verdicts from the receipt-audit plane.
            "ReceiptMismatchError", "ReceiptMissingError",
            "QuarantinedDeviceError",
        }
        assert FlightRecorder.should_seal("StaleTicketError")
        assert FlightRecorder.should_seal("ReceiptMismatchError")
        assert not FlightRecorder.should_seal("ValueError")

    def test_seal_freezes_the_ring(self):
        recorder = FlightRecorder()
        session = _fill(recorder)
        dump = recorder.seal(session, "StaleTicketError", "epoch moved", 9.0)
        assert isinstance(dump, SealedDump)
        assert dump.cause_type == "StaleTicketError"
        assert dump.session_id == session.hex()
        assert len(dump.entries) == 3
        # The ring keeps recording after the seal; the dump does not grow.
        recorder.note(session, "event", "post-seal", 10.0)
        assert len(dump.entries) == 3

    def test_seal_if_triggered_filters_untyped_causes(self):
        recorder = FlightRecorder()
        session = _fill(recorder)
        assert recorder.seal_if_triggered(session, "ValueError", "x", 1.0) is None
        assert recorder.dumps == []
        dump = recorder.seal_if_triggered(
            session, "BundleFailedError", "device fault", 2.0
        )
        assert dump is not None and recorder.dumps == [dump]

    def test_sequence_numbers_are_global_seal_order(self):
        recorder = FlightRecorder()
        a = recorder.seal(b"a", "StaleTicketError", "r", 1.0)
        b = recorder.seal(b"b", "StaleTicketError", "r", 2.0)
        assert (a.sequence, b.sequence) == (0, 1)
        assert recorder.dump_digests() == [a.digest, b.digest]

    def test_digest_commits_to_canonical_json(self):
        recorder = FlightRecorder()
        session = _fill(recorder)
        dump = recorder.seal(session, "StaleTicketError", "r", 3.0)
        doc = json.loads(dump.canonical_json())
        assert doc["cause_type"] == "StaleTicketError"
        assert doc["entries"][0]["name"] == "step-0"
        # bytes attrs hex-encode deterministically
        recorder.note(b"t", "event", "x", 0.0, payload=b"\xde\xad")
        other = recorder.seal(b"t", "StaleTicketError", "r", 4.0)
        assert json.loads(other.canonical_json())["entries"][0]["data"][
            "payload"] == "dead"

    def test_identical_histories_produce_identical_digests(self):
        def run():
            recorder = FlightRecorder()
            session = _fill(recorder)
            return recorder.seal(session, "StaleTicketError", "r", 9.0)

        assert run().digest == run().digest

    def test_digest_is_sensitive_to_every_field(self):
        def seal(reason="r", at=9.0, n=3):
            recorder = FlightRecorder()
            session = _fill(recorder, n=n)
            return recorder.seal(session, "StaleTicketError", reason, at)

        base = seal()
        assert seal(reason="other").digest != base.digest
        assert seal(at=10.0).digest != base.digest
        assert seal(n=2).digest != base.digest
