"""HKDF, DRBG, and the simulated PUF / Manufacturer chain."""

import pytest

from repro.crypto.ecc import InvalidSignature
from repro.crypto.kdf import Drbg, hkdf_sha256
from repro.crypto.puf import Manufacturer, SimulatedPuf


def test_hkdf_rfc5869_case_1():
    # RFC 5869 test case 1.
    okm = hkdf_sha256(
        ikm=bytes.fromhex("0b" * 22),
        salt=bytes.fromhex("000102030405060708090a0b0c"),
        info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
        length=42,
    )
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_length_cap():
    with pytest.raises(ValueError):
        hkdf_sha256(b"ikm", length=255 * 32 + 1)


def test_drbg_deterministic():
    a = Drbg(b"seed").random_bytes(64)
    b = Drbg(b"seed").random_bytes(64)
    assert a == b


def test_drbg_personalization_separates_streams():
    a = Drbg(b"seed", personalization=b"a").random_bytes(32)
    b = Drbg(b"seed", personalization=b"b").random_bytes(32)
    assert a != b


def test_drbg_randint_bounds():
    rng = Drbg(b"seed")
    values = [rng.randint(10) for _ in range(500)]
    assert all(0 <= v < 10 for v in values)
    assert len(set(values)) == 10  # all values appear over 500 draws


def test_drbg_randint_near_uniform():
    rng = Drbg(b"seed2")
    draws = [rng.randint(4) for _ in range(4000)]
    for bucket in range(4):
        share = draws.count(bucket) / len(draws)
        assert 0.2 < share < 0.3


def test_drbg_randrange():
    rng = Drbg(b"seed")
    assert all(5 <= rng.randrange(5, 9) < 9 for _ in range(100))
    with pytest.raises(ValueError):
        rng.randrange(5, 5)


def test_drbg_fork_independent():
    parent = Drbg(b"seed")
    child_a = parent.fork(b"a")
    child_b = parent.fork(b"b")
    assert child_a.random_bytes(16) != child_b.random_bytes(16)


def test_puf_stable_and_device_unique():
    puf1 = SimulatedPuf(b"master", b"serial-1")
    puf1_again = SimulatedPuf(b"master", b"serial-1")
    puf2 = SimulatedPuf(b"master", b"serial-2")
    assert puf1.derive_key(b"k") == puf1_again.derive_key(b"k")
    assert puf1.derive_key(b"k") != puf2.derive_key(b"k")


def test_manufacturer_endorsement_verifies():
    manufacturer = Manufacturer(b"master")
    _, identity = manufacturer.provision(b"serial-9")
    message = Manufacturer.endorsement_message(
        identity.serial, identity.device_key.public_key()
    )
    manufacturer.root_public_key.verify(message, identity.endorsement)


def test_forged_device_fails_endorsement():
    honest = Manufacturer(b"master")
    rogue = Manufacturer(b"rogue-master")
    _, forged = rogue.provision(b"serial-9")
    message = Manufacturer.endorsement_message(
        forged.serial, forged.device_key.public_key()
    )
    with pytest.raises(InvalidSignature):
        honest.root_public_key.verify(message, forged.endorsement)


def test_puf_key_matches_device_key():
    manufacturer = Manufacturer(b"master")
    puf, identity = manufacturer.provision(b"serial-1")
    from repro.crypto.ecc import PrivateKey

    rederived = PrivateKey.from_bytes(puf.derive_key(b"device-key"))
    assert rederived.secret == identity.device_key.secret
