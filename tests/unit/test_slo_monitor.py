"""Unit tests for repro.telemetry.slo: rules, burn windows, cooldowns."""

import pytest

from repro.telemetry.slo import SloMonitor, SloRule, default_slo_rules


def _rule(**overrides):
    base = dict(
        name="r", kind="level", metrics=("m",),
        objective=10.0, window_us=100.0,
    )
    base.update(overrides)
    return SloRule(**base)


class TestRules:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            _rule(kind="median")

    def test_burn_rate_needs_denominators(self):
        with pytest.raises(ValueError):
            _rule(kind="burn_rate")
        _rule(kind="burn_rate", denominators=("d",))  # ok

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            _rule(metrics=())

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            SloMonitor([_rule(), _rule()])

    def test_default_rules_cover_the_serving_planes(self):
        rules = {rule.name: rule for rule in default_slo_rules()}
        assert set(rules) == {
            "handshake-p99-cost", "shed-rate", "resumed-cost-share",
            "stale-ticket-rate", "shard-stash-occupancy",
        }
        assert rules["shed-rate"].kind == "burn_rate"
        assert rules["shard-stash-occupancy"].kind == "gauge_max"
        SloMonitor(list(rules.values()))  # all constructible together


class TestLevelAndGauge:
    def test_level_fires_above_objective(self):
        monitor = SloMonitor([_rule()])
        assert monitor.observe({"m": 9.0}, 0.0) == []
        fired = monitor.observe({"m": 11.0}, 1.0)
        assert [alert.rule for alert in fired] == ["r"]
        assert fired[0].value == 11.0 and fired[0].at_us == 1.0

    def test_missing_metric_is_silent(self):
        monitor = SloMonitor([_rule()])
        assert monitor.observe({}, 0.0) == []

    def test_gauge_max_spans_the_label_family(self):
        monitor = SloMonitor([_rule(kind="gauge_max", metrics=("g",))])
        snapshot = {'g{shard=0}': 3.0, 'g{shard=1}': 12.0}
        fired = monitor.observe(snapshot, 0.0)
        assert fired and fired[0].value == 12.0

    def test_cooldown_bounds_the_alert_train(self):
        monitor = SloMonitor([_rule()])
        assert monitor.observe({"m": 11.0}, 0.0)        # fires
        assert not monitor.observe({"m": 11.0}, 50.0)   # within cooldown
        assert monitor.observe({"m": 11.0}, 100.0)      # re-armed
        assert len(monitor.alerts) == 2


class TestRatioAndBurn:
    def test_ratio_fires_and_guards_zero_denominator(self):
        rule = _rule(kind="ratio", metrics=("num",),
                     denominators=("den",), objective=0.5)
        monitor = SloMonitor([rule])
        assert monitor.observe({"num": 1.0, "den": 0.0}, 0.0) == []
        assert monitor.observe({"num": 3.0, "den": 4.0}, 1.0)

    def test_burn_rate_needs_a_baseline(self):
        rule = _rule(kind="burn_rate", metrics=("bad",),
                     denominators=("total",), objective=0.1)
        monitor = SloMonitor([rule])
        # First observation establishes the baseline: never fires.
        assert monitor.observe({"bad": 100.0, "total": 100.0}, 0.0) == []
        # Second: 10 new bad / 20 new total = 0.5 > 0.1.
        fired = monitor.observe({"bad": 110.0, "total": 120.0}, 50.0)
        assert fired and fired[0].value == pytest.approx(0.5)

    def test_burn_rate_sums_labelled_families(self):
        rule = _rule(kind="burn_rate", metrics=("rej",),
                     denominators=("sub",), objective=0.1)
        monitor = SloMonitor([rule])
        monitor.observe({"rej": 0.0, "sub": 0.0}, 0.0)
        fired = monitor.observe(
            {"rej": 1.0, 'rej{reason=queue_full}': 1.0, "sub": 4.0}, 10.0
        )
        assert fired and fired[0].value == pytest.approx(0.5)

    def test_burn_rate_window_slides(self):
        rule = _rule(kind="burn_rate", metrics=("bad",),
                     denominators=("total",), objective=0.9,
                     window_us=100.0)
        monitor = SloMonitor([rule])
        monitor.observe({"bad": 0.0, "total": 0.0}, 0.0)
        monitor.observe({"bad": 100.0, "total": 100.0}, 60.0)
        # At t=200 the t=0 baseline (and the t=60 burst) is out of window:
        # the delta vs t=60 is 0/100, not 100/200 — no alert.
        fired = monitor.observe({"bad": 100.0, "total": 200.0}, 200.0)
        assert fired == []

    def test_no_denominator_growth_is_silent(self):
        rule = _rule(kind="burn_rate", metrics=("bad",),
                     denominators=("total",), objective=0.1)
        monitor = SloMonitor([rule])
        monitor.observe({"bad": 0.0, "total": 5.0}, 0.0)
        assert monitor.observe({"bad": 3.0, "total": 5.0}, 50.0) == []


class TestDeterminism:
    def test_alert_dicts_are_replayable(self):
        def run():
            monitor = SloMonitor(default_slo_rules(window_us=100.0))
            snapshots = [
                ({"tier.stale_tickets": 0.0, "tier.resumed": 0.0}, 0.0),
                ({"tier.stale_tickets": 8.0, "tier.resumed": 2.0}, 50.0),
                ({"tier.stale_tickets": 8.0, "tier.resumed": 10.0}, 150.0),
            ]
            for snapshot, at in snapshots:
                monitor.observe(snapshot, at)
            return monitor.alert_dicts()

        first, second = run(), run()
        assert first == second
        assert [alert["rule"] for alert in first] == ["stale-ticket-rate"]
