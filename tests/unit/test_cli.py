"""The repro CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_runs(capsys):
    assert main(["demo", "--level", "raw"]) == 0
    out = capsys.readouterr().out
    assert "pre-executed" in out and "status=1" in out


def test_evalset_summary(capsys):
    assert main(["evalset", "--blocks", "1", "--txs-per-block", "3"]) == 0
    out = capsys.readouterr().out
    assert "3 pre-executable transactions" in out
    assert "profile code sizes" in out


def test_trace_prints_opcodes(capsys):
    assert main([
        "trace", "--blocks", "1", "--txs-per-block", "2",
        "--tx", "0", "--steps", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "pc=0" in out and "status=" in out


def test_trace_rejects_bad_index(capsys):
    assert main([
        "trace", "--blocks", "1", "--txs-per-block", "2", "--tx", "99",
    ]) == 1
    assert "out of range" in capsys.readouterr().err


def test_resources_table(capsys):
    assert main(["resources"]) == 0
    out = capsys.readouterr().out
    assert "103,388" in out
    assert "HEVMs per XCZU15EV: 3" in out


def test_disasm_library_contract(capsys):
    assert main(["disasm", "erc20"]) == 0
    out = capsys.readouterr().out
    assert "dispatch selectors" in out and "0xa9059cbb" in out


def test_disasm_hex_bytecode(capsys):
    assert main(["disasm", "0x6001600201"]) == 0
    out = capsys.readouterr().out
    assert "PUSH1 0x1" in out and "ADD" in out


def test_disasm_unknown_input(capsys):
    assert main(["disasm", "not-a-contract"]) == 1


def test_recovery_bench_rejects_bad_seed(capsys):
    assert main(["recovery-bench", "--seed", "-1"]) == 2
    assert main(["recovery-bench", "--seed", str(2**64)]) == 2
    assert "seed" in capsys.readouterr().err


@pytest.mark.recovery
def test_recovery_bench_smoke(capsys, tmp_path):
    out_path = tmp_path / "BENCH_recovery.json"
    assert main(["recovery-bench", "--smoke", "--json-out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "all gates passed" in out
    import json

    parsed = json.loads(out_path.read_text())
    assert parsed["passed"] is True
    assert parsed["crash"]["crashes_fired"] >= 3
    assert parsed["identity"]["digest"] is True


def test_c10k_bench_rejects_bad_seed(capsys):
    assert main(["c10k-bench", "--seed", "-1"]) == 2
    assert main(["c10k-bench", "--seed", str(2**64)]) == 2
    assert "seed" in capsys.readouterr().err


@pytest.mark.serving
def test_c10k_bench_smoke_scaled_down(capsys, tmp_path):
    # --sessions scales the concurrency scenario so the unit suite stays
    # fast; the full 10k gate runs in bench_c10k / the CI c10k job.
    out_path = tmp_path / "BENCH_c10k.json"
    assert main([
        "c10k-bench", "--smoke", "--sessions", "64",
        "--json-out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "all gates passed" in out
    import json

    parsed = json.loads(out_path.read_text())
    assert parsed["passed"] is True
    assert parsed["identity"]["digest"] is True
    assert parsed["c10k"]["peak_live"] >= 64
    assert parsed["epoch"]["stale_refused"] == parsed["epoch"]["sessions"]


def test_serve_bench_sweep_and_overload(capsys):
    assert main([
        "serve-bench", "--hevms", "2,4", "--requests", "5",
        "--overload-rate", "3000",
    ]) == 0
    out = capsys.readouterr().out
    assert "closed-loop sweep" in out
    assert "server util" in out
    assert "open-loop overload" in out
    assert "shed rate" in out


def test_serve_bench_without_overload(capsys):
    assert main([
        "serve-bench", "--hevms", "2", "--requests", "3",
        "--workload", "mixed", "--overload-rate", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "mixed workload" in out
    assert "open-loop" not in out
