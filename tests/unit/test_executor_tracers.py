"""Transaction executor, logs, precompiles, and tracers."""

import pytest

from repro.evm import (
    CountingTracer,
    InvalidTransaction,
    MultiTracer,
    StructTracer,
    execute_transaction,
)
from repro.evm.precompiles import is_precompile
from repro.state import JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, push

from tests.conftest import ALICE, BOB, COINBASE

TARGET = to_address(0xE0)


def test_plain_transfer_costs_21000(state, chain):
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=BOB, value=1)
    )
    assert result.success and result.gas_used == 21_000
    assert state.get_balance(BOB) == 10**18 + 1


def test_fees_move_to_coinbase(state, chain):
    before = state.get_balance(COINBASE)
    execute_transaction(
        state, chain, Transaction(sender=ALICE, to=BOB, value=0, gas_price=3)
    )
    assert state.get_balance(COINBASE) == before + 21_000 * 3


def test_charge_fees_false_skips_fees(state, chain):
    alice_before = state.get_balance(ALICE)
    execute_transaction(
        state,
        chain,
        Transaction(sender=ALICE, to=BOB, value=0),
        charge_fees=False,
    )
    assert state.get_balance(ALICE) == alice_before


def test_nonce_increments(state, chain):
    execute_transaction(state, chain, Transaction(sender=ALICE, to=BOB))
    assert state.get_nonce(ALICE) == 1


def test_nonce_mismatch_rejected(state, chain):
    with pytest.raises(InvalidTransaction):
        execute_transaction(
            state, chain, Transaction(sender=ALICE, to=BOB, nonce=5)
        )


def test_explicit_matching_nonce_accepted(state, chain):
    execute_transaction(state, chain, Transaction(sender=ALICE, to=BOB, nonce=0))
    execute_transaction(state, chain, Transaction(sender=ALICE, to=BOB, nonce=1))
    assert state.get_nonce(ALICE) == 2


def test_insufficient_balance_rejected(backend, chain):
    poor = to_address(0x99)
    backend.ensure(poor).balance = 10
    state = JournaledState(backend)
    with pytest.raises(InvalidTransaction):
        execute_transaction(
            state, chain, Transaction(sender=poor, to=BOB, value=10**9)
        )


def test_gas_limit_below_intrinsic_rejected(state, chain):
    with pytest.raises(InvalidTransaction):
        execute_transaction(
            state,
            chain,
            Transaction(sender=ALICE, to=BOB, data=b"\x01" * 100, gas_limit=21_000),
        )


def test_failed_tx_keeps_nonce_and_fees(backend, chain):
    backend.ensure(TARGET).code = assemble(["INVALID"])
    state = JournaledState(backend)
    alice_before = state.get_balance(ALICE)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET, gas_limit=100_000)
    )
    assert not result.success
    assert state.get_nonce(ALICE) == 1
    assert state.get_balance(ALICE) == alice_before - 100_000  # all gas burned


def test_sstore_refund_applied(backend, chain):
    # Clearing a non-zero slot refunds 4800, capped at gas_used / 5.
    backend.ensure(TARGET).code = assemble(push(0) + push(1) + ["SSTORE"])
    backend.ensure(TARGET).storage[1] = 99
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET, gas_limit=100_000)
    )
    assert result.success
    no_refund_cost = 21_000 + 5 + 2_100 + 2_900  # base + push + cold + reset
    assert result.gas_used < no_refund_cost
    assert result.gas_used >= no_refund_cost * 4 // 5  # 20% refund cap


def test_contract_creation_transaction(backend, chain):
    from repro.workloads.asm import deployer

    runtime = assemble(["STOP"])
    state = JournaledState(backend)
    result = execute_transaction(
        state,
        chain,
        Transaction(sender=ALICE, to=None, data=deployer(runtime)),
    )
    assert result.success
    assert result.created_address is not None
    assert state.get_code(result.created_address) == runtime
    assert state.get_nonce(result.created_address) == 1


def test_logs_collected(backend, chain):
    program = assemble(
        push(0xAA) + ["PUSH0", "MSTORE"]
        + push(0x1111) + push(32) + ["PUSH0", "LOG1", "STOP"]
    )
    backend.ensure(TARGET).code = program
    state = JournaledState(backend)
    result = execute_transaction(state, chain, Transaction(sender=ALICE, to=TARGET))
    assert len(result.logs) == 1
    log = result.logs[0]
    assert log.address == TARGET
    assert log.topics == [0x1111]
    assert int.from_bytes(log.data, "big") == 0xAA


def test_write_set_reported(backend, chain):
    backend.ensure(TARGET).code = assemble(push(7) + push(3) + ["SSTORE"])
    state = JournaledState(backend)
    result = execute_transaction(state, chain, Transaction(sender=ALICE, to=TARGET))
    assert result.write_set is not None
    assert result.write_set.storage[(TARGET, 3)] == 7


# -- precompiles -------------------------------------------------------------


def test_is_precompile():
    assert is_precompile(to_address(1))
    assert is_precompile(to_address(4))
    assert not is_precompile(to_address(100))


def test_sha256_precompile(backend, chain):
    import hashlib

    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=to_address(2), data=b"abc")
    )
    assert result.success
    assert result.return_data == hashlib.sha256(b"abc").digest()


def test_identity_precompile(backend, chain):
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=to_address(4), data=b"hello")
    )
    assert result.return_data == b"hello"


def test_ecrecover_precompile_valid_signature(backend, chain):
    import hashlib

    from repro.crypto.ecc import PrivateKey

    sk = PrivateKey.from_bytes(b"\x11" * 32)
    digest = hashlib.sha256(b"tx body").digest()
    sig = sk.sign(digest)
    calldata = (
        digest
        + (27).to_bytes(32, "big")
        + sig.r.to_bytes(32, "big")
        + sig.s.to_bytes(32, "big")
        + sk.public_key().to_bytes()
    )
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=to_address(1), data=calldata)
    )
    assert result.success
    assert result.return_data != b""
    assert result.return_data[:12] == b"\x00" * 12


def test_ecrecover_precompile_garbage_returns_empty(backend, chain):
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=to_address(1), data=b"\x00" * 10)
    )
    assert result.success
    assert result.return_data == b""


# -- tracers --------------------------------------------------------------------


def _traced_run(backend, chain, tracer):
    backend.ensure(TARGET).code = assemble(
        push(1) + push(2) + ["ADD"] + push(0) + ["SSTORE", "STOP"]
    )
    state = JournaledState(backend)
    return execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET), tracer=tracer
    )


def test_struct_tracer_records_steps(backend, chain):
    tracer = StructTracer()
    _traced_run(backend, chain, tracer)
    ops = [log.op for log in tracer.logs]
    assert ops == ["PUSH1", "PUSH1", "ADD", "PUSH0", "SSTORE", "STOP"]
    assert tracer.logs[0].pc == 0
    assert tracer.logs[2].stack == [1, 2]
    assert tracer.logs[0].depth == 1


def test_struct_tracer_gas_decreases(backend, chain):
    tracer = StructTracer()
    _traced_run(backend, chain, tracer)
    gas_values = [log.gas for log in tracer.logs]
    assert gas_values == sorted(gas_values, reverse=True)


def test_struct_log_to_dict(backend, chain):
    tracer = StructTracer()
    _traced_run(backend, chain, tracer)
    entry = tracer.logs[2].to_dict()
    assert entry["op"] == "ADD"
    assert entry["stack"] == ["0x1", "0x2"]


def test_counting_tracer_groups(backend, chain):
    tracer = CountingTracer()
    _traced_run(backend, chain, tracer)
    counts = tracer.counts
    assert counts.instructions == 6
    assert counts.by_group["stack"] == 3  # two PUSH1 + PUSH0
    assert counts.by_group["arithmetic"] == 1
    assert counts.storage_writes == 1
    assert counts.frames == 1


def test_multi_tracer_fans_out(backend, chain):
    struct, counting = StructTracer(), CountingTracer()
    _traced_run(backend, chain, MultiTracer(struct, counting))
    assert len(struct.logs) == counting.counts.instructions
