"""perf-bench engine: byte-identity gate and report shape."""

import json

import pytest

from repro.perf.bench import PerfBenchConfig, run_perf_bench


@pytest.mark.perf
def test_perf_bench_smoke_is_identical_and_faster():
    # The CI gate proper runs ``perf-bench --smoke`` with the full 3x
    # threshold; here a conservative 1.5x keeps the unit suite robust on
    # loaded machines while still catching a de-optimized substrate.
    report = run_perf_bench(PerfBenchConfig.smoke(min_speedup=1.5))
    assert report.identical, f"outputs diverged: {report.mismatches}"
    assert report.speedup >= 1.5
    assert report.optimized.memo_hits > 0

    parsed = json.loads(report.to_json())
    assert parsed["passed"] is True
    assert parsed["identical_outputs"] is True
    assert parsed["baseline"]["digests"] == parsed["optimized"]["digests"]
    assert "encryption" in parsed["baseline"]["layer_seconds"]


@pytest.mark.perf
def test_perf_bench_summary_mentions_the_gate():
    report = run_perf_bench(PerfBenchConfig.smoke(min_speedup=1.5))
    text = "\n".join(report.summary_lines())
    assert "speedup" in text
    assert "byte-identical: yes" in text
