"""EVM instruction semantics, exercised through assembled programs."""

import pytest

from repro.evm import execute_transaction
from repro.state import JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, push

from tests.conftest import ALICE

WORD = 2**256
TARGET = to_address(0xEC)


def run_program(backend, chain, program, data=b"", value=0, sender=ALICE):
    """Deploy `program` at TARGET and call it; returns the result."""
    backend.ensure(TARGET).code = assemble(program)
    state = JournaledState(backend)
    result = execute_transaction(
        state,
        chain,
        Transaction(sender=sender, to=TARGET, data=data, value=value),
    )
    return result, state


def returns_top_of_stack(ops):
    """Wrap ops so the top of stack is returned as a 32-byte word."""
    return ops + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]


def eval_expr(backend, chain, ops) -> int:
    result, _ = run_program(backend, chain, returns_top_of_stack(ops))
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


# -- arithmetic -------------------------------------------------------------


@pytest.mark.parametrize(
    "ops,expected",
    [
        (push(3) + push(4) + ["ADD"], 7),
        (push(3) + push(4) + ["MUL"], 12),
        (push(3) + push(10) + ["SUB"], 7),  # stack order: 10 - 3
        (push(3) + push(10) + ["DIV"], 3),
        (push(0) + push(10) + ["DIV"], 0),  # div by zero
        (push(3) + push(10) + ["MOD"], 1),
        (push(0) + push(10) + ["MOD"], 0),
        (push(5) + push(4) + push(3) + ["ADDMOD"], 2),  # (3+4)%5
        (push(5) + push(4) + push(3) + ["MULMOD"], 2),  # (3*4)%5
        (push(0) + push(4) + push(3) + ["ADDMOD"], 0),
        (push(3) + push(2) + ["EXP"], 8),  # 2**3
        (push(0) + push(2) + ["EXP"], 1),
    ],
)
def test_arithmetic(backend, chain, ops, expected):
    assert eval_expr(backend, chain, ops) == expected


def test_add_wraps(backend, chain):
    ops = push(1) + ["PUSH32", WORD - 1, "ADD"]
    assert eval_expr(backend, chain, ops) == 0


def test_sdiv_negative(backend, chain):
    # -10 / 3 == -3 (truncated toward zero)
    minus_ten = WORD - 10
    ops = push(3) + ["PUSH32", minus_ten, "SDIV"]
    assert eval_expr(backend, chain, ops) == WORD - 3


def test_smod_sign_follows_dividend(backend, chain):
    minus_ten = WORD - 10
    ops = push(3) + ["PUSH32", minus_ten, "SMOD"]
    assert eval_expr(backend, chain, ops) == WORD - 1  # -1


def test_signextend(backend, chain):
    # Sign-extend 0xFF from byte 0: all ones.
    # stack [0xff, 0]: SIGNEXTEND pops byte index (0) then value (0xff).
    ops = push(0xFF) + push(0) + ["SIGNEXTEND"]
    assert eval_expr(backend, chain, ops) == WORD - 1


# -- comparison / bitwise ---------------------------------------------------------


@pytest.mark.parametrize(
    "ops,expected",
    [
        (push(5) + push(3) + ["LT"], 1),   # 3 < 5
        (push(3) + push(5) + ["LT"], 0),
        (push(3) + push(5) + ["GT"], 1),   # 5 > 3
        (push(5) + push(5) + ["EQ"], 1),
        (push(0) + ["ISZERO"], 1),
        (push(7) + ["ISZERO"], 0),
        (push(0b1100) + push(0b1010) + ["AND"], 0b1000),
        (push(0b1100) + push(0b1010) + ["OR"], 0b1110),
        (push(0b1100) + push(0b1010) + ["XOR"], 0b0110),
        (push(0) + ["NOT"], WORD - 1),
        (push(2) + push(1) + ["SHL"], 4),  # 2 << 1
        (push(4) + push(1) + ["SHR"], 2),  # 4 >> 1
        (push(1) + push(256) + ["SHL"], 0),  # overshift
    ],
)
def test_comparison_bitwise(backend, chain, ops, expected):
    assert eval_expr(backend, chain, ops) == expected


def test_slt_sgt(backend, chain):
    minus_one = WORD - 1
    assert eval_expr(backend, chain, push(1) + ["PUSH32", minus_one, "SLT"]) == 1
    assert eval_expr(backend, chain, ["PUSH32", minus_one] + push(1) + ["SGT"]) == 1


def test_byte_instruction(backend, chain):
    value = 0xAABBCC
    # Stack [value, 31]: BYTE pops the index first; byte 31 is the LSB.
    assert eval_expr(backend, chain, ["PUSH32", value] + push(31) + ["BYTE"]) == 0xCC
    assert eval_expr(backend, chain, ["PUSH32", value] + push(40) + ["BYTE"]) == 0


def test_sar_arithmetic_shift(backend, chain):
    minus_four = WORD - 4
    # Stack [value, shift]: SAR pops the shift first; -4 >> 1 == -2.
    assert eval_expr(backend, chain, ["PUSH32", minus_four] + push(1) + ["SAR"]) == WORD - 2
    # Overshift of a negative value saturates to -1.
    assert eval_expr(backend, chain, ["PUSH32", minus_four] + push(300) + ["SAR"]) == WORD - 1


def test_sha3_matches_reference(backend, chain):
    from repro.crypto.keccak import keccak256

    ops = (
        push(0xDEADBEEF) + ["PUSH0", "MSTORE"]
        + push(32) + ["PUSH0", "SHA3"]
    )
    expected = int.from_bytes(
        keccak256((0xDEADBEEF).to_bytes(32, "big")), "big"
    )
    assert eval_expr(backend, chain, ops) == expected


# -- environment -------------------------------------------------------------------


def test_environment_opcodes(backend, chain, header):
    assert eval_expr(backend, chain, ["ADDRESS"]) == int.from_bytes(TARGET, "big")
    assert eval_expr(backend, chain, ["CALLER"]) == int.from_bytes(ALICE, "big")
    assert eval_expr(backend, chain, ["ORIGIN"]) == int.from_bytes(ALICE, "big")
    assert eval_expr(backend, chain, ["NUMBER"]) == header.number
    assert eval_expr(backend, chain, ["TIMESTAMP"]) == header.timestamp
    assert eval_expr(backend, chain, ["CHAINID"]) == header.chain_id
    assert eval_expr(backend, chain, ["COINBASE"]) == int.from_bytes(
        header.coinbase, "big"
    )
    assert eval_expr(backend, chain, ["GASPRICE"]) == 1
    assert eval_expr(backend, chain, ["BASEFEE"]) == header.base_fee


def test_callvalue_and_selfbalance(backend, chain):
    program = returns_top_of_stack(["CALLVALUE"])
    result, _ = run_program(backend, chain, program, value=777)
    assert int.from_bytes(result.return_data, "big") == 777
    # After the transfer, SELFBALANCE sees the incoming value.
    program = returns_top_of_stack(["SELFBALANCE"])
    result, _ = run_program(backend, chain, program, value=123)
    assert int.from_bytes(result.return_data, "big") == 123


def test_calldata_opcodes(backend, chain):
    data = bytes(range(64))
    program = returns_top_of_stack(push(2) + ["CALLDATALOAD"])
    result, _ = run_program(backend, chain, program, data=data)
    assert result.return_data == data[2:34]
    program = returns_top_of_stack(["CALLDATASIZE"])
    result, _ = run_program(backend, chain, program, data=data)
    assert int.from_bytes(result.return_data, "big") == 64


def test_calldatacopy_pads_with_zeros(backend, chain):
    program = (
        push(40) + push(60) + push(0) + ["CALLDATACOPY"]
        + push(32) + push(0) + ["RETURN"]
    )
    # copy 40 bytes from offset 60 of 64-byte calldata: 4 real + 36 zeros
    result, _ = run_program(backend, chain, program, data=bytes(range(64)))
    assert result.return_data[:4] == bytes([60, 61, 62, 63])
    assert result.return_data[4:] == b"\x00" * 28


def test_codesize_codecopy(backend, chain):
    program = returns_top_of_stack(["CODESIZE"])
    result, _ = run_program(backend, chain, program)
    code_length = len(assemble(program))
    assert int.from_bytes(result.return_data, "big") == code_length


def test_balance_and_extcodesize(backend, chain):
    other = to_address(0x777)
    backend.ensure(other).balance = 424242
    backend.ensure(other).code = b"\x00" * 7
    ops = ["PUSH20", int.from_bytes(other, "big"), "BALANCE"]
    assert eval_expr(backend, chain, ops) == 424242
    ops = ["PUSH20", int.from_bytes(other, "big"), "EXTCODESIZE"]
    assert eval_expr(backend, chain, ops) == 7


def test_extcodehash_variants(backend, chain):
    from repro.crypto.keccak import keccak256

    contract = to_address(0x700)
    backend.ensure(contract).code = b"\x60\x01"
    ops = ["PUSH20", int.from_bytes(contract, "big"), "EXTCODEHASH"]
    assert eval_expr(backend, chain, ops) == int.from_bytes(
        keccak256(b"\x60\x01"), "big"
    )
    # Non-existent account hashes to 0.
    ops = ["PUSH20", int.from_bytes(to_address(0xDEAD0), "big"), "EXTCODEHASH"]
    assert eval_expr(backend, chain, ops) == 0


# -- memory & storage ----------------------------------------------------------------


def test_mstore_mload_roundtrip(backend, chain):
    ops = (
        push(0xCAFE) + push(64) + ["MSTORE"]
        + push(64) + ["MLOAD"]
    )
    assert eval_expr(backend, chain, ops) == 0xCAFE


def test_mstore8(backend, chain):
    ops = (
        push(0xABCD) + push(0) + ["MSTORE8"]  # stores low byte only
        + ["PUSH0", "MLOAD"]
    )
    assert eval_expr(backend, chain, ops) == 0xCD << 248


def test_msize_tracks_expansion(backend, chain):
    ops = push(0) + push(100) + ["MSTORE", "MSIZE"]
    assert eval_expr(backend, chain, ops) == 160  # ceil(132/32)*32


def test_sstore_sload(backend, chain):
    program = returns_top_of_stack(
        push(0x42) + push(5) + ["SSTORE"] + push(5) + ["SLOAD"]
    )
    result, state = run_program(backend, chain, program)
    assert int.from_bytes(result.return_data, "big") == 0x42
    assert state.get_storage(TARGET, 5) == 0x42


def test_transient_isolation_between_txs(backend, chain):
    # Two separate transactions to the same contract share the backend
    # only through committed state, not memory.
    program = returns_top_of_stack(["PUSH0", "MLOAD"])
    result, _ = run_program(backend, chain, program)
    assert int.from_bytes(result.return_data, "big") == 0


# -- control flow ------------------------------------------------------------------------


def test_jump_and_jumpi(backend, chain):
    from repro.workloads.asm import label, push_label

    program = (
        push(1)
        + [push_label("skip"), "JUMPI", "INVALID"]
        + [label("skip"), "JUMPDEST"]
        + returns_top_of_stack(push(99))
    )
    result, _ = run_program(backend, chain, program)
    assert result.success
    assert int.from_bytes(result.return_data, "big") == 99


def test_invalid_jump_destination_fails(backend, chain):
    program = push(1) + ["JUMP"]
    result, _ = run_program(backend, chain, program)
    assert not result.success
    assert "InvalidJump" in result.error


def test_jumpi_not_taken_falls_through(backend, chain):
    from repro.workloads.asm import label, push_label

    program = (
        push(0)
        + [push_label("skip"), "JUMPI"]
        + returns_top_of_stack(push(7))
        + [label("skip"), "JUMPDEST", "INVALID"]
    )
    result, _ = run_program(backend, chain, program)
    assert int.from_bytes(result.return_data, "big") == 7


def test_pc_instruction(backend, chain):
    program = returns_top_of_stack(["PC"])
    result, _ = run_program(backend, chain, program)
    assert int.from_bytes(result.return_data, "big") == 0


def test_implicit_stop_past_code_end(backend, chain):
    result, _ = run_program(backend, chain, push(1))
    assert result.success
    assert result.return_data == b""


def test_invalid_opcode_consumes_all_gas(backend, chain):
    result, _ = run_program(backend, chain, ["INVALID"])
    assert not result.success
    tx_limit = 30_000_000
    assert result.gas_used == tx_limit


def test_revert_returns_gas_and_data(backend, chain):
    program = (
        push(0xBAD) + push(0) + ["MSTORE"]
        + push(32) + push(0) + ["REVERT"]
    )
    result, _ = run_program(backend, chain, program)
    assert not result.success
    assert int.from_bytes(result.return_data, "big") == 0xBAD
    assert result.gas_used < 50_000  # unconsumed gas was refunded


def test_stack_underflow_fails_frame(backend, chain):
    result, _ = run_program(backend, chain, ["POP"])
    assert not result.success
    assert "StackUnderflow" in result.error


def test_out_of_gas(backend, chain):
    backend.ensure(TARGET).code = assemble(
        push(1_000_000) + ["PUSH0", "MSTORE"]  # fine
    )
    state = JournaledState(backend)
    result = execute_transaction(
        state,
        chain,
        Transaction(sender=ALICE, to=TARGET, gas_limit=21_010),
    )
    assert not result.success
    assert "OutOfGas" in result.error
    assert result.gas_used == 21_010
