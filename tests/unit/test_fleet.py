"""Fleet discrete-event simulator (§VI-D model)."""

import pytest

from repro.hardware.fleet import (
    FleetSimulator,
    TxProfile,
    profiles_from_breakdowns,
    saturation_point,
)
from repro.hardware.timing import CostModel, TimeBreakdown

# A full-load HEVM profile: ~40 queries over ~80 ms of ORAM-bound work.
FULL_LOAD = TxProfile(exec_us=2_000.0, oram_queries=40, fixed_us=0.0)


def test_single_hevm_completes_all_transactions():
    sim = FleetSimulator([FULL_LOAD])
    result = sim.run(hevm_count=1, transactions_per_hevm=10)
    assert result.transactions_completed == 10
    assert result.queries_served == 10 * 40
    assert result.duration_us > 0


def test_per_tx_time_matches_analytic_model():
    cost = CostModel()
    sim = FleetSimulator([FULL_LOAD], cost)
    result = sim.run(hevm_count=1, transactions_per_hevm=5)
    per_tx = result.duration_us / 5
    # One uncontended query ≈ RTT + service; plus exec time.
    expected = 40 * (cost.ethernet_rtt_us + cost.oram_server_cpu_us) + 2_000
    assert per_tx == pytest.approx(expected, rel=0.05)


def test_throughput_scales_then_saturates():
    sim = FleetSimulator([FULL_LOAD])
    results = sim.sweep([1, 2, 4, 8], transactions_per_hevm=20)
    tps = [r.throughput_tps for r in results]
    # Early scaling is near-linear (server far from saturated).
    assert tps[1] == pytest.approx(2 * tps[0], rel=0.1)
    assert tps[2] == pytest.approx(4 * tps[0], rel=0.1)


def test_server_utilization_grows_with_fleet():
    sim = FleetSimulator([FULL_LOAD])
    results = sim.sweep([1, 10, 40], transactions_per_hevm=10)
    utils = [r.server_utilization for r in results]
    assert utils[0] < utils[1] < utils[2]


def test_saturation_point_matches_service_ratio():
    # Make the analytic bound small so the sweep can cross it: with a
    # gap of ~service*4 per query, ~5 HEVMs saturate the server.
    cost = CostModel()
    cost.ethernet_rtt_us = 0.0
    profile = TxProfile(exec_us=100.0 * 41, oram_queries=40)
    sim = FleetSimulator([profile], cost)
    results = sim.sweep([1, 2, 4, 6, 8, 12], transactions_per_hevm=30)
    knee = saturation_point(results, threshold=0.9)
    # gap 100 µs / service 25 µs → ~(100+25)/25 = 5 HEVMs.
    assert 4 <= knee <= 8
    # Past the knee, throughput stops scaling linearly.
    t4 = next(r for r in results if r.hevm_count == 4).throughput_tps
    t12 = next(r for r in results if r.hevm_count == 12).throughput_tps
    assert t12 < 3 * t4 * 1.05


def test_queue_wait_appears_only_under_contention():
    sim = FleetSimulator([FULL_LOAD])
    alone = sim.run(1, transactions_per_hevm=10)
    crowded = sim.run(30, transactions_per_hevm=10)
    assert alone.mean_queue_wait_us == pytest.approx(0.0, abs=1e-9)
    assert crowded.mean_queue_wait_us > 0.0


def test_zero_query_profile():
    sim = FleetSimulator([TxProfile(exec_us=500.0, oram_queries=0, fixed_us=100.0)])
    result = sim.run(2, transactions_per_hevm=5)
    assert result.transactions_completed == 10
    assert result.queries_served == 0
    assert result.duration_us == pytest.approx(5 * 600.0)


def test_profiles_from_breakdowns():
    cost = CostModel()
    access_us = cost.oram_access_us(12, 4, 1.0)
    breakdown = TimeBreakdown(
        execution_us=100.0,
        signature_us=80_000.0,
        oram_storage_us=5 * access_us,
        oram_code_us=10 * access_us,
    )
    profiles = profiles_from_breakdowns([breakdown])
    assert len(profiles) == 1
    assert profiles[0].oram_queries == 15
    assert profiles[0].fixed_us == 80_000.0


def test_empty_profiles_rejected():
    with pytest.raises(ValueError):
        FleetSimulator([])


def test_mixed_profiles_round_robin():
    light = TxProfile(exec_us=10.0, oram_queries=1)
    heavy = TxProfile(exec_us=10.0, oram_queries=9)
    sim = FleetSimulator([light, heavy])
    result = sim.run(1, transactions_per_hevm=10)
    assert result.queries_served == 5 * 1 + 5 * 9
