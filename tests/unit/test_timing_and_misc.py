"""Cost model details, AEAD suite parity, sampler edges, codec errors."""

import pytest

from repro.crypto.gcm import AuthenticationError
from repro.crypto.kdf import Drbg
from repro.crypto.suite import AesGcmAead, Blake2Aead
from repro.hardware.timing import CostModel
from repro.workloads.distributions import BandSampler


# -- AEAD suite interchangeability ---------------------------------------------


@pytest.mark.parametrize("factory", [AesGcmAead, Blake2Aead])
def test_aead_suites_share_interface(factory):
    cipher = factory(b"k" * 32 if factory is Blake2Aead else b"k" * 16)
    nonce = (1).to_bytes(12, "big")
    sealed = cipher.encrypt(nonce, b"payload", b"aad")
    assert cipher.decrypt(nonce, sealed, b"aad") == b"payload"
    with pytest.raises(AuthenticationError):
        cipher.decrypt(nonce, sealed, b"other-aad")


def test_blake2_rejects_bad_nonce_size():
    cipher = Blake2Aead(b"k" * 32)
    with pytest.raises(ValueError):
        cipher.encrypt(b"short", b"x")
    with pytest.raises(ValueError):
        cipher.decrypt(b"short", b"x" * 32)


def test_blake2_short_message_rejected():
    cipher = Blake2Aead(b"k" * 32)
    with pytest.raises(AuthenticationError):
        cipher.decrypt((1).to_bytes(12, "big"), b"tiny")


def test_aead_keys_are_domain_separated():
    a = Blake2Aead(b"k" * 32)
    nonce = (1).to_bytes(12, "big")
    sealed = a.encrypt(nonce, b"payload")
    # A cipher derived from a different key cannot open it.
    with pytest.raises(AuthenticationError):
        Blake2Aead(b"j" * 32).decrypt(nonce, sealed)


# -- cost model ------------------------------------------------------------------


def test_channel_seal_includes_setup_and_aes():
    cost = CostModel()
    small = cost.channel_seal_us(100)
    large = cost.channel_seal_us(100_000)
    assert small >= cost.channel_seal_setup_us
    assert large > small


def test_per_bundle_e_overhead_lands_near_paper():
    """Two channel messages ≈ the paper's +2.9 ms -E overhead."""
    cost = CostModel()
    typical_bundle_bytes = 500
    overhead = 2 * cost.channel_seal_us(typical_bundle_bytes)
    assert 2_000 < overhead < 4_000


def test_es_overhead_lands_near_paper():
    cost = CostModel()
    overhead = 2 * cost.ecdsa_sign_us
    assert 60_000 < overhead < 100_000  # the paper's ~80 ms


def test_page_swap_cost_scales_with_pages():
    cost = CostModel()
    assert cost.page_swap_us(10) > cost.page_swap_us(1)


def test_oram_access_scales_with_height():
    cost = CostModel()
    shallow = cost.oram_access_us(8, 4, 1.0)
    deep = cost.oram_access_us(30, 4, 1.0)
    assert deep > shallow


# -- band sampler edges --------------------------------------------------------------


def test_band_sampler_single_band():
    sampler = BandSampler([((5, 6), 1.0)], Drbg(b"x"))
    assert all(sampler.sample() == 5 for _ in range(20))


def test_band_sampler_zero_weight_tail_still_total():
    sampler = BandSampler([((0, 2), 1.0), ((2, 4), 0.0)], Drbg(b"x"))
    values = {sampler.sample() for _ in range(50)}
    assert values <= {0, 1, 2, 3}
    assert values & {0, 1}


# -- bundle codec error paths ----------------------------------------------------------


def test_decode_bundle_rejects_garbage():
    from repro import rlp
    from repro.hypervisor.bundle_codec import decode_bundle

    with pytest.raises(rlp.DecodingError):
        decode_bundle(b"\xff\xff\xff")


def test_decode_trace_report_rejects_garbage():
    from repro import rlp
    from repro.hypervisor.bundle_codec import decode_trace_report

    with pytest.raises((rlp.DecodingError, ValueError)):
        decode_trace_report(b"\x01\x02\x03")


# -- device release measurement -----------------------------------------------------------


def test_release_measurement_is_stable():
    from repro.core.device import RELEASE_IMAGE, RELEASE_MEASUREMENT

    assert RELEASE_IMAGE.measurement() == RELEASE_MEASUREMENT
    assert len(RELEASE_MEASUREMENT) == 32
