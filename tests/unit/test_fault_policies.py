"""Recovery policies in isolation: retry, breaker, failover payloads."""

import pytest

from repro.faults import (
    CircuitBreaker,
    CircuitOpenError,
    DmaDropError,
    FailoverBundle,
    RecoveryOutcome,
    RetryPolicy,
    SyncError,
)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_us=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


def test_backoff_grows_exponentially():
    policy = RetryPolicy(max_attempts=4, backoff_us=100.0, multiplier=2.0)
    assert [policy.backoff_for(n) for n in (1, 2, 3)] == [100.0, 200.0, 400.0]


def test_recoverable_classification():
    policy = RetryPolicy()
    assert policy.is_recoverable(DmaDropError("lost in transit"))
    # Deliberate-tamper signals and plain bugs are not retried.
    assert not policy.is_recoverable(SyncError("forged proof chain"))
    assert not policy.is_recoverable(RuntimeError("a bug, not a fault"))


def test_breaker_opens_after_threshold_then_half_opens():
    breaker = CircuitBreaker("device0", failure_threshold=3, reset_after_us=1_000.0)
    for _ in range(2):
        breaker.record_failure(0.0)
    assert not breaker.is_open
    breaker.allow(0.0)
    breaker.record_failure(0.0)
    assert breaker.is_open
    with pytest.raises(CircuitOpenError) as excinfo:
        breaker.allow(500.0)
    assert excinfo.value.target == "device0"
    # Cool-down elapsed: the trial call goes through (half-open)...
    breaker.allow(1_000.0)
    # ...failing the trial re-opens with a DOUBLED window (2 000 µs)...
    breaker.record_failure(1_000.0)
    assert breaker.current_reset_us == 2_000.0
    with pytest.raises(CircuitOpenError):
        breaker.allow(1_500.0)
    with pytest.raises(CircuitOpenError):
        breaker.allow(2_999.0)  # still inside the doubled window
    # ...the next trial at the doubled boundary goes through, and a
    # success closes it fully, resetting the window to its base.
    breaker.allow(3_000.0)
    breaker.record_success()
    assert not breaker.is_open
    assert breaker.current_reset_us == 1_000.0
    breaker.allow(0.0)


def test_breaker_trial_failures_double_until_capped():
    breaker = CircuitBreaker(
        "device0",
        failure_threshold=1,
        reset_after_us=1_000.0,
        max_reset_us=4_000.0,
    )
    breaker.record_failure(0.0)  # opens with the base 1 000 µs window
    now = 1_000.0
    for expected in (2_000.0, 4_000.0, 4_000.0, 4_000.0):
        breaker.allow(now)           # half-open trial at the boundary
        breaker.record_failure(now)  # trial fails → doubled, capped
        assert breaker.current_reset_us == expected
        with pytest.raises(CircuitOpenError):
            breaker.allow(now + expected - 1.0)
        now += expected
    # Recovery at last: base window restored for any future opens.
    breaker.allow(now)
    breaker.record_success()
    assert breaker.current_reset_us == 1_000.0


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker("x", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("x", reset_after_us=1_000.0, max_reset_us=500.0)


def test_recovery_outcome_recovered_property():
    outcome = RecoveryOutcome()
    assert not outcome.recovered
    outcome.recovered_errors.append("DmaDropError")
    assert outcome.recovered


class _FakeSession:
    def __init__(self, session_id: bytes) -> None:
        self.session_id = session_id


def test_failover_bundle_validation_and_indexing():
    with pytest.raises(ValueError):
        FailoverBundle({}, b"bundle")
    bundle = FailoverBundle(
        {2: _FakeSession(b"b"), 0: _FakeSession(b"a")}, b"bundle"
    )
    assert bundle.device_indices == (0, 2)
    assert bundle.session_for(2) == b"b"
    assert bundle.session_for(0) == b"a"
