"""Remaining EVM edge cases: block queries, copies, modular arithmetic."""


from repro.evm import ChainContext, execute_transaction
from repro.state import DictBackend, JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, push

from tests.conftest import ALICE

WORD = 2**256
TARGET = to_address(0xED6E)


def _eval(backend, chain, ops) -> int:
    backend.ensure(TARGET).code = assemble(
        ops + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET)
    )
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


def test_blockhash_future_block_is_zero(backend, chain):
    future = chain.header.number + 5
    assert _eval(backend, chain, push(future) + ["BLOCKHASH"]) == 0


def test_blockhash_too_old_is_zero(backend, header):
    from repro.state import BlockHeader

    high_header = BlockHeader(
        number=1000, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
        timestamp=0, coinbase=to_address(0xC0),
    )
    high_chain = ChainContext(high_header)
    backend = DictBackend()
    backend.ensure(ALICE).balance = 10**18
    # More than 256 blocks back: zero.
    assert _eval(backend, high_chain, push(1) + ["BLOCKHASH"]) == 0
    # Within the window: non-zero.
    assert _eval(backend, high_chain, push(900) + ["BLOCKHASH"]) != 0


def test_blockhash_prefers_known_hashes(backend, header):
    known = {99: b"\xab" * 32}
    chain = ChainContext(header, known)
    assert _eval(backend, chain, push(99) + ["BLOCKHASH"]) == int.from_bytes(
        b"\xab" * 32, "big"
    )


def test_prevrandao_exposed(backend, header):
    from dataclasses import replace

    chain = ChainContext(replace(header, prev_randao=0xDEAD))
    assert _eval(backend, chain, ["PREVRANDAO"]) == 0xDEAD


def test_mulmod_full_width_operands(backend, chain):
    a = WORD - 1
    b = WORD - 2
    n = 2**255 + 11
    ops = ["PUSH32", n, "PUSH32", b, "PUSH32", a, "MULMOD"]
    assert _eval(backend, chain, ops) == (a * b) % n


def test_addmod_does_not_wrap_intermediate(backend, chain):
    a = WORD - 1
    n = 10
    # (a + a) % 10 computed over the true sum, not mod 2^256.
    ops = ["PUSH32", n, "PUSH32", a, "PUSH32", a, "ADDMOD"]
    assert _eval(backend, chain, ops) == (a + a) % n


def test_extcodecopy_of_empty_account_zero_fills(backend, chain):
    ghost = to_address(0x6057)
    program = (
        push(32) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(ghost, "big"), "EXTCODECOPY"]
        + ["PUSH0", "MLOAD"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    backend.ensure(TARGET).code = assemble(program)
    state = JournaledState(backend)
    result = execute_transaction(state, chain, Transaction(sender=ALICE, to=TARGET))
    assert result.success
    assert result.return_data == b"\x00" * 32


def test_calldataload_far_offset_is_zero(backend, chain):
    backend.ensure(TARGET).code = assemble(
        ["PUSH32", 2**200, "CALLDATALOAD"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET, data=b"\x01" * 64)
    )
    assert int.from_bytes(result.return_data, "big") == 0


def test_dup16_swap16_boundaries(backend, chain):
    ops = []
    for value in range(1, 18):
        ops += push(value)
    # Stack (top..): 17..1.  DUP16 copies the value 16 deep (= 2).
    assert _eval(backend, chain, ops + ["DUP16"]) == 2
    # SWAP16 exchanges top (17) with the 17th item (= 1).
    ops_swap = []
    for value in range(1, 18):
        ops_swap += push(value)
    assert _eval(backend, chain, ops_swap + ["SWAP16"]) == 1


def test_log4_topic_order(backend, chain):
    program = assemble(
        push(4) + push(3) + push(2) + push(1)  # topics pushed reversed
        + push(0) + push(0) + ["LOG4", "STOP"]
    )
    backend.ensure(TARGET).code = program
    state = JournaledState(backend)
    result = execute_transaction(state, chain, Transaction(sender=ALICE, to=TARGET))
    assert result.success, result.error
    assert result.logs[0].topics == [1, 2, 3, 4]
    assert result.logs[0].data == b""


def test_callcode_transfers_to_self(backend, chain):
    """CALLCODE with value moves balance from the caller to itself."""
    library = to_address(0x11B)
    backend.ensure(library).code = assemble(["STOP"])
    backend.ensure(TARGET).balance = 1000
    program = (
        push(0) + push(0) + push(0) + push(0)
        + push(77)  # value
        + ["PUSH20", int.from_bytes(library, "big"), "GAS", "CALLCODE"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    backend.ensure(TARGET).code = assemble(program)
    state = JournaledState(backend)
    result = execute_transaction(state, chain, Transaction(sender=ALICE, to=TARGET))
    assert int.from_bytes(result.return_data, "big") == 1  # call succeeded
    assert state.get_balance(TARGET) == 1000  # self-transfer nets to zero
    assert state.get_balance(library) == 0  # CALLCODE never pays the callee


def test_gas_opcode_decreases_monotonically(backend, chain):
    from repro.evm import StructTracer

    backend.ensure(TARGET).code = assemble(
        ["GAS", "POP"] * 5 + ["STOP"]
    )
    tracer = StructTracer()
    state = JournaledState(backend)
    execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET), tracer=tracer
    )
    observed = [
        log.stack[-1] for log in tracer.logs
        if log.op == "POP" and log.stack
    ]
    assert observed == sorted(observed, reverse=True)
    assert len(set(observed)) == len(observed)
