"""Evaluation-set generator and the security analysis toolbox."""

import pytest

from repro.crypto.kdf import Drbg
from repro.security.analysis import (
    QueryTypeClassifier,
    frequency_attack,
    mutual_information,
    path_uniformity_pvalue,
    repeated_access_correlation,
    size_leakage,
)
from repro.workloads.distributions import (
    BandSampler,
    CALL_DEPTH_BANDS,
    CODE_SIZE_BANDS,
    STORAGE_KEY_BANDS,
    summarize_bands,
)


# -- distributions ------------------------------------------------------------


def test_band_sampler_respects_bounds():
    sampler = BandSampler(CODE_SIZE_BANDS, Drbg(b"s"))
    for _ in range(200):
        value = sampler.sample()
        assert 0 <= value < 65_536


def test_band_sampler_matches_weights():
    sampler = BandSampler(CALL_DEPTH_BANDS, Drbg(b"s"))
    samples = [sampler.sample() for _ in range(3000)]
    summary = summarize_bands(samples, CALL_DEPTH_BANDS)
    assert abs(summary["1-2"] - 0.408) < 0.05
    assert abs(summary["2-6"] - 0.526) < 0.05


def test_storage_bands_heavy_head():
    sampler = BandSampler(STORAGE_KEY_BANDS, Drbg(b"s"))
    samples = [sampler.sample() for _ in range(2000)]
    small = sum(1 for s in samples if s <= 4) / len(samples)
    assert 0.74 < small < 0.86  # paper: 79.9%


def test_summarize_bands_fractions_sum():
    sampler = BandSampler(CODE_SIZE_BANDS, Drbg(b"s"))
    samples = [sampler.sample() for _ in range(500)]
    summary = summarize_bands(samples, CODE_SIZE_BANDS)
    assert abs(sum(summary.values()) - 1.0) < 1e-9


# -- evaluation set (session fixture) --------------------------------------------


def test_evalset_deterministic(tiny_evalset):
    from repro.workloads import EvaluationSetConfig, build_evaluation_set

    again = build_evaluation_set(
        EvaluationSetConfig(blocks=3, txs_per_block=6, profile_contract_count=10)
    )
    assert [t.tx_hash() for t in again.transactions] == [
        t.tx_hash() for t in tiny_evalset.transactions
    ]


def test_evalset_chain_grew(tiny_evalset):
    # 1 approval block + 3 workload blocks.
    assert tiny_evalset.node.height == 4
    assert len(tiny_evalset.transactions) == 18


def test_evalset_transactions_succeed(tiny_evalset):
    # Every generated transaction executed successfully on-chain.
    for block_number in range(2, tiny_evalset.node.height + 1):
        for result in tiny_evalset.node.block_at(block_number).results:
            assert result.success, result.error


def test_evalset_population_deployed(tiny_evalset):
    population = tiny_evalset.population
    state = tiny_evalset.node.state_at(0)
    assert len(population.profiles) == 10
    for address in population.profiles:
        assert state.accounts[address].code
    assert state.accounts[population.pool].storage[0] > 0


def test_evalset_code_sizes_span_bands(tiny_evalset):
    sizes = list(tiny_evalset.population.profile_sizes.values())
    assert min(sizes) < 4096
    assert max(sizes) > 4096


# -- security analysis ------------------------------------------------------------


def test_frequency_attack_on_deterministic_handles():
    # Handles observed with distinct frequencies are fully linkable.
    handles = [b"h1"] * 50 + [b"h2"] * 30 + [b"h3"] * 10
    ranking = [b"h1", b"h2", b"h3"]
    assert frequency_attack(handles, ranking) == 1.0


def test_frequency_attack_fails_on_uniform_handles():
    # Unique handle per access (the ORAM property): no linkage.
    handles = [b"u%d" % i for i in range(90)]
    ranking = [b"h1", b"h2", b"h3"]
    assert frequency_attack(handles, ranking) == 0.0


def test_path_uniformity_accepts_uniform():
    rng = Drbg(b"u")
    leaves = [rng.randint(1024) for _ in range(2000)]
    assert path_uniformity_pvalue(leaves, 1024) > 0.01


def test_path_uniformity_rejects_biased():
    leaves = [7] * 1000 + [900] * 1000
    assert path_uniformity_pvalue(leaves, 1024) < 1e-6


def test_path_uniformity_needs_samples():
    with pytest.raises(ValueError):
        path_uniformity_pvalue([1, 2, 3], 1024)


def test_repeated_access_correlation():
    # Broken store: leaf never changes.
    broken = [(5, 5)] * 100
    assert repeated_access_correlation(broken, 64) > 10
    # Oblivious store: independent uniform leaves.
    rng = Drbg(b"c")
    good = [(rng.randint(64), rng.randint(64)) for _ in range(300)]
    assert repeated_access_correlation(good, 64) < 3.0


def test_query_type_classifier_separable():
    gaps = [10.0] * 50 + [1000.0] * 50
    labels = [True] * 50 + [False] * 50
    classifier = QueryTypeClassifier().fit(gaps, labels)
    assert classifier.accuracy(gaps, labels) == 1.0


def test_query_type_classifier_at_chance_when_mixed():
    rng = Drbg(b"m")
    gaps = [float(rng.randint(1000)) for _ in range(400)]
    labels = [bool(rng.randint(2)) for _ in range(400)]
    classifier = QueryTypeClassifier().fit(gaps[:200], labels[:200])
    assert classifier.accuracy(gaps[200:], labels[200:]) < 0.65


def test_mutual_information_bounds():
    xs = [0, 1] * 100
    assert mutual_information(xs, xs) == pytest.approx(1.0)
    ys = [0] * 200
    assert mutual_information(xs, ys) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        mutual_information([], [])


def test_size_leakage_extremes():
    true_sizes = [1, 2, 3, 4] * 50
    assert size_leakage(true_sizes, true_sizes) == pytest.approx(1.0)
    noise = [7] * 200
    assert size_leakage(true_sizes, noise) == pytest.approx(0.0)
