"""Serving layer: metrics, admission policies, gateway, load drivers."""

import pytest

from repro.hardware.fleet import OramServerLedger, full_load_profile
from repro.hardware.timing import CostModel
from repro.crypto.kdf import Drbg
from repro.serving import (
    CompositeAdmission,
    Counter,
    FleetModelExecutor,
    Gauge,
    Gateway,
    GatewayConfig,
    GlobalConcurrencyPolicy,
    Histogram,
    LoadSession,
    MetricsRegistry,
    QueueDepthShedPolicy,
    RejectReason,
    RequestStatus,
    TokenBucketPolicy,
    arrival_times,
    model_sessions,
    run_closed_loop,
    run_open_loop,
    synthetic_profiles,
)

pytestmark = pytest.mark.serving


class StubExecutor:
    """Fixed-duration executor: ``slots`` capacity, 100 µs per request."""

    def __init__(self, slot_count=2, service_us=100.0, devices=None):
        self.slots = devices if devices is not None else [None] * slot_count
        self.service_us = service_us
        self.executed = []

    def execute(self, request, start_us):
        self.executed.append((request.request_id, start_us))
        return self.service_us, ("ran", request.request_id)


# -- metrics --------------------------------------------------------------------------


def test_counter_and_gauge():
    counter = Counter()
    counter.inc()
    counter.inc(2.0)
    assert counter.value == 3.0
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = Gauge()
    gauge.set(5)
    gauge.set(2)
    assert gauge.value == 2 and gauge.peak == 5


def test_histogram_nearest_rank_percentiles():
    hist = Histogram()
    for value in range(100, 0, -1):  # reversed: exercises the lazy sort
        hist.observe(float(value))
    assert hist.percentile(50) == 50.0
    assert hist.percentile(95) == 95.0
    assert hist.percentile(99) == 99.0
    assert hist.percentile(100) == 100.0
    assert hist.percentile(0) == 1.0
    assert hist.mean == 50.5
    assert hist.max == 100.0
    empty = Histogram()
    assert empty.percentile(99) == 0.0 and empty.mean == 0.0
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_registry_snapshot_is_flat_sorted_and_stable():
    registry = MetricsRegistry()
    registry.counter("b.count").inc()
    registry.gauge("a.depth").set(3)
    registry.histogram("c.wait").observe(10.0)
    snap = registry.snapshot()
    # Deterministic order: sorted within each kind (counters, gauges,
    # histograms), so two identical runs produce identical key sequences.
    assert list(snap)[:1] == ["b.count"]
    assert snap["b.count"] == 1.0
    assert snap["a.depth.peak"] == 3.0
    assert snap["c.wait.p99"] == 10.0
    assert registry.snapshot() == snap
    assert "c.wait" in registry.render()


# -- admission policies ---------------------------------------------------------------


def _gateway(executor=None, **config):
    executor = executor or StubExecutor()
    return Gateway(executor, GatewayConfig(**config))


def test_token_bucket_refills_in_virtual_time():
    policy = TokenBucketPolicy(rate_per_s=1000.0, burst=2)
    gateway = Gateway(
        StubExecutor(slot_count=8),
        GatewayConfig(max_in_flight_per_session=8),
        admission=policy,
    )
    a = gateway.submit(b"s", None, at_us=0.0)
    b = gateway.submit(b"s", None, at_us=0.0)
    c = gateway.submit(b"s", None, at_us=0.0)   # burst exhausted
    assert a.status != RequestStatus.REJECTED
    assert b.status != RequestStatus.REJECTED
    assert c.status == RequestStatus.REJECTED
    assert c.reject_reason == RejectReason.RATE_LIMITED
    # 1000 tokens/s == 1 token per 1000 µs of virtual time.
    d = gateway.submit(b"s", None, at_us=1000.0)
    assert d.status != RequestStatus.REJECTED
    # A different session has its own bucket.
    e = gateway.submit(b"t", None, at_us=1000.0)
    assert e.status != RequestStatus.REJECTED


def test_global_concurrency_and_shed_policies():
    gateway = Gateway(
        StubExecutor(slot_count=1),
        GatewayConfig(max_in_flight_per_session=16, max_queue_depth=16),
        admission=CompositeAdmission([
            GlobalConcurrencyPolicy(max_outstanding=2),
            QueueDepthShedPolicy(shed_depth=8),
        ]),
    )
    first = gateway.submit(b"s", None)    # runs (1 slot)
    second = gateway.submit(b"s", None)   # queues
    third = gateway.submit(b"s", None)    # outstanding == 2 -> reject
    assert first.status == RequestStatus.RUNNING
    assert second.status == RequestStatus.QUEUED
    assert third.reject_reason == RejectReason.CONCURRENCY_LIMIT

    shed_only = Gateway(
        StubExecutor(slot_count=1),
        GatewayConfig(max_in_flight_per_session=16, max_queue_depth=16),
        admission=QueueDepthShedPolicy(shed_depth=1),
    )
    shed_only.submit(b"s", None)          # runs
    shed_only.submit(b"s", None)          # queues (depth 1)
    shed = shed_only.submit(b"s", None)
    assert shed.reject_reason == RejectReason.SHED_QUEUE_DEPTH


def test_policy_constructor_validation():
    with pytest.raises(ValueError):
        TokenBucketPolicy(rate_per_s=0.0, burst=1)
    with pytest.raises(ValueError):
        GlobalConcurrencyPolicy(max_outstanding=0)
    with pytest.raises(ValueError):
        QueueDepthShedPolicy(shed_depth=0)


# -- gateway lifecycle ----------------------------------------------------------------


def test_dispatch_runs_immediately_when_slots_free():
    executor = StubExecutor(slot_count=2)
    gateway = Gateway(executor)
    request = gateway.submit(b"s", "payload")
    assert request.status == RequestStatus.RUNNING
    assert request.queue_wait_us == 0.0
    done = gateway.drain()
    assert done == [request]
    assert request.status == RequestStatus.COMPLETED
    assert request.result == ("ran", request.request_id)
    assert request.latency_us == pytest.approx(100.0)


def test_fifo_within_priority_and_priority_preempts_fifo():
    executor = StubExecutor(slot_count=1)
    gateway = Gateway(executor, GatewayConfig(max_in_flight_per_session=16))
    running = gateway.submit(b"s", None)            # occupies the slot
    low_first = gateway.submit(b"s", None, priority=5)
    low_second = gateway.submit(b"s", None, priority=5)
    high = gateway.submit(b"s", None, priority=0)   # submitted last
    order = [request.request_id for request in gateway.drain()]
    assert order == [
        running.request_id, high.request_id,
        low_first.request_id, low_second.request_id,
    ]


def test_queue_bound_rejects_and_session_cap_rejects():
    gateway = _gateway(
        StubExecutor(slot_count=1),
        max_queue_depth=2, max_in_flight_per_session=2,
    )
    gateway.submit(b"a", None)                 # running
    gateway.submit(b"a", None)                 # queued; session a at cap
    capped = gateway.submit(b"a", None)
    assert capped.reject_reason == RejectReason.SESSION_LIMIT
    gateway.submit(b"b", None)                 # queued; queue full (depth 2)
    full = gateway.submit(b"c", None)
    assert full.reject_reason == RejectReason.QUEUE_FULL
    assert gateway.metrics.counter(
        "gateway.rejected", reason=RejectReason.QUEUE_FULL
    ).value == 1.0


def test_deadline_expires_queued_request():
    gateway = _gateway(StubExecutor(slot_count=1),
                       max_in_flight_per_session=16)
    gateway.submit(b"s", None)                              # runs 0..100
    doomed = gateway.submit(b"s", None, deadline_us=50.0)   # queued
    survivor = gateway.submit(b"s", None, deadline_us=500.0)
    terminal = gateway.advance_until(60.0)
    assert doomed in terminal
    assert doomed.status == RequestStatus.EXPIRED
    assert doomed.reject_reason == RejectReason.DEADLINE_EXPIRED
    gateway.drain()
    assert survivor.status == RequestStatus.COMPLETED
    assert gateway.metrics.counter("gateway.expired").value == 1.0


def test_default_deadline_applies():
    gateway = _gateway(StubExecutor(slot_count=1),
                       max_in_flight_per_session=16,
                       default_deadline_us=50.0)
    gateway.submit(b"s", None)
    queued = gateway.submit(b"s", None)
    assert queued.deadline_us == 50.0
    gateway.drain()
    assert queued.status == RequestStatus.EXPIRED


def test_cancel_queued_but_not_running():
    gateway = _gateway(StubExecutor(slot_count=1),
                       max_in_flight_per_session=16)
    running = gateway.submit(b"s", None)
    queued = gateway.submit(b"s", None)
    assert gateway.cancel(running) is False
    assert gateway.cancel(queued) is True
    assert queued.status == RequestStatus.CANCELLED
    assert gateway.cancel(queued) is False      # already terminal
    assert [r.request_id for r in gateway.drain()] == [running.request_id]
    # The cancelled request released its session slot.
    assert gateway.session_load(b"s") == 0


def test_device_affinity_defers_until_matching_slot_frees():
    executor = StubExecutor(devices=[0, 1])
    gateway = Gateway(executor, GatewayConfig(max_in_flight_per_session=16))
    on_zero = gateway.submit(b"s", None, device_index=0)
    blocked = gateway.submit(b"s", None, device_index=0)  # dev 1 free, no match
    assert on_zero.status == RequestStatus.RUNNING
    assert blocked.status == RequestStatus.QUEUED
    anywhere = gateway.submit(b"t", None)                 # takes device 1
    assert anywhere.status == RequestStatus.RUNNING
    gateway.drain()
    assert blocked.status == RequestStatus.COMPLETED
    assert blocked.started_at_us == pytest.approx(100.0)


def test_submissions_cannot_move_backwards_in_time():
    gateway = _gateway()
    gateway.submit(b"s", None, at_us=100.0)
    with pytest.raises(ValueError):
        gateway.submit(b"s", None, at_us=50.0)


def test_utilization_and_load_view():
    executor = StubExecutor(slot_count=2)
    gateway = Gateway(executor)
    gateway.submit(b"s", None)
    assert gateway.capacity == 2
    assert gateway.in_flight == 1
    assert gateway.next_completion_us() == pytest.approx(100.0)
    gateway.drain()
    assert gateway.utilization() == pytest.approx(0.5)  # 1 of 2 slots busy


# -- load drivers ---------------------------------------------------------------------


def test_arrival_patterns():
    rng = Drbg(b"\x01" * 8, personalization=b"test-arrivals")
    uniform = list(arrival_times(1000.0, 4, rng, "uniform"))
    assert uniform == pytest.approx([1000.0, 2000.0, 3000.0, 4000.0])
    rng_a = Drbg(b"\x02" * 8)
    rng_b = Drbg(b"\x02" * 8)
    poisson_a = list(arrival_times(1000.0, 50, rng_a, "poisson"))
    poisson_b = list(arrival_times(1000.0, 50, rng_b, "poisson"))
    assert poisson_a == poisson_b                    # seeded determinism
    assert poisson_a == sorted(poisson_a)
    mean_gap = poisson_a[-1] / len(poisson_a)
    assert 500.0 < mean_gap < 2000.0                 # ~1000 µs nominal
    rng_c = Drbg(b"\x03" * 8)
    bursty = list(arrival_times(1000.0, 64, rng_c, "bursty", burst_len=8))
    assert len(bursty) == 64 and bursty == sorted(bursty)
    with pytest.raises(ValueError):
        list(arrival_times(0.0, 1, rng, "poisson"))
    with pytest.raises(ValueError):
        list(arrival_times(1.0, 1, rng, "zipf"))


def test_closed_loop_completes_all_requests():
    gateway = Gateway(StubExecutor(slot_count=2),
                      GatewayConfig(max_in_flight_per_session=4))
    sessions = [
        LoadSession(session_id=b"a", make_payload=lambda i: i),
        LoadSession(session_id=b"b", make_payload=lambda i: i),
    ]
    report = run_closed_loop(gateway, sessions, requests_per_session=5)
    assert report.submitted == 10
    assert report.completed == 10
    assert report.rejected == 0 and report.expired == 0
    assert report.shed_rate == 0.0
    assert report.duration_us == pytest.approx(5 * 100.0)
    assert report.throughput_tps == pytest.approx(10 / (500.0 / 1e6))


def test_closed_loop_respects_concurrency_and_think_time():
    gateway = Gateway(StubExecutor(slot_count=4),
                      GatewayConfig(max_in_flight_per_session=4))
    sessions = [LoadSession(session_id=b"a", make_payload=lambda i: i)]
    report = run_closed_loop(
        gateway, sessions, requests_per_session=6,
        concurrency_per_session=2, think_time_us=50.0,
    )
    assert report.completed == 6
    # 2 in flight, 100 µs service, 50 µs think between rounds:
    # 3 service rounds + 2 think gaps = 400 µs.
    assert report.duration_us == pytest.approx(400.0)


def test_open_loop_sheds_under_overload_with_typed_reasons():
    gateway = Gateway(
        StubExecutor(slot_count=1, service_us=1000.0),
        GatewayConfig(max_queue_depth=2, max_in_flight_per_session=64),
    )
    sessions = [LoadSession(session_id=b"a", make_payload=lambda i: i)]
    report = run_open_loop(
        gateway, sessions, rate_rps=10_000.0, total_requests=100, seed=5
    )
    assert report.submitted == 100
    assert report.completed + report.rejected + report.expired == 100
    assert report.rejected > 0
    assert set(report.rejected_by_reason) <= set(RejectReason.ALL)
    assert 0.0 < report.shed_rate < 1.0


def test_model_executor_runs_fleet_profiles():
    cost = CostModel(ethernet_rtt_us=0.0)
    executor = FleetModelExecutor(core_count=2, cost=cost)
    gateway = Gateway(executor, GatewayConfig(max_in_flight_per_session=4))
    sessions = model_sessions(2, synthetic_profiles(cost, "full-load"))
    report = run_closed_loop(gateway, sessions, requests_per_session=3)
    assert report.completed == 6
    profile = full_load_profile(cost)
    # Two cores cannot saturate the server: latency ~= unloaded walk.
    unloaded = profile.exec_us + profile.oram_queries * cost.oram_server_cpu_us
    assert report.latency_percentile_us(50) == pytest.approx(unloaded, rel=0.05)
    with pytest.raises(ValueError):
        FleetModelExecutor(core_count=0)


def test_synthetic_profile_kinds():
    cost = CostModel()
    full = synthetic_profiles(cost, "full-load", count=3)
    assert len(full) == 3 and len({p.oram_queries for p in full}) == 1
    mixed_a = synthetic_profiles(cost, "mixed", count=6, seed=9)
    mixed_b = synthetic_profiles(cost, "mixed", count=6, seed=9)
    assert mixed_a == mixed_b
    assert len({p.oram_queries for p in mixed_a}) > 1
    with pytest.raises(ValueError):
        synthetic_profiles(cost, "nope")


# -- the ledger approximation ---------------------------------------------------------


def test_ledger_below_capacity_adds_no_wait():
    ledger = OramServerLedger(service_us=25.0)
    # Arrivals 1 ms apart: the server is idle each time.
    assert ledger.serve(0.0) == pytest.approx(25.0)
    assert ledger.serve(1000.0) == pytest.approx(1025.0)
    assert ledger.queue_wait_us == pytest.approx(0.0)


def test_ledger_over_capacity_cascades():
    ledger = OramServerLedger(service_us=60.0, bucket_us=100.0)
    first = ledger.serve(0.0)
    second = ledger.serve(0.0)   # same instant: bucket overflows forward
    assert first == pytest.approx(60.0)
    assert second > first
    assert ledger.queries_served == 2
    assert ledger.busy_us == pytest.approx(120.0)
    assert ledger.queue_wait_us > 0.0


def test_ledger_completion_never_beats_service_time():
    ledger = OramServerLedger(service_us=25.0, bucket_us=100.0)
    ledger.serve(0.0)
    # Arrive mid-bucket: earlier committed work must not let this query
    # finish before arrival + service.
    completion = ledger.serve(90.0)
    assert completion >= 90.0 + 25.0
