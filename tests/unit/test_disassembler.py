"""Disassembler: decoding, round trips, blocks, selector extraction."""

from repro.evm.disassembler import (
    basic_blocks,
    disassemble,
    format_listing,
    selector_candidates,
)
from repro.workloads.asm import assemble, label, push, push_label
from repro.workloads.contracts import erc20


def test_simple_sequence():
    code = assemble(["PUSH1", 0x2A, "PUSH0", "SSTORE", "STOP"])
    listing = disassemble(code)
    assert [i.mnemonic for i in listing] == ["PUSH1", "PUSH0", "SSTORE", "STOP"]
    assert listing[0].immediate == 0x2A
    assert [i.offset for i in listing] == [0, 2, 3, 4]


def test_push32_immediate():
    value = 2**255 + 7
    code = assemble(["PUSH32", value, "POP"])
    listing = disassemble(code)
    assert listing[0].immediate == value
    assert listing[1].offset == 33


def test_truncated_push_zero_extends():
    code = b"\x62\x01"  # PUSH3 with only one immediate byte
    listing = disassemble(code)
    assert listing[0].mnemonic == "PUSH3"
    assert listing[0].immediate == 0x010000


def test_unknown_opcode_decodes_as_invalid():
    listing = disassemble(b"\xef\x00")
    assert listing[0].mnemonic == "INVALID(0xef)"


def test_roundtrip_through_assembler():
    program = (
        push(5) + ["SLOAD"] + push(1) + ["ADD", "DUP1"]
        + push(5) + ["SSTORE", "PUSH0", "MSTORE"]
        + push(32) + ["PUSH0", "RETURN"]
    )
    code = assemble(program)
    # Re-assemble from the disassembly and compare bytes.
    rebuilt_items: list = []
    for instruction in disassemble(code):
        rebuilt_items.append(instruction.mnemonic)
        if instruction.immediate is not None:
            rebuilt_items.append(instruction.immediate)
    assert assemble(rebuilt_items) == code


def test_basic_blocks_split_on_jumpdest_and_halts():
    code = assemble(
        push(1)
        + [push_label("target"), "JUMPI", "STOP"]
        + [label("target"), "JUMPDEST", "PUSH0", "PUSH0", "RETURN"]
    )
    blocks = basic_blocks(code)
    assert len(blocks) == 3  # prologue+jumpi | stop | jumpdest..return
    # Blocks tile the code without overlap.
    for (start_a, end_a), (start_b, _) in zip(blocks, blocks[1:]):
        assert end_a == start_b
    assert blocks[0][0] == 0
    assert blocks[-1][1] == len(code)


def test_format_listing_annotates_jump_targets():
    code = assemble(
        [push_label("x"), "JUMP", label("x"), "JUMPDEST", "STOP"]
    )
    listing = format_listing(code)
    assert "; <- jump target" in listing
    assert "JUMP" in listing


def test_selector_extraction_from_erc20():
    selectors = set(selector_candidates(erc20.erc20_runtime()))
    assert erc20.SEL_TRANSFER in selectors
    assert erc20.SEL_BALANCE_OF in selectors
    assert erc20.SEL_TRANSFER_FROM in selectors
    assert len(selectors) == 7


def test_empty_code():
    assert disassemble(b"") == []
    assert basic_blocks(b"") == []
