"""Path ORAM: server geometry, client protocol, obliviousness basics."""

import pytest

from repro.crypto.kdf import Drbg
from repro.oram.client import DictPositionMap, PathOramClient, StashOverflow
from repro.oram.recursive import RecursivePositionMap
from repro.oram.server import OramServer
from repro.security.observer import AccessPatternObserver


@pytest.fixture
def server():
    return OramServer(height=6)


@pytest.fixture
def client(server):
    return PathOramClient(server, key=b"k" * 32, block_size=256)


# -- server geometry -----------------------------------------------------------


def test_path_nodes_root_to_leaf(server):
    path = server.path_nodes(0)
    assert path[0] == 1  # root
    assert path[-1] == server.leaf_count  # leftmost leaf node
    assert len(path) == server.height + 1


def test_path_nodes_parent_links(server):
    path = server.path_nodes(37)
    for parent, child in zip(path, path[1:]):
        assert child // 2 == parent


def test_leaf_out_of_range(server):
    with pytest.raises(ValueError):
        server.path_nodes(server.leaf_count)
    with pytest.raises(ValueError):
        server.path_nodes(-1)


def test_write_path_shape_enforced(server):
    with pytest.raises(ValueError):
        server.write_path(0, {1: [b"too-few"]})
    with pytest.raises(ValueError):
        server.write_path(0, {9999: [b"x"] * 4})


def test_capacity(server):
    assert server.capacity_blocks() == (2 * 64 - 1) * 4


# -- client protocol ------------------------------------------------------------


def test_read_missing_returns_none(client):
    assert client.read(b"nothing") is None


def test_write_then_read(client):
    client.write(b"key1", b"hello")
    got = client.read(b"key1")
    assert got is not None and got[:5] == b"hello"
    assert len(got) == 256  # padded to block size


def test_overwrite(client):
    client.write(b"key1", b"v1")
    client.write(b"key1", b"v2")
    assert client.read(b"key1")[:2] == b"v2"


def test_write_too_large_rejected(client):
    with pytest.raises(ValueError):
        client.write(b"key1", b"x" * 257)


def test_many_keys_roundtrip(client):
    for i in range(80):
        client.write(b"key%d" % i, b"value%d" % i)
    for i in range(80):
        value = client.read(b"key%d" % i)
        assert value is not None and value.rstrip(b"\x00") == b"value%d" % i


def test_every_access_is_one_path(server, client):
    observer = AccessPatternObserver().attach(server)
    client.write(b"a", b"1")
    client.read(b"a")
    client.read(b"missing")
    assert len(observer.events) == 3  # even the miss costs one access
    for event in observer.events:
        assert len(event.node_indices) == server.height + 1


def test_stash_limit_enforced():
    server = OramServer(height=1, bucket_size=1)  # pathological: tiny tree
    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, stash_limit=2
    )
    with pytest.raises(StashOverflow):
        for i in range(50):
            client.write(b"key%d" % i, b"v")


def test_stash_stays_small_under_load(server):
    client = PathOramClient(server, key=b"k" * 32, block_size=64, stash_limit=64)
    rng = Drbg(b"workload")
    for i in range(400):
        client.write(b"key%d" % rng.randint(100), b"v%d" % i)
    # Stefanov & Shi: stash is O(log n) w.h.p.; with Z=4 it is tiny.
    assert client.stats.max_stash_blocks <= 20


def test_reencryption_changes_ciphertexts(server, client):
    client.write(b"a", b"1")
    snapshot_one = [list(bucket) for bucket in server._buckets]
    client.read(b"a")
    snapshot_two = [list(bucket) for bucket in server._buckets]
    # The accessed path was rewritten with fresh ciphertexts.
    changed = sum(
        1 for before, after in zip(snapshot_one, snapshot_two) if before != after
    )
    assert changed >= 1


def test_dummy_and_real_blocks_same_size(server, client):
    client.write(b"a", b"1")
    sizes = {
        len(blob)
        for bucket in server._buckets
        for blob in bucket
    }
    assert len(sizes) == 1  # indistinguishable by length


def test_remap_after_access(server):
    client = PathOramClient(server, key=b"k" * 32, block_size=64)
    client.write(b"a", b"1")
    positions = []
    for _ in range(30):
        positions.append(client._positions.get(b"a"))
        client.read(b"a")
    # The leaf must change over repeated accesses (remap on every touch).
    assert len(set(positions)) > 5


# -- position maps ---------------------------------------------------------------


def test_dict_position_map():
    pm = DictPositionMap()
    assert pm.get(b"k") is None
    pm.set(b"k", 5)
    assert pm.get(b"k") == 5
    assert len(pm) == 1


def test_recursive_position_map_roundtrip():
    pm = RecursivePositionMap(capacity=512, key=b"r" * 32)
    for i in range(0, 512, 37):
        pm.set(i.to_bytes(8, "big"), i % 64)
    for i in range(0, 512, 37):
        assert pm.get(i.to_bytes(8, "big")) == i % 64
    assert pm.get((1).to_bytes(8, "big")) is None


def test_recursive_position_map_bounds():
    pm = RecursivePositionMap(capacity=16, key=b"r" * 32)
    with pytest.raises(KeyError):
        pm.get((16).to_bytes(8, "big"))
    with pytest.raises(KeyError):
        pm.set((99).to_bytes(8, "big"), 0)


def test_client_with_recursive_position_map():
    server = OramServer(height=5)
    pm = RecursivePositionMap(capacity=1024, key=b"r" * 32)

    class IntKeyMap:
        def get(self, key):
            return pm.get(key)

        def set(self, key, leaf):
            pm.set(key, leaf)

    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, position_map=IntKeyMap()
    )
    for i in range(20):
        client.write(i.to_bytes(8, "big"), b"v%d" % i)
    for i in range(20):
        assert client.read(i.to_bytes(8, "big")).rstrip(b"\x00") == b"v%d" % i
    assert pm.inner_accesses > 0
