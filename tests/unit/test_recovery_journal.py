"""Journal records, trusted-state encoding, and the counter-nonce sealer."""

import pytest

from repro.crypto.gcm import AuthenticationError
from repro.crypto.suite import CounterNonceSealer
from repro.recovery import journal
from repro.recovery.state import SessionRecord, TrustedState

pytestmark = pytest.mark.recovery


def _session_record(n=1):
    return SessionRecord(
        session_id=bytes([n]) * 16,
        user_public=bytes([n]) * 65,
        device_index=n % 2,
        established_at_us=float(n) * 100.0,
    )


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------


def test_record_roundtrip_all_kinds():
    payloads = {
        journal.LEASE: journal.lease_payload(640),
        journal.ACCESS: journal.access_payload(
            {b"k1": b"v1", b"k2": None}, {b"k1": 3, b"k2": None}, {0: 2, 5: 1}, 99
        ),
        journal.SESSION: journal.session_payload(_session_record()),
        journal.ROOT: journal.root_payload(b"\xab" * 32),
    }
    for kind, payload in payloads.items():
        got_kind, got_payload = journal.decode_record(
            journal.encode_record(kind, payload)
        )
        assert got_kind == kind
        assert got_payload == payload


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        journal.encode_record("bogus", {})
    with pytest.raises(ValueError):
        journal.decode_record(b'{"kind":"bogus","payload":{}}')


def test_encoding_is_deterministic():
    payload = journal.access_payload({b"a": b"1"}, {b"a": 7}, {3: 4}, 12)
    assert journal.encode_record(journal.ACCESS, payload) == journal.encode_record(
        journal.ACCESS, journal.access_payload({b"a": b"1"}, {b"a": 7}, {3: 4}, 12)
    )


# ----------------------------------------------------------------------
# Replay semantics
# ----------------------------------------------------------------------


def test_access_record_applies_absolute_deltas():
    state = TrustedState(stash={b"gone": b"x"}, positions={b"gone": 1})
    journal.apply_record(
        state,
        journal.ACCESS,
        journal.access_payload(
            {b"new": b"payload", b"gone": None},
            {b"new": 5, b"gone": None},
            {0: 3, 2: 1},
            17,
        ),
    )
    assert state.stash == {b"new": b"payload"}
    assert state.positions == {b"new": 5}
    assert state.node_versions == {0: 3, 2: 1}
    assert state.nonce_counter == 17


def test_lease_is_monotonic_watermark():
    state = TrustedState()
    journal.apply_record(state, journal.LEASE, journal.lease_payload(100))
    journal.apply_record(state, journal.LEASE, journal.lease_payload(50))
    assert state.leased_until == 100


def test_replay_clamps_nonce_counter_to_lease():
    """A crash may burn leased nonces no access record confirmed; the
    successor must never reuse them."""
    state = journal.replay(
        TrustedState(),
        [
            (journal.LEASE, journal.lease_payload(300)),
            (
                journal.ACCESS,
                journal.access_payload({b"k": b"v"}, {b"k": 1}, {0: 1}, 40),
            ),
        ],
    )
    assert state.nonce_counter == 300


def test_session_and_root_records():
    state = TrustedState()
    record = _session_record(3)
    journal.apply_record(state, journal.SESSION, journal.session_payload(record))
    journal.apply_record(state, journal.ROOT, journal.root_payload(b"\x11" * 32))
    assert state.sessions[record.session_id.hex()] == record
    assert state.sync_root == b"\x11" * 32


def test_double_apply_is_idempotent():
    records = [
        (journal.LEASE, journal.lease_payload(256)),
        (
            journal.ACCESS,
            journal.access_payload(
                {b"a": b"1", b"b": None}, {b"a": 2, b"b": None}, {1: 1}, 30
            ),
        ),
        (journal.SESSION, journal.session_payload(_session_record())),
        (journal.ROOT, journal.root_payload(b"\x22" * 32)),
    ]
    once = journal.replay(TrustedState(), records)
    twice = journal.replay(TrustedState(), records + records)
    assert once.encode() == twice.encode()


# ----------------------------------------------------------------------
# TrustedState encoding
# ----------------------------------------------------------------------


def test_trusted_state_roundtrip():
    state = TrustedState(
        stash={b"key-a": b"payload-a", b"key-b": b""},
        positions={b"key-a": 9, b"key-b": 0},
        node_versions={0: 12, 7: 3},
        nonce_counter=451,
        leased_until=512,
        oram_key=b"\x42" * 32,
        block_size=256,
        sessions={_session_record().session_id.hex(): _session_record()},
        sync_root=b"\x33" * 32,
    )
    decoded = TrustedState.decode(state.encode())
    assert decoded == state
    assert decoded.encode() == state.encode()


def test_trusted_state_none_root():
    state = TrustedState()
    assert TrustedState.decode(state.encode()).sync_root is None


# ----------------------------------------------------------------------
# CounterNonceSealer
# ----------------------------------------------------------------------


def test_sealer_roundtrip_and_binding():
    sealer = CounterNonceSealer(b"\x07" * 32)
    sealed = sealer.seal(41, b"plaintext", aad=b"context")
    assert sealer.open(41, sealed, aad=b"context") == b"plaintext"
    with pytest.raises(AuthenticationError):
        sealer.open(42, sealed, aad=b"context")  # wrong sequence
    with pytest.raises(AuthenticationError):
        sealer.open(41, sealed, aad=b"other")  # wrong AAD
    other = CounterNonceSealer(b"\x08" * 32)
    with pytest.raises(AuthenticationError):
        other.open(41, sealed, aad=b"context")  # wrong key
