"""Hypervisor components: attestation, channel, messages, scheduler, sync."""

import pytest

from repro.crypto.ecc import PrivateKey
from repro.crypto.puf import Manufacturer
from repro.hardware.csu import BootImage, ConfigurationSecurityUnit
from repro.hardware.hevm import HevmCore
from repro.hardware.timing import CostModel, SimClock
from repro.hypervisor.attestation import (
    AttestationError,
    build_report,
    derive_session_key,
    verify_report,
)
from repro.hypervisor.channel import ChannelError, SecureChannel
from repro.hypervisor.messages import (
    HEADER_SIZE,
    MessageError,
    MessageHeader,
    MessageType,
    validate_and_admit,
)
from repro.hypervisor.scheduler import HevmScheduler, SchedulingError
from repro.hypervisor.sync import AccountUpdate, BlockSynchronizer, SyncError
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.oram.adapter import ObliviousStateBackend
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer
from repro.state import Account, WorldState, to_address


# -- attestation ---------------------------------------------------------------


def _device():
    manufacturer = Manufacturer(b"m")
    puf, identity = manufacturer.provision(b"serial")
    csu = ConfigurationSecurityUnit(puf, identity)
    receipt = csu.secure_boot(BootImage("hv", b"fw"))
    device_key = PrivateKey.from_bytes(puf.derive_key(b"device-key"))
    return manufacturer, receipt, device_key


def _fresh_keys():
    return (
        PrivateKey.from_bytes(b"\x21" * 32),
        PrivateKey.from_bytes(b"\x22" * 32),
    )


def test_attestation_roundtrip():
    manufacturer, receipt, device_key = _device()
    session_key, dh_key = _fresh_keys()
    nonce = b"\x07" * 32
    report = build_report(receipt, device_key, session_key, dh_key, nonce)
    verify_report(report, manufacturer.root_public_key, nonce)


def test_attestation_nonce_replay_rejected():
    manufacturer, receipt, device_key = _device()
    session_key, dh_key = _fresh_keys()
    report = build_report(receipt, device_key, session_key, dh_key, b"\x01" * 32)
    with pytest.raises(AttestationError):
        verify_report(report, manufacturer.root_public_key, b"\x02" * 32)


def test_attestation_forged_device_rejected():
    manufacturer, _, _ = _device()
    rogue_mfr, rogue_receipt, rogue_key = (
        lambda m: (m, *_rogue(m))
    )(Manufacturer(b"rogue"))
    session_key, dh_key = _fresh_keys()
    report = build_report(rogue_receipt, rogue_key, session_key, dh_key, b"\x01" * 32)
    with pytest.raises(AttestationError):
        verify_report(report, manufacturer.root_public_key, b"\x01" * 32)


def _rogue(manufacturer):
    puf, identity = manufacturer.provision(b"serial")
    csu = ConfigurationSecurityUnit(puf, identity)
    receipt = csu.secure_boot(BootImage("hv", b"fw"))
    return receipt, PrivateKey.from_bytes(puf.derive_key(b"device-key"))


def test_attestation_swapped_session_key_rejected():
    manufacturer, receipt, device_key = _device()
    session_key, dh_key = _fresh_keys()
    nonce = b"\x01" * 32
    report = build_report(receipt, device_key, session_key, dh_key, nonce)
    # A MITM substitutes their own DH share: the binding signature breaks.
    from dataclasses import replace

    mitm_dh = PrivateKey.from_bytes(b"\x66" * 32)
    tampered = replace(report, dh_public=mitm_dh.public_key())
    with pytest.raises(AttestationError):
        verify_report(tampered, manufacturer.root_public_key, nonce)


def test_session_key_agreement():
    a_dh = PrivateKey.from_bytes(b"\x31" * 32)
    b_dh = PrivateKey.from_bytes(b"\x32" * 32)
    transcript = b"shared-transcript"
    key_a = derive_session_key(a_dh, b_dh.public_key(), transcript)
    key_b = derive_session_key(b_dh, a_dh.public_key(), transcript)
    assert key_a == key_b
    assert derive_session_key(a_dh, b_dh.public_key(), b"other") != key_a


# -- secure channel ---------------------------------------------------------------


def _channel_pair(sign=True):
    key = b"\x55" * 32
    alice_key = PrivateKey.from_bytes(b"\x41" * 32)
    bob_key = PrivateKey.from_bytes(b"\x42" * 32)
    alice = SecureChannel(
        key, own_signing_key=alice_key,
        peer_verify_key=bob_key.public_key(), sign_messages=sign,
    )
    bob = SecureChannel(
        key, own_signing_key=bob_key,
        peer_verify_key=alice_key.public_key(), sign_messages=sign,
    )
    return alice, bob


def test_channel_roundtrip():
    alice, bob = _channel_pair()
    sealed = alice.seal(b"bundle bytes")
    assert bob.open(sealed) == b"bundle bytes"


def test_channel_tamper_detected():
    alice, bob = _channel_pair(sign=False)
    sealed = alice.seal(b"bundle bytes")
    from dataclasses import replace

    bad = replace(sealed, ciphertext=sealed.ciphertext[:-1] + b"\x00")
    with pytest.raises(ChannelError):
        bob.open(bad)


def test_channel_signature_enforced():
    alice, bob = _channel_pair(sign=True)
    sealed = alice.seal(b"bundle")
    from dataclasses import replace

    unsigned = replace(sealed, signature=None)
    with pytest.raises(ChannelError):
        bob.open(unsigned)


def test_channel_wrong_signer_rejected():
    alice, bob = _channel_pair(sign=True)
    mallory = SecureChannel(
        b"\x55" * 32,
        own_signing_key=PrivateKey.from_bytes(b"\x99" * 32),
        peer_verify_key=PrivateKey.from_bytes(b"\x41" * 32).public_key(),
    )
    sealed = mallory.seal(b"fake bundle")
    with pytest.raises(ChannelError):
        bob.open(sealed)


def test_channel_nonces_advance():
    alice, bob = _channel_pair()
    first = alice.seal(b"a")
    second = alice.seal(b"b")
    assert first.nonce != second.nonce
    assert bob.open(first) == b"a"
    assert bob.open(second) == b"b"


# -- message protocol ----------------------------------------------------------------


def test_header_pack_unpack():
    header = MessageHeader(MessageType.USER_BUNDLE, 100, 2, 7)
    packed = header.pack()
    assert len(packed) == HEADER_SIZE
    assert MessageHeader.unpack(packed) == header


def test_admit_valid_message():
    header = MessageHeader(MessageType.TRACE_OUT, 5, 0, 1)
    parsed, body = validate_and_admit(header.pack() + b"hello")
    assert parsed.msg_type == MessageType.TRACE_OUT
    assert body == b"hello"


@pytest.mark.parametrize(
    "mutate",
    [
        lambda raw: raw[:4],  # truncated header
        lambda raw: b"\x00" * 4 + raw[4:],  # bad magic
        lambda raw: raw[:HEADER_SIZE] + b"extra" + raw[HEADER_SIZE:],  # length lie
        lambda raw: raw[:7] + bytes([99]) + raw[8:],  # unknown type
    ],
)
def test_admit_rejects_malformed(mutate):
    header = MessageHeader(MessageType.USER_BUNDLE, 5, 0, 1)
    raw = header.pack() + b"hello"
    with pytest.raises(MessageError):
        validate_and_admit(mutate(raw))


def test_admit_rejects_checksum_mismatch():
    header = MessageHeader(MessageType.USER_BUNDLE, 5, 0, 1)
    raw = bytearray(header.pack() + b"hello")
    raw[12] ^= 1  # flip a bit in the target field
    with pytest.raises(MessageError):
        validate_and_admit(bytes(raw))


def test_oversized_body_rejected():
    import struct

    from repro.hypervisor import messages

    raw = struct.pack(
        ">IIIIQII",
        0x48445450,
        1,
        messages.MAX_BODY_SIZE + 1,
        0,
        0,
        0,
        0,
    )
    with pytest.raises(MessageError):
        MessageHeader.unpack(raw)


# -- scheduler ------------------------------------------------------------------------


def _cores(n):
    clock = SimClock()
    return [HevmCore(i, clock, CostModel()) for i in range(n)]


def test_scheduler_exclusive_assignment():
    cores = _cores(2)
    scheduler = HevmScheduler(cores)
    scheduler.submit(b"s1", 0.0)
    scheduler.submit(b"s2", 0.0)
    a1, _ = scheduler.try_assign(1.0)
    a2, _ = scheduler.try_assign(1.0)
    assert a1.core is not a2.core
    assert scheduler.idle_count == 0
    assert scheduler.owner_of(a1.core) == b"s1"


def test_scheduler_queues_when_busy():
    scheduler = HevmScheduler(_cores(1))
    scheduler.submit(b"s1", 0.0)
    scheduler.submit(b"s2", 0.0)
    first, _ = scheduler.try_assign(0.0)
    assert scheduler.try_assign(0.0) is None
    assert scheduler.queue_depth == 1
    scheduler.release(first.core)
    second, _ = scheduler.try_assign(5.0)
    assert second.session_id == b"s2"
    assert scheduler.stats.total_queue_wait_us == 5.0


def test_release_resets_core():
    scheduler = HevmScheduler(_cores(1))
    scheduler.submit(b"s1", 0.0)
    assignment, _ = scheduler.try_assign(0.0)
    assignment.core.ws_cache.put(("secret",), 42)
    assignment.core.l2.push_frame(1024)
    scheduler.release(assignment.core)
    assert assignment.core.ws_cache.get(("secret",)) is None
    assert assignment.core.l2.depth == 0
    assert not assignment.core.busy


def test_double_release_rejected():
    scheduler = HevmScheduler(_cores(1))
    scheduler.submit(b"s1", 0.0)
    assignment, _ = scheduler.try_assign(0.0)
    scheduler.release(assignment.core)
    with pytest.raises(SchedulingError):
        scheduler.release(assignment.core)


def test_scheduler_stats_track_full_lifecycle():
    scheduler = HevmScheduler(_cores(1))
    scheduler.submit(b"s1", 0.0)
    scheduler.submit(b"s2", 10.0)
    stats = scheduler.stats
    assert stats.bundles_queued == 2
    assert stats.peak_queue_depth == 2
    assert stats.bundles_started == 0

    first, _ = scheduler.try_assign(20.0)      # s1 waited 20
    assert stats.bundles_started == 1
    assert stats.bundles_completed == 0
    scheduler.release(first.core)
    assert stats.bundles_completed == 1

    second, _ = scheduler.try_assign(40.0)     # s2 waited 30
    scheduler.release(second.core)
    assert stats.bundles_queued == 2
    assert stats.bundles_started == 2
    assert stats.bundles_completed == 2
    assert stats.total_queue_wait_us == 50.0
    assert stats.max_queue_wait_us == 30.0
    assert stats.mean_queue_wait_us == 25.0


def test_scheduler_fifo_under_contention():
    scheduler = HevmScheduler(_cores(1))
    for index, session in enumerate([b"s1", b"s2", b"s3"]):
        scheduler.submit(session, float(index))
    served = []
    now = 10.0
    while scheduler.queue_depth or scheduler.idle_count == 0:
        assigned = scheduler.try_assign(now)
        if assigned is None:
            break
        assignment, _ = assigned
        served.append(assignment.session_id)
        scheduler.release(assignment.core)
        now += 10.0
    assert served == [b"s1", b"s2", b"s3"]     # strict submit order
    # Waits shrink by less than the submit spacing as the line drains:
    # 10-0, 20-1, 30-2.
    assert scheduler.stats.total_queue_wait_us == 10.0 + 19.0 + 28.0
    assert scheduler.stats.max_queue_wait_us == 28.0


def test_release_lets_queued_bundle_start():
    scheduler = HevmScheduler(_cores(1))
    scheduler.submit(b"s1", 0.0)
    scheduler.submit(b"s2", 0.0)
    running, _ = scheduler.try_assign(0.0)
    assert scheduler.try_assign(1.0) is None   # no idle core yet
    scheduler.release(running.core)
    unblocked = scheduler.try_assign(2.0)
    assert unblocked is not None
    assignment, _ = unblocked
    assert assignment.session_id == b"s2"
    assert assignment.queued_at_us == 0.0
    assert assignment.started_at_us == 2.0


def test_queued_waits_exposed_without_popping():
    scheduler = HevmScheduler(_cores(1))
    scheduler.submit(b"s1", 0.0)
    occupying, _ = scheduler.try_assign(0.0)
    scheduler.submit(b"s2", 5.0)
    scheduler.submit(b"s3", 8.0)
    assert scheduler.queued_waits_us(10.0) == [5.0, 2.0]
    assert scheduler.queue_depth == 2          # nothing was popped
    assert scheduler.stats.peak_queue_depth == 2
    scheduler.release(occupying.core)
    assert scheduler.queued_waits_us(10.0) == [5.0, 2.0]


# -- block synchronization -----------------------------------------------------------


def _oram_backend():
    server = OramServer(height=8)
    client = PathOramClient(server, key=b"x" * 32)
    return ObliviousStateBackend(client)


def _world_with_account():
    world = WorldState()
    address = to_address(0xAB)
    account = world.ensure(address)
    account.balance = 1000
    account.nonce = 1
    account.code = b"\x60\x01"
    account.storage[5] = 50
    return world, address


def test_sync_applies_verified_update():
    world, address = _world_with_account()
    root = world.commit()
    backend = _oram_backend()
    synchronizer = BlockSynchronizer(backend)
    update = AccountUpdate(
        address=address,
        account=world.accounts[address].copy(),
        account_proof=world.prove_account(address),
        storage_proofs={5: world.prove_storage(address, 5)},
    )
    pages = synchronizer.apply_block(root, [update])
    assert pages >= 3
    assert backend.get_meta(address).balance == 1000
    assert backend.get_storage(address, 5) == 50
    assert synchronizer.stats.storage_slots_verified == 1


def test_sync_rejects_tampered_balance():
    world, address = _world_with_account()
    root = world.commit()
    backend = _oram_backend()
    synchronizer = BlockSynchronizer(backend)
    tampered = world.accounts[address].copy()
    tampered.balance = 10**18  # SP lies about the balance
    update = AccountUpdate(
        address=address,
        account=tampered,
        account_proof=world.prove_account(address),
    )
    with pytest.raises(SyncError):
        synchronizer.apply_block(root, [update])
    assert not backend.get_meta(address).exists  # nothing ingested


def test_sync_rejects_tampered_code():
    world, address = _world_with_account()
    root = world.commit()
    synchronizer = BlockSynchronizer(_oram_backend())
    tampered = world.accounts[address].copy()
    tampered.code = b"\x60\x66"  # malicious bytecode swap
    update = AccountUpdate(
        address=address,
        account=tampered,
        account_proof=world.prove_account(address),
    )
    with pytest.raises(SyncError):
        synchronizer.apply_block(root, [update])


def test_sync_rejects_tampered_storage():
    world, address = _world_with_account()
    root = world.commit()
    synchronizer = BlockSynchronizer(_oram_backend())
    tampered = world.accounts[address].copy()
    tampered.storage[5] = 999
    update = AccountUpdate(
        address=address,
        account=tampered,
        account_proof=world.prove_account(address),
        storage_proofs={},
    )
    # Storage mismatch changes the storage root -> account proof fails.
    with pytest.raises(SyncError):
        synchronizer.apply_block(root, [update])


def test_sync_rejects_phantom_account():
    world, _ = _world_with_account()
    root = world.commit()
    synchronizer = BlockSynchronizer(_oram_backend())
    phantom = to_address(0xFEED)
    update = AccountUpdate(
        address=phantom,
        account=Account(balance=5),
        account_proof=world.prove_account(phantom),  # non-membership proof
    )
    with pytest.raises(SyncError):
        synchronizer.apply_block(root, [update])


def test_security_features_levels():
    raw = SecurityFeatures.from_level("raw")
    assert not raw.encryption and not raw.oram_storage
    es = SecurityFeatures.from_level("ES")
    assert es.encryption and es.signatures and not es.oram_storage
    eso = SecurityFeatures.from_level("ESO")
    assert eso.oram_storage and not eso.oram_code
    full = SecurityFeatures.from_level("full")
    assert full.oram_code and full.prefetch
    with pytest.raises(ValueError):
        SecurityFeatures.from_level("bogus")


def test_channel_rejects_replay():
    alice, bob = _channel_pair()
    first = alice.seal(b"bundle-1")
    assert bob.open(first) == b"bundle-1"
    with pytest.raises(ChannelError):
        bob.open(first)  # the SP re-submits the old bundle


def test_channel_rejects_reordering():
    alice, bob = _channel_pair()
    first = alice.seal(b"bundle-1")
    second = alice.seal(b"bundle-2")
    assert bob.open(second) == b"bundle-2"
    with pytest.raises(ChannelError):
        bob.open(first)  # older nonce after a newer one
