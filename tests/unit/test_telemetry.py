"""Unit coverage for the telemetry plane: tracer, attribution,
exporters, and the metrics satellites that shipped with it."""

import json

import pytest

from repro.hardware.timing import SimClock
from repro.serving.metrics import Gauge, Histogram, MetricsRegistry, flatten_name
from repro.telemetry.critical_path import (
    aggregate,
    attribute,
    attribute_all,
    attribution_table,
    request_roots,
)
from repro.telemetry.exporters import (
    CONTROL_PLANE_TID,
    chrome_trace_events,
    render_chrome_trace,
    render_prometheus,
)
from repro.telemetry.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    TraceSampler,
    Tracer,
    install_tracer,
    tracer_for,
    uninstall_tracer,
)


def make_tracer(clock: SimClock) -> Tracer:
    return Tracer(clock=lambda: clock.now_us)


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------

class TestTracer:
    def test_record_covers_the_interval_the_advance_will_consume(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        clock.advance_us(10.0)
        span = tracer.record("oram.access", "oram_storage", 25.0, kind="storage")
        clock.advance_us(25.0)
        assert (span.start_us, span.end_us) == (10.0, 35.0)
        assert span.duration_us == 25.0
        assert span.attributes["kind"] == "storage"

    def test_span_context_nests_and_ends_at_clock_position(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        with tracer.span("outer", "service") as outer:
            clock.advance_us(5.0)
            with tracer.span("inner", "execution") as inner:
                clock.advance_us(7.0)
            clock.advance_us(3.0)
        assert inner.parent_id == outer.span_id
        assert (inner.start_us, inner.end_us) == (5.0, 12.0)
        assert (outer.start_us, outer.end_us) == (0.0, 15.0)

    def test_span_ends_even_when_the_block_raises(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed", "execution") as span:
                clock.advance_us(4.0)
                raise RuntimeError("boom")
        assert span.end_us == 4.0
        assert tracer.active is None

    def test_start_end_span_take_explicit_times(self):
        tracer = make_tracer(SimClock())
        span = tracer.start_span("gateway.request", "request", start_us=100.0)
        tracer.end_span(span, 250.0)
        assert span.duration_us == 150.0

    def test_explicit_parent_overrides_the_stack(self):
        tracer = make_tracer(SimClock())
        root = tracer.start_span("root", "request", start_us=0.0)
        with tracer.span("active", "service"):
            child = tracer.start_span("child", "queueing", parent=root)
        assert child.parent_id == root.span_id

    def test_attach_parents_without_owning_the_lifetime(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        execute = tracer.start_span("gateway.execute", "service", start_us=0.0)
        with tracer.attach(execute):
            inner = tracer.record("bundle.admission", "hypervisor", 1.0)
        assert inner.parent_id == execute.span_id
        assert execute.end_us is None  # attach never ends the span

    def test_suppressed_drops_all_spans(self):
        tracer = make_tracer(SimClock())
        with tracer.suppressed():
            assert tracer.record("hidden", "execution", 5.0) is NULL_SPAN
            with tracer.span("also-hidden", "execution") as span:
                assert span is NULL_SPAN
            assert tracer.active is None
        assert tracer.spans == []

    def test_shifted_stamps_the_domain_offset_onto_spans(self):
        tracer = make_tracer(SimClock())
        with tracer.shifted(1000.0):
            shifted = tracer.record("device-side", "execution", 2.0)
            assert tracer.shift_us == 1000.0
            with tracer.shifted(-400.0):
                nested = tracer.record("deeper", "execution", 2.0)
        outside = tracer.record("gateway-side", "request", 2.0)
        assert shifted.shift_us == 1000.0
        assert nested.shift_us == 600.0
        assert outside.shift_us == 0.0

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.record("x", "y", 1.0) is NULL_SPAN
        with NULL_TRACER.span("x", "y") as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.active is None
        assert NULL_TRACER.sample() is True
        assert NULL_SPAN.set(foo=1) is NULL_SPAN
        assert NULL_SPAN.event("e", 0.0) is NULL_SPAN

    def test_registry_install_lookup_uninstall(self):
        clock = SimClock()
        assert tracer_for(clock) is NULL_TRACER
        tracer = install_tracer(clock)
        assert tracer_for(clock) is tracer
        clock.advance_us(42.0)
        assert tracer.now_us() == 42.0
        uninstall_tracer(clock)
        assert tracer_for(clock) is NULL_TRACER
        assert tracer_for(None) is NULL_TRACER

    def test_span_events_carry_time_and_attributes(self):
        tracer = make_tracer(SimClock())
        span = tracer.record("gateway.execute", "service", 10.0)
        span.event("fault", 3.0, error="HevmCrashError", attempt=1)
        assert span.events[0].name == "fault"
        assert span.events[0].at_us == 3.0
        assert span.events[0].attributes["error"] == "HevmCrashError"


class TestSampler:
    def test_same_seed_same_decisions(self):
        first = TraceSampler(rate=0.5, seed=9)
        second = TraceSampler(rate=0.5, seed=9)
        decisions = [first.should_sample() for _ in range(64)]
        assert decisions == [second.should_sample() for _ in range(64)]
        assert True in decisions and False in decisions

    def test_extreme_rates(self):
        assert all(TraceSampler(1.0, seed=1).should_sample() for _ in range(32))
        assert not any(TraceSampler(0.0, seed=1).should_sample() for _ in range(32))

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            TraceSampler(rate=1.5)

    def test_tracer_without_sampler_samples_everything(self):
        assert make_tracer(SimClock()).sample() is True


# ----------------------------------------------------------------------
# Critical-path attribution
# ----------------------------------------------------------------------

def build_request_tree(tracer: Tracer, clock: SimClock) -> None:
    """A hand-built request: 10 queue + (20 exec with 12 of oram inside)."""
    root = tracer.start_span("gateway.request", "request", start_us=clock.now_us)
    queue = tracer.start_span("gateway.queue", "queueing", parent=root)
    clock.advance_us(10.0)
    tracer.end_span(queue)
    execute = tracer.start_span("gateway.execute", "service", parent=root)
    with tracer.attach(execute):
        with tracer.span("hevm.tx", "execution"):
            clock.advance_us(4.0)
            tracer.record("oram.access", "oram_storage", 12.0)
            clock.advance_us(12.0)
            clock.advance_us(4.0)
    tracer.end_span(execute)
    tracer.end_span(root)


class TestCriticalPath:
    def test_exclusive_buckets_partition_the_root_exactly(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        build_request_tree(tracer, clock)
        [attribution] = attribute_all(tracer)
        assert attribution.total_us == 30.0
        assert attribution.buckets == {
            "request": 0.0,
            "queueing": 10.0,
            "service": 0.0,
            "execution": 8.0,
            "oram_storage": 12.0,
        }
        assert attribution.residual_us == 0.0

    def test_request_roots_excludes_control_plane_and_open_spans(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        tracer.record("attestation.report", "session", 5.0)  # control plane
        build_request_tree(tracer, clock)
        tracer.start_span("gateway.request", "request")      # never ended
        roots = request_roots(tracer)
        assert [span.name for span in roots] == ["gateway.request"]
        assert roots[0].end_us is not None

    def test_aggregate_sums_across_requests_with_sorted_keys(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        build_request_tree(tracer, clock)
        build_request_tree(tracer, clock)
        totals = aggregate(attribute_all(tracer))
        assert list(totals) == sorted(totals)
        assert totals["queueing"] == 20.0
        assert totals["oram_storage"] == 24.0
        assert sum(totals.values()) == 60.0

    def test_attribution_table_renders_every_layer(self):
        table = attribution_table({"execution": 750.0, "queueing": 250.0}, requests=2)
        assert "execution" in table and "queueing" in table
        assert "75.0%" in table
        assert "end-to-end" in table

    def test_attribute_single_root_without_index(self):
        tracer = make_tracer(SimClock())
        root = tracer.start_span("gateway.request", "request", start_us=0.0)
        tracer.end_span(root, 5.0)
        attribution = attribute(tracer.spans, root)
        assert attribution.buckets == {"request": 5.0}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

class TestChromeExport:
    def trace(self):
        clock = SimClock()
        tracer = make_tracer(clock)
        tracer.record("session.dhke", "session", 5.0)  # control plane
        clock.advance_us(5.0)
        root = tracer.start_span(
            "gateway.request",
            "request",
            start_us=clock.now_us,
            attributes={"request_id": 7, "session": b"\xab\xcd"},
        )
        with tracer.attach(root):
            with tracer.shifted(100.0):
                span = tracer.record("oram.access", "oram_storage", 3.0)
                # Device-domain event on a device-domain span: no pre-shift.
                span.event("fault", clock.now_us, error="X")
            clock.advance_us(3.0)
        tracer.end_span(root)
        return tracer

    def test_document_parses_and_uses_complete_events(self):
        tracer = self.trace()
        document = json.loads(render_chrome_trace(tracer))
        assert document["displayTimeUnit"] == "ms"
        phases = [event["ph"] for event in document["traceEvents"]]
        assert "M" in phases and "X" in phases and "i" in phases

    def test_rows_split_control_plane_from_requests(self):
        events = chrome_trace_events(self.trace())
        by_name = {
            event["args"]["name"]: event
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert by_name["control-plane"]["tid"] == CONTROL_PLANE_TID
        assert by_name["request-7"]["tid"] == 7
        oram = next(e for e in events if e.get("name") == "oram.access")
        assert oram["tid"] == 7

    def test_shift_applied_and_bytes_hexed(self):
        events = chrome_trace_events(self.trace())
        oram = next(e for e in events if e.get("name") == "oram.access")
        assert oram["ts"] == 105.0  # started at 5, shifted by +100
        root = next(e for e in events if e.get("name") == "gateway.request")
        assert root["args"]["session"] == "abcd"
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["ts"] == 105.0  # device time + the span's shift


class TestPrometheusExport:
    def test_subsumes_the_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("gateway.submitted").inc(3)
        registry.counter("faults.injected", kind="dma-drop").inc()
        registry.gauge("gateway.queue_depth").set(4)
        registry.histogram("gateway.latency_us").observe(100.0)
        registry.histogram("gateway.latency_us").observe(300.0)
        text = render_prometheus(registry, layer_totals={"execution": 123.5})
        assert "# TYPE gateway_submitted_total counter" in text
        assert "gateway_submitted_total 3.0" in text
        assert 'faults_injected_total{kind="dma-drop"} 1.0' in text
        assert "gateway_queue_depth 4.0" in text
        assert "gateway_queue_depth_peak 4.0" in text
        assert 'gateway_latency_us{quantile="0.5"} 100.0' in text
        assert "gateway_latency_us_count 2.0" in text
        assert "gateway_latency_us_sum 400.0" in text
        assert "gateway_latency_us_max 300.0" in text
        assert 'hardtape_trace_layer_exclusive_us{layer="execution"} 123.5' in text
        assert text.endswith("\n")

    def test_rendering_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b").inc()
            registry.counter("a", z="1", a="2").inc()
            registry.gauge("g").set(-2)
            return render_prometheus(registry)

        assert build() == build()


# ----------------------------------------------------------------------
# Metrics satellites: gauge peak, histogram caches, labels, reset
# ----------------------------------------------------------------------

class TestGaugePeak:
    def test_negative_only_gauge_reports_negative_peak(self):
        gauge = Gauge()
        gauge.set(-5.0)
        gauge.set(-2.0)
        assert gauge.peak == -2.0  # not the 0.0 it was never set to

    def test_unset_gauge_peak_tracks_value(self):
        assert Gauge().peak == 0.0

    def test_peak_is_high_water(self):
        gauge = Gauge()
        for value in (1.0, 9.0, 3.0):
            gauge.set(value)
        assert (gauge.value, gauge.peak) == (3.0, 9.0)


class TestHistogramCaches:
    def test_running_total_and_max_match_recomputation(self):
        hist = Histogram()
        values = [5.0, -3.0, 12.0, 0.0, 12.0, 7.5]
        for value in values:
            hist.observe(value)
        assert hist.total == sum(values)
        assert hist.max == max(values)
        assert hist.mean == sum(values) / len(values)

    def test_first_sample_negative(self):
        hist = Histogram()
        hist.observe(-4.0)
        assert hist.max == -4.0

    def test_empty_histogram(self):
        hist = Histogram()
        assert (hist.total, hist.max, hist.mean, hist.count) == (0.0, 0.0, 0.0, 0)

    def test_percentiles_survive_unsorted_observation(self):
        hist = Histogram()
        for value in (30.0, 10.0, 20.0):
            hist.observe(value)
        assert hist.percentile(50) == 20.0
        assert hist.max == 30.0


class TestRegistryLabels:
    def test_labelled_metrics_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("faults.injected").inc()
        registry.counter("faults.injected", kind="dma-drop").inc(2)
        assert registry.counter("faults.injected").value == 1.0
        assert registry.counter("faults.injected", kind="dma-drop").value == 2.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1, b=2).inc()
        assert registry.counter("x", b=2, a=1).value == 1.0

    def test_snapshot_flattens_labels_sorted(self):
        registry = MetricsRegistry()
        registry.counter("x", b="2", a="1").inc()
        assert "x{a=1,b=2}" in registry.snapshot()
        assert flatten_name("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"
        assert flatten_name("x", ()) == "x"

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.snapshot() == {}
        assert registry.counter("c").value == 0.0
