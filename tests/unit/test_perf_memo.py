"""Decrypt memoization: correctness, soundness, and observer-equivalence."""

import pytest

from repro.crypto.suite import AesGcmAead, AuthenticationError, Blake2Aead
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer
from repro.perf.memo import MemoizedAead

KEY = b"m" * 32


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        MemoizedAead(Blake2Aead(KEY), capacity_blocks=0)
    with pytest.raises(ValueError):
        MemoizedAead(Blake2Aead(KEY), capacity_blocks=-1)


def test_seal_populates_then_open_hits():
    memo = MemoizedAead(Blake2Aead(KEY))
    nonce = (1).to_bytes(12, "big")
    sealed = memo.encrypt(nonce, b"payload", b"aad")
    assert memo.decrypt(nonce, sealed, b"aad") == b"payload"
    assert memo.stats.hits == 1
    assert memo.stats.misses == 0


def test_foreign_ciphertext_misses_then_caches():
    inner = Blake2Aead(KEY)
    memo = MemoizedAead(Blake2Aead(KEY))
    nonce = (2).to_bytes(12, "big")
    sealed = inner.encrypt(nonce, b"from elsewhere")
    assert memo.decrypt(nonce, sealed) == b"from elsewhere"
    assert (memo.stats.hits, memo.stats.misses) == (0, 1)
    assert memo.decrypt(nonce, sealed) == b"from elsewhere"
    assert (memo.stats.hits, memo.stats.misses) == (1, 1)


def test_lru_eviction_is_bounded():
    memo = MemoizedAead(Blake2Aead(KEY), capacity_blocks=4)
    for i in range(10):
        memo.encrypt(i.to_bytes(12, "big"), b"pt-%d" % i)
    assert len(memo) == 4
    assert memo.stats.evictions == 6
    # The oldest entries were evicted: decrypting them is a miss.
    sealed0 = Blake2Aead(KEY).encrypt((0).to_bytes(12, "big"), b"pt-0")
    memo.decrypt((0).to_bytes(12, "big"), sealed0)
    assert memo.stats.misses == 1


def test_tampered_ciphertext_misses_cache_and_rejects():
    """Soundness: any tampered byte changes the cache key, so the lookup
    falls through to real decryption, which rejects it."""
    memo = MemoizedAead(AesGcmAead(KEY))
    nonce = (3).to_bytes(12, "big")
    sealed = bytearray(memo.encrypt(nonce, b"secret", b"aad"))
    sealed[0] ^= 1
    with pytest.raises(AuthenticationError):
        memo.decrypt(nonce, bytes(sealed), b"aad")
    # Replay under a different AAD (stale bucket version) also misses.
    good = memo.encrypt(nonce, b"secret", b"version-1")
    with pytest.raises(AuthenticationError):
        memo.decrypt(nonce, good, b"version-2")


def test_open_blocks_serves_hits_and_batches_misses():
    inner = Blake2Aead(KEY)
    memo = MemoizedAead(Blake2Aead(KEY))
    known_nonce = (4).to_bytes(12, "big")
    known = memo.encrypt(known_nonce, b"known", b"a")
    foreign_nonce = (5).to_bytes(12, "big")
    foreign = inner.encrypt(foreign_nonce, b"foreign", b"b")
    out = memo.open_blocks([
        (known_nonce, known, b"a"),
        (foreign_nonce, foreign, b"b"),
    ])
    assert out == [b"known", b"foreign"]
    assert (memo.stats.hits, memo.stats.misses) == (1, 1)


def test_open_blocks_bad_tag_raises_before_returning():
    memo = MemoizedAead(AesGcmAead(KEY))
    nonce = (6).to_bytes(12, "big")
    good = memo.encrypt(nonce, b"fine")
    memo.clear()
    bad = bytearray(good)
    bad[-1] ^= 1
    with pytest.raises(AuthenticationError):
        memo.open_blocks([
            (nonce, good, b""),
            (nonce, bytes(bad), b""),
        ])


def _run_oram(memo_blocks, cipher_factory=Blake2Aead):
    server = OramServer(height=4)
    events = []
    server.add_observer(events.append)
    client = PathOramClient(
        server, KEY, block_size=64, cipher_factory=cipher_factory,
        decrypt_memo_blocks=memo_blocks,
    )
    reads = []
    for i in range(60):
        key = b"blk-%d" % (i % 11)
        if i % 4 == 0:
            client.write(key, b"v%d" % i)
        else:
            reads.append(client.read(key))
    buckets = [bytes().join(bucket) for bucket in server._buckets]
    return reads, events, buckets, client


@pytest.mark.parametrize("cipher_factory", [Blake2Aead, AesGcmAead])
def test_memoized_oram_is_observer_equivalent(cipher_factory):
    """The property the docs promise: with and without memoization, the
    client returns identical plaintexts AND the SP observes an identical
    PathAccessEvent stream and identical ciphertext tree."""
    reads_off, events_off, buckets_off, _ = _run_oram(None, cipher_factory)
    reads_on, events_on, buckets_on, client = _run_oram(4096, cipher_factory)
    assert reads_on == reads_off
    assert events_on == events_off  # slots dataclass, field-wise equality
    assert buckets_on == buckets_off
    assert client.memo is not None and client.memo.stats.hits > 0


def test_access_summary_reports_memo_deltas():
    _, _, _, client = _run_oram(4096)
    last = client.last_access
    assert last.memo_hits + last.memo_misses > 0
    # Steady state: every slot on the path was sealed by this client.
    assert last.memo_misses == 0

    _, _, _, plain_client = _run_oram(None)
    assert plain_client.last_access.memo_hits == 0
    assert plain_client.last_access.memo_misses == 0
