"""Exact gas accounting against the Ethereum (Berlin/London) schedule.

These tests pin absolute gas numbers so any drift in the gas model —
which the paper's HEVM must reproduce bit-exactly for its traces to
match a real node — fails loudly.
"""


from repro.evm import execute_transaction
from repro.state import JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, label, push, push_label

from tests.conftest import ALICE

TARGET = to_address(0x6A5)


def run(backend, chain, program, gas_limit=30_000_000, storage=None):
    backend.ensure(TARGET).code = assemble(program)
    if storage:
        backend.ensure(TARGET).storage.update(storage)
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=TARGET, gas_limit=gas_limit)
    )
    return result


def test_empty_code_is_base_cost(backend, chain):
    result = run(backend, chain, ["STOP"])
    assert result.gas_used == 21_000


def test_push_add_costs(backend, chain):
    # 2 PUSH1 (3 each) + ADD (3) + STOP (0) = 9.
    result = run(backend, chain, ["PUSH1", 1, "PUSH1", 2, "ADD", "STOP"])
    assert result.gas_used == 21_000 + 9


def test_push0_costs_2(backend, chain):
    result = run(backend, chain, ["PUSH0", "POP", "STOP"])
    assert result.gas_used == 21_000 + 2 + 2


def test_cold_sload_costs_2100(backend, chain):
    result = run(backend, chain, push(5) + ["SLOAD", "POP", "STOP"])
    assert result.gas_used == 21_000 + 3 + 2_100 + 2


def test_warm_sload_costs_100(backend, chain):
    result = run(
        backend, chain,
        push(5) + ["SLOAD", "POP"] + push(5) + ["SLOAD", "POP", "STOP"],
    )
    assert result.gas_used == 21_000 + (3 + 2_100 + 2) + (3 + 100 + 2)


def test_sstore_fresh_slot_costs_22100(backend, chain):
    # Cold slot (2100) + fresh set (20000).
    result = run(backend, chain, push(7) + push(5) + ["SSTORE", "STOP"])
    assert result.gas_used == 21_000 + 6 + 2_100 + 20_000


def test_sstore_reset_costs_5000_total(backend, chain):
    # Existing non-zero slot: cold 2100 + reset 2900.
    result = run(
        backend, chain,
        push(7) + push(5) + ["SSTORE", "STOP"],
        storage={5: 1},
    )
    assert result.gas_used == 21_000 + 6 + 2_100 + 2_900


def test_sstore_noop_costs_100(backend, chain):
    result = run(
        backend, chain,
        push(1) + push(5) + ["SSTORE", "STOP"],
        storage={5: 1},
    )
    assert result.gas_used == 21_000 + 6 + 2_100 + 100


def test_sstore_clear_refund(backend, chain):
    # Clearing a slot: 5000 gas, 4800 refund, capped at gas_used/5.
    result = run(
        backend, chain,
        push(0) + push(5) + ["SSTORE", "STOP"],
        storage={5: 9},
    )
    pre_refund = 21_000 + 5 + 2_100 + 2_900
    refund = min(4_800, pre_refund // 5)
    assert result.gas_used == pre_refund - refund


def test_cold_balance_costs_2600(backend, chain):
    other = to_address(0x9999)
    program = ["PUSH20", int.from_bytes(other, "big"), "BALANCE", "POP", "STOP"]
    result = run(backend, chain, program)
    assert result.gas_used == 21_000 + 3 + 2_600 + 2


def test_warm_balance_costs_100(backend, chain):
    other = int.from_bytes(to_address(0x9999), "big")
    program = (
        ["PUSH20", other, "BALANCE", "POP"]
        + ["PUSH20", other, "BALANCE", "POP", "STOP"]
    )
    result = run(backend, chain, program)
    assert result.gas_used == 21_000 + (3 + 2_600 + 2) + (3 + 100 + 2)


def test_memory_expansion_quadratic(backend, chain):
    # MSTORE at 0: expand to 1 word -> 3 gas; at 32 KB: far more.
    small = run(backend, chain, push(1) + ["PUSH0", "MSTORE", "STOP"])
    base = 21_000 + 3 + 2 + 3  # push + push0 + mstore static
    assert small.gas_used == base + 3  # one word
    words = 1024  # expand to 32 KB
    big = run(
        backend, chain,
        push(1) + push(words * 32 - 32) + ["MSTORE", "STOP"],
    )
    expected_expansion = 3 * words + words * words // 512
    assert big.gas_used == 21_000 + 3 + 3 + 3 + expected_expansion


def test_sha3_word_cost(backend, chain):
    # SHA3 over 64 bytes: 30 static + 6*2 words + expansion for 2 words.
    result = run(
        backend, chain,
        push(64) + ["PUSH0", "SHA3", "POP", "STOP"],
    )
    assert result.gas_used == 21_000 + 3 + 2 + (30 + 12 + 6) + 2


def test_exp_per_byte(backend, chain):
    # exponent 0x0100 has 2 bytes: 10 + 50*2.
    result = run(
        backend, chain,
        push(0x100) + push(2) + ["EXP", "POP", "STOP"],
    )
    assert result.gas_used == 21_000 + 3 + 3 + (10 + 100) + 2


def test_log1_costs(backend, chain):
    result = run(
        backend, chain,
        push(0xAA) + push(32) + ["PUSH0", "LOG1", "STOP"],
    )
    # LOG1 static 375 + topic 375 + 32 data bytes * 8 + memory expansion 3...
    # data length 32 from offset 0 (1 word).
    assert result.gas_used == 21_000 + 3 + 3 + 2 + (375 + 375 + 256 + 3)


def test_calldata_intrinsic_pricing(backend, chain):
    backend.ensure(TARGET).code = assemble(["STOP"])
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=TARGET, data=b"\x00\x01\x00\x02"),
    )
    assert result.gas_used == 21_000 + 4 + 16 + 4 + 16


def test_eip150_gas_forwarding(backend, chain):
    """A subcall gets at most 63/64 of the remaining gas."""
    callee = to_address(0xCE)
    # Callee: burn everything it got (loop until OOG).
    backend.ensure(callee).code = assemble(
        [label("loop"), "JUMPDEST", push_label("loop"), "JUMP"]
    )
    # Caller: CALL with huge gas request, then still succeed afterwards.
    program = (
        push(0) + push(0) + push(0) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(callee, "big")]
        + ["PUSH32", 2**200, "CALL", "POP"]   # request absurd gas
        + push(1) + push(0) + ["SSTORE", "STOP"]  # caller continues
    )
    # 1/64 of ~2M leaves ~31k gas: enough for the fresh SSTORE (22.1k).
    result = run(backend, chain, program, gas_limit=2_000_000)
    # The callee burned its 63/64 share, but 1/64 remained: enough for
    # the caller's SSTORE, so the transaction still succeeds.
    assert result.success, result.error
    assert result.write_set.storage[(TARGET, 0)] == 1


def test_call_depth_limit_1024(backend, chain):
    """Self-recursive CALL stops at depth 1024 without failing the tx."""
    recursive = to_address(0x0EC)
    # Contract calls itself, then stores depth-counter results.
    backend.ensure(recursive).code = assemble(
        push(0) + ["SLOAD"] + push(1) + ["ADD"] + push(0) + ["SSTORE"]
        + push(0) + push(0) + push(0) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(recursive, "big"), "GAS", "CALL", "POP", "STOP"]
    )
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=recursive, gas_limit=30_000_000),
    )
    assert result.success
    # Depth counter: one increment per frame; the 63/64 rule throttles
    # recursion long before 1024 with this gas limit, but the counter
    # must be well over 1 and the tx must not blow up.
    assert state.get_storage(recursive, 0) > 10
