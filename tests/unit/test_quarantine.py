"""Quarantine-driven degraded serving: policy, breakers, gateway shed."""

import pytest

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.core.user import PreExecutionClient
from repro.faults import (
    CircuitOpenError,
    FailoverBundle,
    QuarantinePolicy,
    QuarantinedDeviceError,
    ReceiptMismatchError,
    ResilientServiceExecutor,
)
from repro.hypervisor.bundle_codec import (
    TransactionBundle,
    decode_trace_report,
    encode_bundle,
)
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.serving.admission import RejectReason
from repro.serving.gateway import Gateway, GatewayConfig, ServiceExecutor
from repro.serving.metrics import MetricsRegistry
from repro.telemetry.flight import FlightRecorder
from repro.workloads.generator import EvaluationSetConfig, build_evaluation_set

pytestmark = pytest.mark.byzantine


@pytest.fixture(scope="module")
def evalset():
    return build_evaluation_set(
        EvaluationSetConfig(blocks=1, txs_per_block=4)
    )


@pytest.fixture
def fleet(evalset):
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        device_count=2,
        device_config=DeviceConfig(hevm_count=2),
        charge_fees=False,
    )
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x07" * 32
    )
    sessions = {
        index: client.connect(service, device)
        for index, device in enumerate(service.devices)
    }
    return service, sessions


def _failover_bundle(service, sessions, evalset):
    bundle = TransactionBundle(
        transactions=(evalset.transactions[0],),
        block_number=service.synced_height,
    )
    return FailoverBundle(sessions, encode_bundle(bundle))


def _cause():
    return ReceiptMismatchError(b"\x00" * 16, "commitment", "test verdict")


class TestPolicyState:
    def test_quarantine_is_idempotent_and_released(self, fleet):
        service, _ = fleet
        metrics = MetricsRegistry()
        policy = QuarantinePolicy(service, metrics=metrics)
        assert not policy.any_quarantined
        assert policy.healthy_indices() == [0, 1]

        assert policy.quarantine(0, _cause())
        assert not policy.quarantine(0, _cause())  # already isolated
        assert policy.is_quarantined(0)
        assert policy.healthy_indices() == [1]
        snapshot = metrics.snapshot()
        assert snapshot["quarantine.quarantined"] == 1.0
        assert snapshot["quarantine.devices"] == 1.0

        assert policy.release(0)
        assert not policy.release(0)
        assert not policy.any_quarantined
        assert metrics.snapshot()["quarantine.devices"] == 0.0

    def test_bound_executor_breaker_force_opens(self, fleet):
        service, _ = fleet
        executor = ResilientServiceExecutor(service)
        policy = QuarantinePolicy(service).bind(executor)
        assert executor.quarantine is policy

        policy.quarantine(1, _cause())
        assert executor.breakers[1].is_open
        # Time passing does not heal a quarantine: the open is indefinite.
        service.clock.advance_us(10**9)
        with pytest.raises(CircuitOpenError):
            executor.breakers[1].allow(service.clock.now_us)
        policy.release(1)
        assert not executor.breakers[1].is_open

    def test_failover_target_skips_quarantined_devices(
        self, fleet, evalset
    ):
        service, sessions = fleet
        executor = ResilientServiceExecutor(service)
        policy = QuarantinePolicy(service).bind(executor)
        payload = _failover_bundle(service, sessions, evalset)
        assert executor._failover_target(0, payload) == 1
        policy.quarantine(1, _cause())
        assert executor._failover_target(0, payload) is None

    def test_quarantine_seals_a_flight_dump(self, fleet):
        service, sessions = fleet
        flight = FlightRecorder(16)
        policy = QuarantinePolicy(service, flight=flight)
        policy.quarantine(
            0, _cause(), session_id=sessions[0].session_id
        )
        assert len(flight.dumps) == 1
        assert flight.dumps[0].cause_type == "ReceiptMismatchError"


class TestHealing:
    def test_heal_reexecutes_on_a_healthy_device(self, fleet, evalset):
        service, sessions = fleet
        metrics = MetricsRegistry()
        policy = QuarantinePolicy(service, metrics=metrics)
        policy.quarantine(0, _cause())
        payload = _failover_bundle(service, sessions, evalset)

        target, sealed_out = policy.heal(payload, 0)
        assert target == 1
        report = decode_trace_report(payload.open_with(target, sealed_out))
        assert len(report.traces) == 1 and not report.aborted
        assert policy.heals == 1
        assert metrics.snapshot()["quarantine.healed"] == 1.0

    def test_heal_with_no_healthy_device_raises_typed(
        self, fleet, evalset
    ):
        service, sessions = fleet
        flight = FlightRecorder(16)
        policy = QuarantinePolicy(service, flight=flight)
        policy.quarantine(0, _cause())
        policy.quarantine(1, _cause())
        payload = _failover_bundle(service, sessions, evalset)
        with pytest.raises(QuarantinedDeviceError) as excinfo:
            policy.heal(payload, 0, session_id=sessions[0].session_id)
        assert excinfo.value.from_device == 0
        assert set(excinfo.value.quarantined) == {0, 1}
        assert any(
            dump.cause_type == "QuarantinedDeviceError"
            for dump in flight.dumps
        )

    def test_heal_skips_repair_when_sync_is_current(self, fleet, evalset):
        service, sessions = fleet
        # Sync one real block so blocks_synced > 0 and the root is fresh.
        evalset.node.add_block([])
        service.sync_new_blocks()
        policy = QuarantinePolicy(service)
        policy.quarantine(0, _cause())
        policy.heal(_failover_bundle(service, sessions, evalset), 0)
        assert policy.resyncs == 0


class TestDegradedGateway:
    def _gateway(self, service, policy, **config):
        return Gateway(
            ServiceExecutor(service),
            GatewayConfig(**config),
            metrics=MetricsRegistry(),
            quarantine=policy,
        )

    def test_bound_request_reroutes_off_a_quarantined_device(
        self, fleet, evalset
    ):
        service, sessions = fleet
        policy = QuarantinePolicy(service)
        policy.quarantine(0, _cause())
        gateway = self._gateway(service, policy)
        payload = _failover_bundle(service, sessions, evalset)
        request = gateway.submit(
            sessions[0].session_id, payload, device_index=0
        )
        gateway.drain()
        assert request.status == "completed"
        assert request.device_index == 1  # re-routed, not shed

    def test_single_session_payload_sheds_typed(self, fleet, evalset):
        service, sessions = fleet
        policy = QuarantinePolicy(service)
        policy.quarantine(0, _cause())
        gateway = self._gateway(service, policy)
        bundle = TransactionBundle(
            transactions=(evalset.transactions[0],),
            block_number=service.synced_height,
        )
        sealed = sessions[0].channel.seal(encode_bundle(bundle))
        request = gateway.submit(
            sessions[0].session_id, sealed, device_index=0
        )
        assert request.status == "rejected"
        assert request.reject_reason == RejectReason.QUARANTINED_CAPACITY

    def test_full_queue_under_quarantine_names_degraded_capacity(
        self, fleet, evalset
    ):
        service, sessions = fleet
        policy = QuarantinePolicy(service)
        policy.quarantine(0, _cause())
        gateway = self._gateway(
            service, policy,
            max_queue_depth=1, max_in_flight_per_session=16,
        )
        payload = _failover_bundle(service, sessions, evalset)
        # Device 1 has two HEVM slots: fill both, then the one queue
        # slot; the next submission sheds with the degraded reason.
        admitted = [
            gateway.submit(sessions[1].session_id, payload, device_index=1)
            for _ in range(3)
        ]
        shed = gateway.submit(
            sessions[1].session_id, payload, device_index=1
        )
        assert all(r.status != "rejected" for r in admitted)
        assert shed.reject_reason == RejectReason.QUARANTINED_CAPACITY
        assert RejectReason.QUARANTINED_CAPACITY in RejectReason.ALL

    def test_unquarantined_gateway_is_unchanged(self, fleet, evalset):
        service, sessions = fleet
        gateway = self._gateway(service, QuarantinePolicy(service))
        payload = _failover_bundle(service, sessions, evalset)
        request = gateway.submit(
            sessions[0].session_id, payload, device_index=0
        )
        gateway.drain()
        assert request.status == "completed"
        assert request.device_index == 0
