"""Receipts, bloom filters, and the node's log-filter RPC."""

import pytest

from repro.evm.frame import Log
from repro.node import EthereumNode
from repro.state import Account, Transaction, to_address
from repro.state.receipts import (
    Bloom,
    Receipt,
    block_bloom,
    find_logs,
    receipts_root,
)
from repro.trie import EMPTY_ROOT
from repro.workloads.contracts import erc20

ALICE = to_address(0xA1)
BOB = to_address(0xB2)
TOKEN = to_address(0x70CE)


def _log(address=TOKEN, topics=(0x1234,), data=b"d"):
    return Log(address, list(topics), data)


# -- bloom -------------------------------------------------------------------


def test_bloom_membership():
    bloom = Bloom()
    bloom.add(b"alpha")
    assert bloom.might_contain(b"alpha")
    assert not bloom.might_contain(b"beta")


def test_bloom_sets_exactly_three_bits_per_entry():
    bloom = Bloom()
    bloom.add(b"alpha")
    assert 1 <= bin(bloom.value).count("1") <= 3


def test_bloom_union():
    a, b = Bloom(), Bloom()
    a.add(b"x")
    b.add(b"y")
    union = a | b
    assert union.might_contain(b"x") and union.might_contain(b"y")


def test_bloom_covers_log_address_and_topics():
    bloom = Bloom.from_logs([_log(topics=(7, 9))])
    assert bloom.might_contain(TOKEN)
    assert bloom.might_contain((7).to_bytes(32, "big"))
    assert bloom.might_contain((9).to_bytes(32, "big"))
    assert not bloom.might_contain((8).to_bytes(32, "big"))


def test_bloom_serialization_size():
    bloom = Bloom()
    bloom.add(b"entry")
    assert len(bloom.to_bytes()) == 256


# -- receipts -----------------------------------------------------------------


def test_receipt_rlp_is_deterministic():
    receipt = Receipt(1, 21_000, [_log()])
    assert receipt.rlp_encode() == receipt.rlp_encode()


def test_receipts_root_empty():
    assert receipts_root([]) == EMPTY_ROOT


def test_receipts_root_order_sensitive():
    a = Receipt(1, 100, [])
    b = Receipt(0, 200, [])
    assert receipts_root([a, b]) != receipts_root([b, a])


def test_find_logs_filters():
    receipts = [
        Receipt(1, 100, [_log(topics=(1,))]),
        Receipt(1, 200, [_log(address=BOB, topics=(2,))]),
        Receipt(1, 300, [_log(topics=(1, 3))]),
    ]
    assert len(find_logs(receipts)) == 3
    assert len(find_logs(receipts, address=TOKEN)) == 2
    assert len(find_logs(receipts, topic=1)) == 2
    assert len(find_logs(receipts, address=BOB, topic=2)) == 1
    assert find_logs(receipts, topic=99) == []


def test_block_bloom_unions_receipts():
    receipts = [
        Receipt(1, 100, [_log(topics=(1,))]),
        Receipt(1, 200, [_log(address=BOB, topics=(2,))]),
    ]
    bloom = block_bloom(receipts)
    assert bloom.might_contain(TOKEN) and bloom.might_contain(BOB)


# -- node integration --------------------------------------------------------------


@pytest.fixture
def node():
    node = EthereumNode(
        genesis_accounts={
            ALICE: Account(balance=10**21),
            TOKEN: Account(code=erc20.erc20_runtime()),
        }
    )
    node.add_block([
        Transaction(sender=ALICE, to=TOKEN,
                    data=erc20.mint_calldata(ALICE, 1000)),
    ])
    node.add_block([
        Transaction(sender=ALICE, to=TOKEN,
                    data=erc20.transfer_calldata(BOB, 25)),
        Transaction(sender=ALICE, to=BOB, value=1),  # no logs
    ])
    return node


def test_node_builds_receipts(node):
    executed = node.block_at(2)
    assert len(executed.receipts) == 2
    assert executed.receipts[0].status == 1
    # Cumulative gas is monotone.
    assert executed.receipts[1].cumulative_gas > executed.receipts[0].cumulative_gas
    assert executed.receipts_root() != EMPTY_ROOT


def test_node_get_logs_by_topic(node):
    matches = node.get_logs(0, node.height, topic=erc20.TRANSFER_EVENT_SIG)
    assert len(matches) == 1
    block_number, tx_index, log = matches[0]
    assert (block_number, tx_index) == (2, 0)
    assert log.address == TOKEN
    # Topics: [sig, from, to].
    assert log.topics[1] == int.from_bytes(ALICE, "big")
    assert log.topics[2] == int.from_bytes(BOB, "big")


def test_node_get_logs_by_address(node):
    assert len(node.get_logs(0, node.height, address=TOKEN)) == 1
    assert node.get_logs(0, node.height, address=to_address(0x9999)) == []


def test_node_get_logs_range_bounds(node):
    assert node.get_logs(0, 1, topic=erc20.TRANSFER_EVENT_SIG) == []
    assert len(node.get_logs(2, 99, topic=erc20.TRANSFER_EVENT_SIG)) == 1
