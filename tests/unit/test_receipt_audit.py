"""Unit tests for repro.hypervisor.receipts: signing, auditing, cost."""

import pytest

from repro.crypto.ecc import PrivateKey, Signature
from repro.hypervisor.receipts import (
    RECEIPT_DOMAIN,
    AuditReport,
    ReceiptAuditor,
    ReceiptMismatchError,
    ReceiptMissingError,
    make_receipt,
    receipt_signing_hash,
)
from repro.telemetry.unified import (
    StepTraceRecord,
    UnifiedStepTrace,
    group_for_op,
    reconcile_step_traces,
    TraceReconciliationError,
)

pytestmark = pytest.mark.byzantine

_OPS = ("PUSH1", "ADD", "MSTORE", "SLOAD", "JUMPDEST")


def _trace(length: int, gas0: int = 100_000) -> UnifiedStepTrace:
    return UnifiedStepTrace(records=tuple(
        StepTraceRecord(
            index=i, depth=1, pc=2 * i, op=_OPS[i % len(_OPS)],
            group=group_for_op(_OPS[i % len(_OPS)]), gas=gas0 - 3 * i,
        )
        for i in range(length)
    ))


@pytest.fixture
def signing_key():
    return PrivateKey(0xC0FFEE)


@pytest.fixture
def verify_key(signing_key):
    return signing_key.public_key()


BUNDLE_ID = b"\xabcd-bundle-0001"


class TestSigning:
    def test_signing_hash_is_domain_separated(self):
        digest = receipt_signing_hash(BUNDLE_ID, ("ab" * 32,))
        assert len(digest) == 32
        assert RECEIPT_DOMAIN == b"hardtape.receipt.v1"
        # Sensitive to bundle id, commitment bytes, and count.
        assert digest != receipt_signing_hash(b"x" * 16, ("ab" * 32,))
        assert digest != receipt_signing_hash(BUNDLE_ID, ("cd" * 32,))
        assert digest != receipt_signing_hash(
            BUNDLE_ID, ("ab" * 32, "ab" * 32)
        )

    def test_make_receipt_signs_the_commitments(
        self, signing_key, verify_key
    ):
        traces = [_trace(5), _trace(3)]
        receipt = make_receipt(BUNDLE_ID, traces, signing_key)
        assert receipt.commitments == tuple(
            trace.commitment() for trace in traces
        )
        receipt.verify(verify_key)  # does not raise

    def test_signing_is_deterministic(self, signing_key):
        a = make_receipt(BUNDLE_ID, [_trace(4)], signing_key)
        b = make_receipt(BUNDLE_ID, [_trace(4)], signing_key)
        assert a == b


class TestAuditor:
    def _audit(self, auditor, receipt, traces, verify_key, opening=None):
        return auditor.audit(
            BUNDLE_ID, receipt, traces,
            verify_key=verify_key, opening=opening,
        )

    def test_clean_receipt_passes_with_openings(
        self, signing_key, verify_key
    ):
        traces = [_trace(7)]
        receipt = make_receipt(BUNDLE_ID, traces, signing_key)
        auditor = ReceiptAuditor(samples_per_tx=2, seed=3)
        report = self._audit(
            auditor, receipt, traces, verify_key,
            opening=lambda t, s: (
                traces[t].records[s], traces[t].open_step(s)
            ),
        )
        assert isinstance(report, AuditReport)
        assert report.steps_total == 7
        assert report.steps_sampled == 2
        assert report.signature_checks == 1
        assert report.hash_ops > 0
        assert (auditor.audits_passed, auditor.audits_failed) == (1, 0)

    def test_missing_receipt(self, verify_key):
        auditor = ReceiptAuditor()
        with pytest.raises(ReceiptMissingError) as excinfo:
            self._audit(auditor, None, [_trace(3)], verify_key)
        assert excinfo.value.bundle_id == BUNDLE_ID
        assert auditor.audits_failed == 1

    def test_wrong_bundle_id(self, signing_key, verify_key):
        receipt = make_receipt(b"other-bundle-002", [_trace(3)], signing_key)
        with pytest.raises(ReceiptMismatchError) as excinfo:
            self._audit(ReceiptAuditor(), receipt, [_trace(3)], verify_key)
        assert excinfo.value.field == "bundle_id"

    def test_forged_signature(self, signing_key, verify_key):
        from dataclasses import replace

        receipt = make_receipt(BUNDLE_ID, [_trace(3)], signing_key)
        forged = replace(
            receipt,
            signature=Signature(
                receipt.signature.r ^ 1, receipt.signature.s
            ),
        )
        with pytest.raises(ReceiptMismatchError) as excinfo:
            self._audit(ReceiptAuditor(), forged, [_trace(3)], verify_key)
        assert excinfo.value.field == "signature"

    def test_count_mismatch(self, signing_key, verify_key):
        receipt = make_receipt(BUNDLE_ID, [_trace(3)], signing_key)
        with pytest.raises(ReceiptMismatchError) as excinfo:
            self._audit(
                ReceiptAuditor(), receipt, [_trace(3), _trace(2)], verify_key
            )
        assert excinfo.value.field == "count"

    def test_tampered_trace_fails_the_commitment(
        self, signing_key, verify_key
    ):
        # The device signs a self-consistent but wrong trace: one step's
        # gas is off by one versus ground truth.
        lied = _trace(6, gas0=100_001)
        receipt = make_receipt(BUNDLE_ID, [lied], signing_key)
        with pytest.raises(ReceiptMismatchError) as excinfo:
            self._audit(ReceiptAuditor(), receipt, [_trace(6)], verify_key)
        assert excinfo.value.field == "commitment"
        assert excinfo.value.tx_index == 0

    def test_opening_that_disagrees_with_ground_truth(
        self, signing_key, verify_key
    ):
        traces = [_trace(6)]
        receipt = make_receipt(BUNDLE_ID, traces, signing_key)
        wrong = _trace(6, gas0=99_999)

        with pytest.raises(ReceiptMismatchError) as excinfo:
            self._audit(
                ReceiptAuditor(samples_per_tx=1, seed=0), receipt, traces,
                verify_key,
                opening=lambda t, s: (
                    wrong.records[s], wrong.open_step(s)
                ),
            )
        assert excinfo.value.field == "step"

    def test_opening_proving_a_different_leaf(
        self, signing_key, verify_key
    ):
        traces = [_trace(6)]
        receipt = make_receipt(BUNDLE_ID, traces, signing_key)

        # Honest record, but the proof opens a *different* index.
        def shifted(t, s):
            other = (s + 1) % 6
            return traces[t].records[s], traces[t].open_step(other)

        with pytest.raises(ReceiptMismatchError) as excinfo:
            self._audit(
                ReceiptAuditor(samples_per_tx=1, seed=0), receipt, traces,
                verify_key, opening=shifted,
            )
        assert excinfo.value.field == "proof"

    def test_sampling_is_seeded(self, signing_key, verify_key):
        traces = [_trace(32)]
        receipt = make_receipt(BUNDLE_ID, traces, signing_key)

        def sampled(seed):
            opened = []
            ReceiptAuditor(samples_per_tx=4, seed=seed).audit(
                BUNDLE_ID, receipt, traces, verify_key=verify_key,
                opening=lambda t, s: (
                    opened.append(s) or traces[t].records[s],
                    traces[t].open_step(s),
                ),
            )
            return opened

        assert sampled(7) == sampled(7)
        assert sampled(7) != sampled(8)

    def test_spot_check_cost_is_logarithmic(self):
        auditor = ReceiptAuditor(seed=1)
        costs = {}
        for length in (64, 4096):
            trace = _trace(length)
            checked, hash_ops = auditor.spot_check(
                trace, trace.commitment(), samples=8
            )
            assert checked == 8
            costs[length] = hash_ops
        # 64x more steps must cost far less than 64x more hashing.
        assert costs[4096] < 4 * costs[64]

    def test_spot_check_rejects_a_wrong_root(self):
        trace = _trace(16)
        with pytest.raises(ReceiptMismatchError):
            ReceiptAuditor(seed=1).spot_check(trace, "00" * 32, samples=1)

    def test_empty_trace_spot_check_is_free(self):
        trace = _trace(0)
        assert ReceiptAuditor().spot_check(
            trace, trace.commitment(), samples=4
        ) == (0, 0)


class TestReconcileCommitmentBranch:
    def test_lying_commitment_with_equal_records_is_caught(self):
        # The belt-and-braces branch: records compare equal step by step
        # but a subclass lies about the root it derived from them.
        class _Lying(UnifiedStepTrace):
            def commitment(self) -> str:
                return "0" * 64

        honest = _trace(4)
        lying = _Lying(records=honest.records)
        with pytest.raises(TraceReconciliationError) as excinfo:
            reconcile_step_traces(honest, lying)
        assert excinfo.value.field == "commitment"
