"""The simulated Ethereum full node: chain growth, traces, proofs."""

import pytest

from repro.node import EthereumNode
from repro.state import Account, Transaction, WorldState, to_address
from repro.workloads.asm import assemble, push

ALICE = to_address(0xA1)
CONTRACT = to_address(0xCC)


@pytest.fixture
def node():
    counter = assemble(
        push(0) + ["SLOAD"] + push(1) + ["ADD", "DUP1"] + push(0) + ["SSTORE"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    return EthereumNode(
        genesis_accounts={
            ALICE: Account(balance=10**21),
            CONTRACT: Account(code=counter),
        }
    )


def test_genesis_block(node):
    assert node.height == 0
    genesis = node.latest
    assert genesis.block.header.parent_hash == b"\x00" * 32
    assert genesis.post_state.accounts[ALICE].balance == 10**21


def test_add_block_advances_chain(node):
    executed = node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    assert node.height == 1
    assert executed.block.header.parent_hash == node.block_at(0).block.block_hash()
    assert executed.results[0].success
    assert executed.post_state.accounts[CONTRACT].storage[0] == 1


def test_blocks_chain_state(node):
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    assert node.state_at(2).accounts[CONTRACT].storage[0] == 2
    assert node.state_at(1).accounts[CONTRACT].storage[0] == 1
    assert 0 not in node.state_at(0).accounts[CONTRACT].storage


def test_state_roots_differ_per_block(node):
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    roots = {node.block_at(i).block.header.state_root for i in range(3)}
    assert len(roots) == 3


def test_touched_accounts_tracked(node):
    executed = node.add_block([Transaction(sender=ALICE, to=CONTRACT, value=5)])
    assert ALICE in executed.touched_accounts
    assert CONTRACT in executed.touched_accounts


def test_debug_trace_transaction(node):
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    logs, result = node.debug_trace_transaction(1, 0)
    assert result.success
    ops = [entry.op for entry in logs]
    assert ops[0] == "PUSH0"
    assert "SLOAD" in ops and "SSTORE" in ops and "RETURN" in ops


def test_debug_trace_uses_pre_state_of_tx(node):
    # Two identical txs in one block: the second must see storage == 1.
    node.add_block(
        [Transaction(sender=ALICE, to=CONTRACT), Transaction(sender=ALICE, to=CONTRACT)]
    )
    _, result0 = node.debug_trace_transaction(1, 0)
    _, result1 = node.debug_trace_transaction(1, 1)
    assert int.from_bytes(result0.return_data, "big") == 1
    assert int.from_bytes(result1.return_data, "big") == 2


def test_debug_trace_is_replayable(node):
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    logs_a, _ = node.debug_trace_transaction(1, 0)
    logs_b, _ = node.debug_trace_transaction(1, 0)
    assert [l.to_dict() for l in logs_a] == [l.to_dict() for l in logs_b]


def test_debug_trace_bad_index(node):
    node.add_block([])
    with pytest.raises(KeyError):
        node.debug_trace_transaction(1, 0)
    with pytest.raises(KeyError):
        node.debug_trace_transaction(99, 0)


def test_get_proof_verifies(node):
    node.add_block([Transaction(sender=ALICE, to=CONTRACT)])
    update = node.get_proof(CONTRACT, [0], 1)
    root = node.block_at(1).block.header.state_root
    proven = WorldState.verify_account_proof(root, CONTRACT, update.account_proof)
    assert proven is not None
    storage_value = WorldState.verify_storage_proof(
        proven.storage_root, 0, update.storage_proofs[0]
    )
    assert storage_value == 1


def test_sync_updates_cover_touched_accounts(node):
    node.add_block([Transaction(sender=ALICE, to=CONTRACT, value=3)])
    updates = node.sync_updates_for(1)
    addresses = {update.address for update in updates}
    assert {ALICE, CONTRACT} <= addresses
    root = node.block_at(1).block.header.state_root
    for update in updates:
        proven = WorldState.verify_account_proof(
            root, update.address, update.account_proof
        )
        if proven is not None:
            assert proven.meta.balance == update.account.balance


def test_block_hash_lookup_in_chain_context(node):
    node.add_block([])
    context = node.chain_context(node.latest.block.header)
    assert context.block_hash(0) == node.block_at(0).block.block_hash()
