"""Unit tests for repro.telemetry.unified: schema, commitment, reconciliation."""

import pytest

from repro.evm.tracer import EventCounts, StructLog
from repro.telemetry.tracer import Tracer
from repro.telemetry.unified import (
    StepTraceRecord,
    TraceReconciliationError,
    UnifiedStepTrace,
    counts_from_events,
    counts_from_span,
    counts_from_trace,
    from_struct_logs,
    group_for_op,
    reconcile_counts,
    reconcile_step_traces,
)


def _logs():
    return [
        StructLog(pc=0, op="PUSH1", gas=100_000, depth=1, stack=[]),
        StructLog(pc=2, op="PUSH1", gas=99_997, depth=1, stack=[0x60]),
        StructLog(pc=4, op="ADD", gas=99_994, depth=1, stack=[0x60, 0x2]),
        StructLog(pc=5, op="STOP", gas=99_991, depth=1, stack=[0x62]),
    ]


class TestSchema:
    def test_from_struct_logs_lifts_every_field(self):
        trace = from_struct_logs(_logs())
        assert trace.instructions == 4
        first = trace.records[0]
        assert isinstance(first, StepTraceRecord)
        assert (first.index, first.pc, first.op, first.depth) == (0, 0, "PUSH1", 1)
        assert first.gas == 100_000
        assert first.group == "stack"
        assert trace.records[2].group == "arithmetic"

    def test_group_for_op_falls_back_to_invalid(self):
        assert group_for_op("PUSH1") == "stack"
        assert group_for_op("INVALID(0xfe)") == "invalid"
        assert group_for_op("NOT-AN-OP") == "invalid"

    def test_group_counts(self):
        trace = from_struct_logs(_logs())
        assert trace.group_counts() == {"arithmetic": 1, "halt": 1, "stack": 2}

    def test_record_to_dict_is_json_ready(self):
        record = from_struct_logs(_logs()).records[0]
        d = record.to_dict()
        assert d["op"] == "PUSH1" and d["group"] == "stack"


class TestCommitment:
    def test_commitment_is_stable_and_order_sensitive(self):
        a = from_struct_logs(_logs())
        b = from_struct_logs(_logs())
        assert a.commitment() == b.commitment()
        flipped = from_struct_logs(list(reversed(_logs())))
        assert flipped.commitment() != a.commitment()

    def test_empty_trace_commits(self):
        empty = UnifiedStepTrace(records=())
        assert empty.commitment() == UnifiedStepTrace(records=()).commitment()
        assert empty.commitment() != from_struct_logs(_logs()).commitment()

    def test_odd_leaf_count_commits(self):
        # 3 leaves exercises the odd-node promotion path.
        trace = from_struct_logs(_logs()[:3])
        assert len(trace.commitment()) == 64

    def test_gas_perturbation_changes_commitment(self):
        logs = _logs()
        logs[1] = StructLog(pc=2, op="PUSH1", gas=99_996, depth=1, stack=[])
        assert (from_struct_logs(logs).commitment()
                != from_struct_logs(_logs()).commitment())


class TestReconcileSteps:
    def test_identical_traces_reconcile_to_shared_root(self):
        a, b = from_struct_logs(_logs()), from_struct_logs(_logs())
        root = reconcile_step_traces(a, b)
        assert root == a.commitment() == b.commitment()

    def test_length_mismatch_is_typed(self):
        a = from_struct_logs(_logs())
        b = from_struct_logs(_logs()[:3])
        with pytest.raises(TraceReconciliationError) as err:
            reconcile_step_traces(a, b)
        assert err.value.field == "instructions"
        assert err.value.expected == 4 and err.value.actual == 3

    def test_field_divergence_names_the_step(self):
        logs = _logs()
        logs[2] = StructLog(pc=4, op="MUL", gas=99_994, depth=1, stack=[])
        with pytest.raises(TraceReconciliationError) as err:
            reconcile_step_traces(from_struct_logs(_logs()),
                                  from_struct_logs(logs))
        assert err.value.index == 2
        assert err.value.field == "op"
        assert "node" in str(err.value) and "hevm" in str(err.value)


class TestReconcileCounts:
    def test_events_and_trace_agree(self):
        trace = from_struct_logs(_logs())
        counts = EventCounts(instructions=4,
                             by_group={"stack": 2, "arithmetic": 1, "halt": 1})
        reconcile_counts(counts_from_trace(trace), counts_from_events(counts))

    def test_span_counts_round_trip(self):
        tracer = Tracer(clock=lambda: 0.0)
        span = tracer.record(
            "hevm.tx", layer="hevm", duration_us=1.0,
            instructions=4,
            opcode_groups={"stack": 2, "arithmetic": 1, "halt": 1},
        )
        assert counts_from_span(span) == counts_from_trace(
            from_struct_logs(_logs())
        )

    def test_span_without_counts_is_typed(self):
        tracer = Tracer(clock=lambda: 0.0)
        bare = tracer.record("hevm.tx", layer="hevm", duration_us=1.0)
        with pytest.raises(TraceReconciliationError):
            counts_from_span(bare)

    def test_group_divergence_names_the_group(self):
        a = {"instructions": 4, "by_group": {"stack": 2, "halt": 2}}
        b = {"instructions": 4, "by_group": {"stack": 3, "halt": 1}}
        with pytest.raises(TraceReconciliationError) as err:
            reconcile_counts(a, b)
        # Sorted group order: "halt" is the first divergence reported.
        assert err.value.field == "by_group.halt"
        assert (err.value.expected, err.value.actual) == (2, 1)

    def test_missing_group_diverges(self):
        a = {"instructions": 2, "by_group": {"stack": 2}}
        b = {"instructions": 2, "by_group": {"stack": 1, "halt": 1}}
        with pytest.raises(TraceReconciliationError):
            reconcile_counts(a, b)
