"""Unit tests for the shard-aware session router (repro.serving.router)."""

import pytest

from repro.serving import (
    Gateway,
    GatewayConfig,
    MetricsRegistry,
    RequestStatus,
    ShardSessionRouter,
)

pytestmark = [pytest.mark.sharding, pytest.mark.serving]


class StubExecutor:
    """Fixed-duration executor (the serving test-suite idiom)."""

    def __init__(self, slot_count=2, service_us=100.0):
        self.slots = [None] * slot_count
        self.service_us = service_us
        self.executed = []

    def execute(self, request, start_us):
        self.executed.append(request.request_id)
        return self.service_us, ("ran", request.request_id)


def _router(shard_count=4, metrics=None):
    gateways = {
        sid: Gateway(StubExecutor(), GatewayConfig(max_queue_depth=64))
        for sid in range(shard_count)
    }
    return ShardSessionRouter(gateways, metrics=metrics), gateways


def _sessions(n):
    return [b"session-%04d" % i for i in range(n)]


def test_sessions_are_sticky_and_deterministic():
    router_a, _ = _router()
    router_b, _ = _router()
    for session in _sessions(64):
        shard = router_a.shard_for_session(session)
        assert shard == router_a.shard_for_session(session)  # sticky
        assert shard == router_b.shard_for_session(session)  # seeded
    placements = {router_a.shard_for_session(s) for s in _sessions(64)}
    assert placements == {0, 1, 2, 3}  # every shard gets tenants


def test_session_and_page_rings_are_independent_domains():
    from repro.sharding.ring import ConsistentHashRing

    router, _ = _router()
    page_ring = ConsistentHashRing(range(4))
    placements = [
        (router.shard_for_session(s), page_ring.shard_for(s))
        for s in _sessions(64)
    ]
    assert any(a != b for a, b in placements)  # distinct hash domains


def test_submit_routes_to_owning_gateway_and_counts():
    registry = MetricsRegistry()
    router, gateways = _router(metrics=registry)
    requests = [router.submit(s, payload=i) for i, s in enumerate(_sessions(12))]
    done = router.drain()
    assert len(done) == len(requests)
    assert all(r.status is RequestStatus.COMPLETED for r in done)
    executed = {
        sid: len(gateway.executor.executed) for sid, gateway in gateways.items()
    }
    counts = router.session_counts()
    assert executed == counts  # each request ran on its session's shard
    snapshot = registry.snapshot()
    for sid, count in counts.items():
        if count:
            assert snapshot[f"router.submitted{{shard={sid}}}"] == count


def test_fleet_views_merge_in_shard_order():
    router, gateways = _router(2)
    for session in _sessions(6):
        router.submit(session, payload=0)
    depths = router.queue_depths()
    assert set(depths) == {0, 1}
    assert router.in_flight == sum(
        gateway.in_flight for gateway in gateways.values()
    )
    router.drain()
    assert router.in_flight == 0
    assert router.now_us == max(g.now_us for g in gateways.values())


def test_observe_queue_depths_publishes_labelled_gauges():
    registry = MetricsRegistry()
    router, _ = _router(2, metrics=registry)
    router.observe_queue_depths()
    snapshot = registry.snapshot()
    assert "router.queue_depth{shard=0}" in snapshot
    assert "router.queue_depth{shard=1}" in snapshot


def test_router_requires_gateways():
    with pytest.raises(ValueError):
        ShardSessionRouter({})
