"""The async serving plane: reactor, session state machine, tier."""

import pytest

from repro.hardware.timing import CostModel
from repro.serving import (
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    ShardSessionRouter,
    synthetic_profiles,
)
from repro.async_serving import (
    AsyncServingConfig,
    AsyncServingTier,
    AsyncioReactorAdapter,
    AsyncSession,
    InvalidSessionTransition,
    ModelHandshakeEngine,
    SessionCapacityError,
    SessionClosedError,
    SessionState,
    VirtualReactor,
)

pytestmark = pytest.mark.serving

COST = CostModel()
FULL_US = COST.attestation_us + COST.dhke_us


# ---------------------------------------------------------------------
# VirtualReactor
# ---------------------------------------------------------------------

def test_reactor_fires_in_time_then_scheduling_order():
    reactor = VirtualReactor()
    fired = []
    reactor.call_at(20.0, fired.append, "late")
    reactor.call_at(10.0, fired.append, "early-first")
    reactor.call_at(10.0, fired.append, "early-second")
    assert reactor.run_until_idle() == 3
    assert fired == ["early-first", "early-second", "late"]
    assert reactor.now_us == 20.0


def test_reactor_run_until_lands_on_deadline():
    reactor = VirtualReactor()
    fired = []
    reactor.call_at(5.0, fired.append, "a")
    reactor.call_at(15.0, fired.append, "b")
    assert reactor.run_until(10.0) == 1
    assert fired == ["a"]
    assert reactor.now_us == 10.0
    assert reactor.pending == 1


def test_reactor_rejects_scheduling_in_the_past():
    reactor = VirtualReactor(start_us=100.0)
    with pytest.raises(ValueError):
        reactor.call_at(99.0, lambda: None)
    with pytest.raises(ValueError):
        reactor.call_later(-1.0, lambda: None)


def test_reactor_cancel_is_idempotent_and_skipped():
    reactor = VirtualReactor()
    fired = []
    handle = reactor.call_at(5.0, fired.append, "cancelled")
    reactor.call_at(6.0, fired.append, "kept")
    handle.cancel()
    handle.cancel()
    assert reactor.pending == 1
    assert reactor.run_until_idle() == 1
    assert fired == ["kept"]


def test_reactor_callbacks_can_schedule_same_instant():
    reactor = VirtualReactor()
    fired = []

    def chain():
        fired.append("first")
        reactor.call_at(reactor.now_us, fired.append, "second")

    reactor.call_at(3.0, chain)
    reactor.run_until_idle()
    assert fired == ["first", "second"]


def test_asyncio_adapter_runs_and_cancels():
    # A tiny time_scale compresses virtual microseconds to ~nothing of
    # wall clock, keeping this test instant.
    adapter = AsyncioReactorAdapter(time_scale=1e-9)
    try:
        fired = []
        adapter.call_later(1000.0, fired.append, "ran")
        cancelled = adapter.call_later(2000.0, fired.append, "never")
        cancelled.cancel()
        adapter.run_until_idle()
        assert fired == ["ran"]
        assert adapter.pending == 0
    finally:
        adapter.close()


# ---------------------------------------------------------------------
# Session state machine
# ---------------------------------------------------------------------

def test_session_lifecycle_walk():
    session = AsyncSession(routing_id=b"s1", opened_at_us=0.0)
    for dst in (SessionState.ACTIVE, SessionState.SUSPENDED,
                SessionState.RESUMED, SessionState.ACTIVE,
                SessionState.CLOSED):
        session.transition(dst, 1.0)
    assert session.state == SessionState.CLOSED
    assert not session.is_live


def test_stale_fallback_edge_is_legal():
    session = AsyncSession(routing_id=b"s1", opened_at_us=0.0)
    session.transition(SessionState.ACTIVE, 1.0)
    session.transition(SessionState.SUSPENDED, 2.0)
    session.transition(SessionState.HANDSHAKING, 3.0)  # stale-ticket path
    session.transition(SessionState.ACTIVE, 4.0)
    assert session.state == SessionState.ACTIVE


def test_illegal_transition_is_typed():
    session = AsyncSession(routing_id=b"s1", opened_at_us=0.0)
    with pytest.raises(InvalidSessionTransition) as excinfo:
        session.transition(SessionState.SUSPENDED, 1.0)
    assert excinfo.value.src == SessionState.HANDSHAKING
    assert excinfo.value.dst == SessionState.SUSPENDED
    session.transition(SessionState.CLOSED, 1.0)
    with pytest.raises(InvalidSessionTransition):
        session.transition(SessionState.ACTIVE, 2.0)


# ---------------------------------------------------------------------
# Tier over a model gateway
# ---------------------------------------------------------------------

def _tier(max_sessions=64, suspend_after_us=1000.0, cores=4):
    gateway = Gateway(
        FleetModelExecutor(cores, COST),
        GatewayConfig(max_queue_depth=256, max_in_flight_per_session=4),
    )
    tier = AsyncServingTier(
        VirtualReactor(),
        gateway,
        ModelHandshakeEngine(COST, seed=7),
        config=AsyncServingConfig(
            max_sessions=max_sessions, suspend_after_us=suspend_after_us
        ),
    )
    return tier, synthetic_profiles(COST, "mixed", count=4, seed=7)


def test_tier_capacity_is_typed_and_counted():
    tier, _ = _tier(max_sessions=2)
    tier.open_session(b"a")
    tier.open_session(b"b")
    with pytest.raises(SessionCapacityError):
        tier.open_session(b"c")
    assert tier.metrics.snapshot()["tier.sessions_rejected"] == 1
    with pytest.raises(ValueError):
        tier.open_session(b"a")  # duplicate live session


def test_tier_submit_to_unknown_session_is_typed():
    tier, profiles = _tier()
    with pytest.raises(SessionClosedError):
        tier.submit(b"ghost", profiles[0])


def test_tier_backlogs_during_handshake_then_flushes():
    tier, profiles = _tier(suspend_after_us=None)
    session = tier.open_session(b"a")
    tier.submit(b"a", profiles[0])
    tier.submit(b"a", profiles[1])
    assert session.state == SessionState.HANDSHAKING
    assert len(session.backlog) == 2
    tier.run()
    assert session.state == SessionState.ACTIVE
    assert not session.backlog
    report = tier.load_report(0.0)
    assert report.completed == 2 and report.failed == 0
    snap = tier.metrics.snapshot()
    assert snap["tier.full_handshakes"] == 1
    assert snap["tier.handshake_full_us.p50"] == FULL_US


def test_tier_suspends_idle_sessions_and_resumes_on_traffic():
    tier, profiles = _tier(suspend_after_us=1000.0)
    session = tier.open_session(b"a")
    tier.submit(b"a", profiles[0])
    tier.run()
    assert session.state == SessionState.SUSPENDED
    assert session.parked is not None  # a real sealed ticket

    tier.submit(b"a", profiles[1])    # wakes it: one-round-trip resume
    assert session.state == SessionState.RESUMED
    tier.run()
    assert session.resumes == 1
    snap = tier.metrics.snapshot()
    assert snap["tier.resumed"] == 1
    assert snap["tier.suspended"] >= 1
    assert snap["tier.handshake_resumed_us.p50"] == COST.ticket_resume_us
    assert COST.ticket_resume_us <= 0.05 * FULL_US
    assert tier.load_report(0.0).completed == 2


def test_tier_epoch_bump_falls_back_typed_not_retried():
    tier, profiles = _tier(suspend_after_us=1000.0)
    engine = tier.engine
    session = tier.open_session(b"a")
    tier.submit(b"a", profiles[0])
    tier.run()
    assert session.state == SessionState.SUSPENDED

    engine.advance_epoch()            # model hypervisor restart
    tier.submit(b"a", profiles[1])
    # Stale ticket: back to HANDSHAKING, full handshake in flight.
    assert session.state == SessionState.HANDSHAKING
    assert session.stale_fallbacks == 1
    tier.run()
    snap = tier.metrics.snapshot()
    assert snap["tier.stale_tickets"] == 1
    # Never satisfied by the dead ticket: no resume was ever recorded.
    assert snap.get("tier.resumed", 0) == 0
    assert snap["tier.full_handshakes"] == 2
    assert tier.load_report(0.0).completed == 2


def test_tier_close_releases_capacity():
    tier, _ = _tier(max_sessions=1)
    tier.open_session(b"a")
    tier.run()
    tier.close_session(b"a")
    assert tier.live_sessions == 0
    tier.open_session(b"b")           # slot is free again
    assert tier.live_sessions == 1


def test_tier_seeded_run_is_deterministic():
    def run_once():
        tier, profiles = _tier(suspend_after_us=500.0)
        for i in range(8):
            rid = b"s%02d" % i
            tier.reactor.call_at(i * 10.0, tier.open_session, rid)
            tier.reactor.call_at(i * 10.0 + 2000.0, tier.submit, rid,
                                 profiles[i % len(profiles)])
        tier.run()
        return tier.metrics.snapshot(), tier.load_report(0.0).completed

    assert run_once() == run_once()


def test_tier_derives_shard_affinity_from_router():
    gateways = {
        shard: Gateway(FleetModelExecutor(2, COST), GatewayConfig())
        for shard in range(4)
    }
    router = ShardSessionRouter(gateways)
    tier = AsyncServingTier(
        VirtualReactor(), router, ModelHandshakeEngine(COST, seed=7),
    )
    session = tier.open_session(b"pinned")
    assert session.shard_affinity == router.shard_for_session(b"pinned")
    assert session.ring_digest == router.ring.table_digest()
