"""JournaledState: overlay reads, snapshot/revert, access sets."""

import pytest

from repro.state import DictBackend, JournaledState, to_address

A = to_address(1)
B = to_address(2)


@pytest.fixture
def journal():
    backend = DictBackend()
    backend.ensure(A).balance = 1000
    backend.ensure(A).nonce = 3
    backend.ensure(A).storage[7] = 70
    backend.ensure(B).code = b"\x60\x01"
    return JournaledState(backend)


def test_reads_fall_through_to_backend(journal):
    assert journal.get_balance(A) == 1000
    assert journal.get_nonce(A) == 3
    assert journal.get_storage(A, 7) == 70
    assert journal.get_code(B) == b"\x60\x01"
    assert journal.get_code_size(B) == 2


def test_writes_shadow_backend(journal):
    journal.set_balance(A, 500)
    journal.set_storage(A, 7, 71)
    assert journal.get_balance(A) == 500
    assert journal.get_storage(A, 7) == 71


def test_add_sub_balance(journal):
    journal.add_balance(A, 10)
    assert journal.get_balance(A) == 1010
    journal.sub_balance(A, 1010)
    assert journal.get_balance(A) == 0
    with pytest.raises(ValueError):
        journal.sub_balance(A, 1)


def test_snapshot_revert_balances(journal):
    snap = journal.snapshot()
    journal.set_balance(A, 0)
    journal.set_nonce(A, 99)
    journal.revert(snap)
    assert journal.get_balance(A) == 1000
    assert journal.get_nonce(A) == 3


def test_nested_snapshots(journal):
    outer = journal.snapshot()
    journal.set_storage(A, 1, 11)
    inner = journal.snapshot()
    journal.set_storage(A, 1, 22)
    journal.revert(inner)
    assert journal.get_storage(A, 1) == 11
    journal.revert(outer)
    assert journal.get_storage(A, 1) == 0


def test_revert_restores_deleted_flag(journal):
    snap = journal.snapshot()
    journal.delete_account(A)
    assert not journal.account_exists(A)
    journal.revert(snap)
    assert journal.account_exists(A)
    assert journal.get_balance(A) == 1000


def test_original_storage_tracks_pre_tx_value(journal):
    journal.set_storage(A, 7, 71)
    journal.set_storage(A, 7, 72)
    assert journal.get_original_storage(A, 7) == 70
    assert journal.get_storage(A, 7) == 72


def test_refund_journaled(journal):
    snap = journal.snapshot()
    journal.add_refund(4800)
    assert journal.refund == 4800
    journal.sub_refund(800)
    assert journal.refund == 4000
    journal.revert(snap)
    assert journal.refund == 0


def test_warm_sets_journaled(journal):
    snap = journal.snapshot()
    assert journal.warm_address(A) is False  # was cold
    assert journal.warm_address(A) is True
    assert journal.warm_slot(A, 7) is False
    assert journal.warm_slot(A, 7) is True
    journal.revert(snap)
    assert journal.warm_address(A) is False
    assert journal.warm_slot(A, 7) is False


def test_begin_transaction_resets_scratch_keeps_writes(journal):
    journal.set_storage(A, 7, 71)
    journal.warm_address(A)
    journal.add_refund(100)
    journal.begin_transaction()
    assert journal.get_storage(A, 7) == 71  # bundle-visible write persists
    assert journal.refund == 0
    assert not journal.is_warm_address(A)
    assert journal.get_original_storage(A, 7) == 70  # re-read from backend


def test_created_account_storage_starts_empty(journal):
    journal.set_code(B, b"\x60\x02")
    assert journal.get_storage(B, 0) == 0


def test_code_hash_semantics(journal):
    from repro.crypto.keccak import keccak256
    from repro.state import EMPTY_CODE_HASH

    assert journal.get_code_hash(B) == keccak256(b"\x60\x01")
    assert journal.get_code_hash(A) == EMPTY_CODE_HASH  # exists, no code
    missing = to_address(0xDEAD)
    assert journal.get_code_hash(missing) == b"\x00" * 32


def test_write_set_contents(journal):
    journal.set_balance(B, 5)
    journal.set_storage(A, 9, 90)
    journal.delete_account(B)
    ws = journal.write_set()
    assert ws.balances[B] == 5
    assert ws.storage[(A, 9)] == 90
    assert B in ws.deleted


def test_meta_reflects_overlay(journal):
    journal.set_balance(A, 777)
    meta = journal.meta(A)
    assert meta.balance == 777 and meta.nonce == 3
