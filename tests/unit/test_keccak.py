"""Keccak-256 against published Ethereum test vectors."""

import hashlib

import pytest

from repro.crypto.keccak import Keccak256, keccak256


KNOWN_VECTORS = [
    (b"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"),
    (b"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"),
    (
        b"testing",
        "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02",
    ),
    (
        b"The quick brown fox jumps over the lazy dog",
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
    ),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message, expected):
    assert keccak256(message).hex() == expected


def test_differs_from_nist_sha3():
    # Ethereum uses the pre-NIST padding; the digests must differ.
    assert keccak256(b"abc") != hashlib.sha3_256(b"abc").digest()


def test_digest_is_32_bytes():
    assert len(keccak256(b"x" * 1000)) == 32


def test_incremental_equals_oneshot():
    hasher = Keccak256()
    hasher.update(b"The quick brown fox ")
    hasher.update(b"jumps over the lazy dog")
    assert (
        hasher.digest()
        == keccak256(b"The quick brown fox jumps over the lazy dog")
    )


def test_digest_does_not_consume_state():
    hasher = Keccak256(b"abc")
    first = hasher.digest()
    second = hasher.digest()
    assert first == second


def test_update_after_digest():
    hasher = Keccak256(b"ab")
    hasher.digest()
    hasher.update(b"c")
    assert hasher.digest() == keccak256(b"abc")


def test_block_boundary_sizes():
    # Exercise rate-boundary lengths (136-byte rate).
    for size in (135, 136, 137, 271, 272, 273):
        data = bytes(range(256))[:100] * 4
        data = data[:size]
        assert Keccak256(data).digest() == keccak256(data)


def test_large_input_not_cached_path():
    data = b"q" * 5000
    assert keccak256(data) == Keccak256(data).digest()


def test_avalanche():
    a = keccak256(b"\x00" * 64)
    b = keccak256(b"\x00" * 63 + b"\x01")
    differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing_bits > 80  # ~128 expected for a good hash
