"""FaultPlan: determinism, per-kind stream independence, validation."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultRule


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule("no-such-fault", 0.1)
    with pytest.raises(ValueError):
        FaultRule(FaultKind.DMA_DROP, 1.5)
    with pytest.raises(ValueError):
        FaultRule(FaultKind.DMA_DROP, -0.1)
    with pytest.raises(ValueError):
        FaultRule(FaultKind.DMA_DROP, 0.5, max_fires=-1)
    with pytest.raises(ValueError):
        FaultRule(FaultKind.ORAM_STALL, 0.5, stall_us=-1.0)


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(-1)
    with pytest.raises(ValueError):
        FaultPlan(2**64)
    with pytest.raises(ValueError):
        FaultPlan(1, [
            FaultRule(FaultKind.DMA_DROP, 0.1),
            FaultRule(FaultKind.DMA_DROP, 0.2),
        ])


def test_same_seed_reproduces_decisions_different_seed_differs():
    def run(seed):
        plan = FaultPlan.uniform(seed, 0.3)
        return [plan.decide(FaultKind.DMA_DROP, float(i)) for i in range(200)]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_streams_are_independent_across_kinds():
    """Whether kind X's Nth decision fires depends only on (seed, X, N) —
    not on how other kinds' decision points interleave with it."""
    solo = FaultPlan(5, [FaultRule(FaultKind.DMA_CORRUPT, 0.25)])
    solo_decisions = [solo.decide(FaultKind.DMA_CORRUPT, 0.0) for _ in range(100)]

    mixed = FaultPlan(5, [
        FaultRule(FaultKind.DMA_CORRUPT, 0.25),
        FaultRule(FaultKind.HEVM_CRASH, 0.5),
    ])
    mixed_decisions = []
    for _ in range(100):
        mixed.decide(FaultKind.HEVM_CRASH, 0.0)  # interleave another kind
        mixed_decisions.append(mixed.decide(FaultKind.DMA_CORRUPT, 0.0))
    assert mixed_decisions == solo_decisions


def test_zero_rate_and_unarmed_kinds_never_fire_or_draw():
    plan = FaultPlan(3, [FaultRule(FaultKind.DMA_DROP, 0.0)])
    assert not any(plan.decide(FaultKind.DMA_DROP, 0.0) for _ in range(50))
    assert not any(plan.decide(FaultKind.HEVM_CRASH, 0.0) for _ in range(50))
    # No draws at rate 0: the armed-but-quiet plan perturbs nothing.
    assert plan.decisions(FaultKind.DMA_DROP) == 0
    assert plan.decisions(FaultKind.HEVM_CRASH) == 0
    assert plan.total_injected == 0


def test_virtual_time_window_gates_firing():
    plan = FaultPlan(9, [
        FaultRule(FaultKind.DMA_DROP, 1.0, after_us=100.0, until_us=200.0)
    ])
    assert not plan.decide(FaultKind.DMA_DROP, 50.0)
    assert plan.decide(FaultKind.DMA_DROP, 150.0)
    assert not plan.decide(FaultKind.DMA_DROP, 250.0)
    # Vetoed decisions still consumed their draw (position == count).
    assert plan.decisions(FaultKind.DMA_DROP) == 3
    assert plan.fires(FaultKind.DMA_DROP) == 1


def test_max_fires_caps_injections():
    plan = FaultPlan(2, [FaultRule(FaultKind.HEVM_CRASH, 1.0, max_fires=2)])
    fired = [plan.decide(FaultKind.HEVM_CRASH, 0.0) for _ in range(10)]
    assert fired == [True, True] + [False] * 8
    assert plan.fires(FaultKind.HEVM_CRASH) == 2
    assert plan.decisions(FaultKind.HEVM_CRASH) == 10


def test_uniform_constructor_arms_every_kind():
    plan = FaultPlan.uniform(4, 0.1)
    for kind in FaultKind.ALL:
        rule = plan.rule(kind)
        assert rule is not None and rule.rate == 0.1
    assert plan.rule(FaultKind.DMA_DROP) is not None


def test_record_keeps_ordered_audit_log():
    plan = FaultPlan(1)
    plan.record(FaultKind.DMA_DROP, "site-a", 10.0, "first")
    plan.record(FaultKind.HEVM_CRASH, "site-b", 20.0)
    assert plan.total_injected == 2
    assert [record.index for record in plan.log] == [0, 1]
    assert plan.log[0].kind == FaultKind.DMA_DROP
    assert plan.log[0].detail == "first"
    assert plan.log[1].site == "site-b"
