"""secp256k1 ECDSA / ECDH."""

import hashlib

import pytest

from repro.crypto.ecc import (
    G,
    InvalidSignature,
    N,
    Point,
    PrivateKey,
    Signature,
    _point_add,
    _scalar_mul,
    decode_point,
    encode_point,
    point_on_curve,
    recover_address,
)


def _digest(message: bytes) -> bytes:
    return hashlib.sha256(message).digest()


def test_generator_on_curve():
    assert point_on_curve(G)


def test_scalar_mul_matches_known_point():
    # 2*G for secp256k1 is a published constant.
    double = _scalar_mul(2, G)
    assert double.x == int(
        "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5", 16
    )
    assert double.y == int(
        "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a", 16
    )


def test_order_times_generator_is_infinity():
    assert _scalar_mul(N, G).is_infinity


def test_point_add_inverse_is_infinity():
    p = _scalar_mul(7, G)
    neg = Point(p.x, (-p.y) % (2**256 - 2**32 - 977))
    assert _point_add(p, neg).is_infinity


def test_sign_verify_roundtrip():
    sk = PrivateKey.from_bytes(b"\x42" * 32)
    pk = sk.public_key()
    digest = _digest(b"hello hardtape")
    pk.verify(digest, sk.sign(digest))


def test_signature_is_deterministic():
    sk = PrivateKey.from_bytes(b"\x42" * 32)
    digest = _digest(b"msg")
    assert sk.sign(digest) == sk.sign(digest)


def test_signature_is_low_s():
    sk = PrivateKey.from_bytes(b"\x13" * 32)
    for i in range(8):
        sig = sk.sign(_digest(bytes([i])))
        assert sig.s <= N // 2


def test_wrong_message_rejected():
    sk = PrivateKey.from_bytes(b"\x42" * 32)
    sig = sk.sign(_digest(b"original"))
    with pytest.raises(InvalidSignature):
        sk.public_key().verify(_digest(b"forged"), sig)


def test_wrong_key_rejected():
    sk1 = PrivateKey.from_bytes(b"\x01" * 32)
    sk2 = PrivateKey.from_bytes(b"\x02" * 32)
    digest = _digest(b"msg")
    with pytest.raises(InvalidSignature):
        sk2.public_key().verify(digest, sk1.sign(digest))


def test_out_of_range_scalars_rejected():
    sk = PrivateKey.from_bytes(b"\x42" * 32)
    digest = _digest(b"msg")
    with pytest.raises(InvalidSignature):
        sk.public_key().verify(digest, Signature(0, 1))
    with pytest.raises(InvalidSignature):
        sk.public_key().verify(digest, Signature(1, N))


def test_signature_serialization_roundtrip():
    sk = PrivateKey.from_bytes(b"\x42" * 32)
    sig = sk.sign(_digest(b"msg"))
    assert Signature.from_bytes(sig.to_bytes()) == sig
    with pytest.raises(ValueError):
        Signature.from_bytes(b"\x00" * 63)


def test_point_encoding_roundtrip():
    pk = PrivateKey.from_bytes(b"\x07" * 32).public_key()
    assert decode_point(encode_point(pk.point)) == pk.point


def test_decode_rejects_off_curve_point():
    bogus = b"\x04" + b"\x01" * 64
    with pytest.raises(ValueError):
        decode_point(bogus)


def test_ecdh_is_symmetric():
    a = PrivateKey.from_bytes(b"\x0a" * 32)
    b = PrivateKey.from_bytes(b"\x0b" * 32)
    assert a.ecdh(b.public_key()) == b.ecdh(a.public_key())


def test_ecdh_distinct_peers_distinct_secrets():
    a = PrivateKey.from_bytes(b"\x0a" * 32)
    b = PrivateKey.from_bytes(b"\x0b" * 32)
    c = PrivateKey.from_bytes(b"\x0c" * 32)
    assert a.ecdh(b.public_key()) != a.ecdh(c.public_key())


def test_private_key_range_enforced():
    with pytest.raises(ValueError):
        PrivateKey(0)
    with pytest.raises(ValueError):
        PrivateKey(N)


def test_recover_address_is_20_bytes():
    sk = PrivateKey.from_bytes(b"\x42" * 32)
    digest = _digest(b"tx")
    address = recover_address(digest, sk.sign(digest), sk.public_key())
    assert len(address) == 20
