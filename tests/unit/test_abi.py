"""ABI codec against known Solidity encodings."""

import pytest

from repro.evm.abi import (
    AbiError,
    decode,
    encode,
    encode_call,
    function_selector,
)
from repro.workloads.contracts import erc20


def test_known_selectors():
    # The canonical ERC-20 selectors, independently derived.
    assert function_selector("transfer(address,uint256)").hex() == "a9059cbb"
    assert function_selector("balanceOf(address)").hex() == "70a08231"
    assert function_selector("totalSupply()").hex() == "18160ddd"


def test_encode_call_matches_handwritten_calldata():
    to = b"\x11" * 20
    ours = encode_call("transfer(address,uint256)", [to, 500])
    handwritten = erc20.transfer_calldata(to, 500)
    assert ours == handwritten


def test_uint_encoding():
    assert encode(["uint256"], [1]).hex() == "00" * 31 + "01"
    assert encode(["uint8"], [255])[-1] == 255
    with pytest.raises(AbiError):
        encode(["uint8"], [256])
    with pytest.raises(AbiError):
        encode(["uint256"], [-1])


def test_int_encoding_twos_complement():
    encoded = encode(["int256"], [-1])
    assert encoded == b"\xff" * 32
    assert decode(["int256"], encoded) == [-1]
    with pytest.raises(AbiError):
        encode(["int8"], [128])
    assert decode(["int8"], encode(["int8"], [-128])) == [-128]


def test_address_and_bool():
    address = b"\xab" * 20
    encoded = encode(["address", "bool"], [address, True])
    assert len(encoded) == 64
    assert decode(["address", "bool"], encoded) == [address, True]


def test_fixed_bytes():
    encoded = encode(["bytes4"], [b"\xde\xad\xbe\xef"])
    assert encoded[:4] == b"\xde\xad\xbe\xef"
    assert encoded[4:] == b"\x00" * 28
    assert decode(["bytes4"], encoded) == [b"\xde\xad\xbe\xef"]
    with pytest.raises(AbiError):
        encode(["bytes4"], [b"\x00" * 5])


def test_dynamic_bytes_layout():
    # Solidity reference: f(bytes) with "dave" -> offset 0x20, len 4.
    encoded = encode(["bytes"], [b"dave"])
    assert int.from_bytes(encoded[:32], "big") == 32
    assert int.from_bytes(encoded[32:64], "big") == 4
    assert encoded[64:68] == b"dave"
    assert decode(["bytes"], encoded) == [b"dave"]


def test_string_roundtrip():
    encoded = encode(["string"], ["Hello, HarDTAPE"])
    assert decode(["string"], encoded) == ["Hello, HarDTAPE"]


def test_mixed_static_dynamic_heads():
    # Canonical ABI example: (uint256, bytes, uint256).
    encoded = encode(
        ["uint256", "bytes", "uint256"], [0x123, b"ab", 0x456]
    )
    assert int.from_bytes(encoded[0:32], "big") == 0x123
    assert int.from_bytes(encoded[32:64], "big") == 96  # offset past head
    assert int.from_bytes(encoded[64:96], "big") == 0x456
    assert decode(["uint256", "bytes", "uint256"], encoded) == [
        0x123, b"ab", 0x456,
    ]


def test_uint_array():
    encoded = encode(["uint256[]"], [[1, 2, 3]])
    assert decode(["uint256[]"], encoded) == [[1, 2, 3]]
    assert int.from_bytes(encoded[32:64], "big") == 3  # length word


def test_two_dynamic_args():
    encoded = encode(["bytes", "uint8[]"], [b"xyz", [7, 9]])
    assert decode(["bytes", "uint8[]"], encoded) == [b"xyz", [7, 9]]


def test_nested_dynamic_rejected():
    with pytest.raises(AbiError):
        encode(["bytes[]"], [[b"a"]])


def test_length_mismatch():
    with pytest.raises(AbiError):
        encode(["uint256"], [1, 2])


def test_decode_bounds_checked():
    with pytest.raises(AbiError):
        decode(["uint256", "uint256"], b"\x00" * 32)
    # Offset pointing past the data.
    bogus = (1000).to_bytes(32, "big")
    with pytest.raises(AbiError):
        decode(["bytes"], bogus)


def test_abi_call_executes_against_contract(backend, chain):
    """encode_call drives the real ERC-20 bytecode end to end."""
    from repro.evm import execute_transaction
    from repro.state import JournaledState, Transaction, to_address

    from tests.conftest import ALICE

    token = to_address(0x70CE)
    backend.ensure(token).code = erc20.erc20_runtime()
    state = JournaledState(backend)
    mint = encode_call("mint(address,uint256)", [ALICE, 750])
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=token, data=mint)
    )
    assert result.success, result.error
    query = encode_call("balanceOf(address)", [ALICE])
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=token, data=query)
    )
    assert decode(["uint256"], result.return_data) == [750]
