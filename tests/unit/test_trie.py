"""Merkle Patricia Trie: roots, deletion, iteration, proofs."""

import pytest

from repro import rlp
from repro.crypto.keccak import keccak256
from repro.trie import EMPTY_ROOT, MerklePatriciaTrie, ProofError, verify_proof
from repro.trie.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
    nibbles_to_bytes,
)


def test_empty_root_constant():
    assert (
        EMPTY_ROOT.hex()
        == "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
    )
    assert MerklePatriciaTrie().root_hash() == EMPTY_ROOT


def test_canonical_root_vector():
    # From the ethereum/tests trietest suite.
    trie = MerklePatriciaTrie()
    for key, value in [
        (b"do", b"verb"),
        (b"dog", b"puppy"),
        (b"doge", b"coin"),
        (b"horse", b"stallion"),
    ]:
        trie.put(key, value)
    assert (
        trie.root_hash().hex()
        == "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
    )


def test_insert_order_independence():
    import itertools

    items = [(b"do", b"verb"), (b"dog", b"puppy"), (b"doge", b"coin")]
    roots = set()
    for perm in itertools.permutations(items):
        trie = MerklePatriciaTrie()
        for key, value in perm:
            trie.put(key, value)
        roots.add(trie.root_hash())
    assert len(roots) == 1


def test_get_put_overwrite():
    trie = MerklePatriciaTrie()
    trie.put(b"key", b"v1")
    assert trie.get(b"key") == b"v1"
    trie.put(b"key", b"v2")
    assert trie.get(b"key") == b"v2"
    assert trie.get(b"nokey") is None


def test_empty_value_deletes():
    trie = MerklePatriciaTrie()
    trie.put(b"key", b"value")
    trie.put(b"key", b"")
    assert trie.get(b"key") is None
    assert trie.root_hash() == EMPTY_ROOT


def test_delete_restores_previous_root():
    trie = MerklePatriciaTrie()
    trie.put(b"alpha", b"1")
    root_one = trie.root_hash()
    trie.put(b"beta", b"2")
    trie.delete(b"beta")
    assert trie.root_hash() == root_one
    trie.delete(b"alpha")
    assert trie.root_hash() == EMPTY_ROOT


def test_delete_missing_key_is_noop():
    trie = MerklePatriciaTrie()
    trie.put(b"alpha", b"1")
    root = trie.root_hash()
    trie.delete(b"missing")
    assert trie.root_hash() == root


def test_items_sorted():
    trie = MerklePatriciaTrie()
    data = {bytes([i, j]): bytes([i + j + 1]) for i in range(4) for j in range(4)}
    for key, value in data.items():
        trie.put(key, value)
    listed = list(trie.items())
    assert listed == sorted(data.items())


def test_branch_value_slot():
    # A key that is a strict prefix of another exercises branch values.
    trie = MerklePatriciaTrie()
    trie.put(b"ab", b"short")
    trie.put(b"abcd", b"long")
    assert trie.get(b"ab") == b"short"
    assert trie.get(b"abcd") == b"long"
    trie.delete(b"ab")
    assert trie.get(b"ab") is None
    assert trie.get(b"abcd") == b"long"


def test_membership_proof():
    trie = MerklePatriciaTrie()
    for i in range(50):
        trie.put(keccak256(bytes([i])), rlp.encode_uint(i + 1))
    root = trie.root_hash()
    key = keccak256(bytes([7]))
    proof = trie.prove(key)
    assert verify_proof(root, key, proof) == rlp.encode_uint(8)


def test_non_membership_proof():
    trie = MerklePatriciaTrie()
    for i in range(50):
        trie.put(keccak256(bytes([i])), b"v")
    root = trie.root_hash()
    absent = keccak256(b"not-present")
    proof = trie.prove(absent)
    assert verify_proof(root, absent, proof) is None


def test_proof_fails_under_wrong_root():
    trie = MerklePatriciaTrie()
    for i in range(20):
        trie.put(keccak256(bytes([i])), b"v")
    key = keccak256(bytes([3]))
    proof = trie.prove(key)
    with pytest.raises(ProofError):
        verify_proof(b"\xab" * 32, key, proof)


def test_tampered_proof_rejected():
    trie = MerklePatriciaTrie()
    for i in range(20):
        trie.put(keccak256(bytes([i])), bytes([i + 1]))
    root = trie.root_hash()
    key = keccak256(bytes([3]))
    proof = trie.prove(key)
    tampered = [proof[0][:-1] + bytes([proof[0][-1] ^ 1])] + proof[1:]
    with pytest.raises(ProofError):
        verify_proof(root, key, tampered)


def test_proof_of_empty_trie():
    assert verify_proof(EMPTY_ROOT, b"anything", []) is None


def test_fuzz_against_dict():
    import random

    rng = random.Random(1234)
    reference: dict[bytes, bytes] = {}
    trie = MerklePatriciaTrie()
    for _ in range(800):
        key = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 6)))
        if rng.random() < 0.7:
            value = bytes(rng.randrange(1, 256) for _ in range(rng.randrange(1, 40)))
            reference[key] = value
            trie.put(key, value)
        else:
            reference.pop(key, None)
            trie.delete(key)
    for key, value in reference.items():
        assert trie.get(key) == value
    root = trie.root_hash()
    sample = list(reference)[:25]
    for key in sample:
        assert verify_proof(root, key, trie.prove(key)) == reference[key]


# -- nibble helpers -----------------------------------------------------------


def test_nibble_roundtrip():
    data = bytes(range(16))
    assert nibbles_to_bytes(bytes_to_nibbles(data)) == data


def test_nibbles_odd_length_rejected():
    with pytest.raises(ValueError):
        nibbles_to_bytes((1, 2, 3))


@pytest.mark.parametrize("is_leaf", [True, False])
@pytest.mark.parametrize("path", [(), (1,), (1, 2), (15, 0, 3)])
def test_hp_roundtrip(path, is_leaf):
    decoded_path, decoded_leaf = hp_decode(hp_encode(path, is_leaf))
    assert decoded_path == path
    assert decoded_leaf == is_leaf


def test_common_prefix_length():
    assert common_prefix_length((1, 2, 3), (1, 2, 9)) == 2
    assert common_prefix_length((), (1,)) == 0
    assert common_prefix_length((5,), (5,)) == 1
