"""AES and AES-GCM against FIPS-197 / NIST SP 800-38D vectors.

Also the repro.perf equivalence suite: the optimized CTR/GHASH/batch
paths must be byte-identical to the frozen pre-optimization references
in :mod:`repro.perf.reference` on every input shape.
"""

import pytest

from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm, AuthenticationError, _ghash_table, _Ghash
from repro.crypto.kdf import Drbg
from repro.perf.reference import (
    ReferenceAesGcm,
    ReferenceGhash,
    reference_ctr_keystream,
)


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    ciphertext = AES(key).encrypt_block(plaintext)
    assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "8ea2b7ca516745bfeafc49904b496089"


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_size):
    key = bytes(range(key_size))
    cipher = AES(key)
    for i in range(5):
        block = bytes([i] * 16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_invalid_key_length_rejected():
    with pytest.raises(ValueError):
        AES(b"short")


def test_invalid_block_length_rejected():
    with pytest.raises(ValueError):
        AES(b"k" * 16).encrypt_block(b"too short")
    with pytest.raises(ValueError):
        AES(b"k" * 16).decrypt_block(b"too short")


def test_ctr_keystream_length():
    cipher = AES(b"k" * 16)
    ks = cipher.ctr_keystream(b"\x00" * 16, 100)
    assert len(ks) == 100


# NIST GCM test case 3.
_GCM_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
_GCM_IV = bytes.fromhex("cafebabefacedbaddecaf888")
_GCM_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
)
_GCM_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


def test_nist_gcm_vector():
    gcm = AesGcm(_GCM_KEY)
    out = gcm.encrypt(_GCM_IV, _GCM_PT, _GCM_AAD)
    assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    assert gcm.decrypt(_GCM_IV, out, _GCM_AAD) == _GCM_PT


def test_gcm_empty_plaintext():
    gcm = AesGcm(b"k" * 16)
    out = gcm.encrypt(b"n" * 12, b"")
    assert len(out) == 16  # tag only
    assert gcm.decrypt(b"n" * 12, out) == b""


def test_gcm_tamper_ciphertext_detected():
    gcm = AesGcm(b"k" * 16)
    out = bytearray(gcm.encrypt(b"n" * 12, b"secret payload"))
    out[0] ^= 1
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"n" * 12, bytes(out))


def test_gcm_tamper_tag_detected():
    gcm = AesGcm(b"k" * 16)
    out = bytearray(gcm.encrypt(b"n" * 12, b"secret payload"))
    out[-1] ^= 0x80
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"n" * 12, bytes(out))


def test_gcm_wrong_aad_detected():
    gcm = AesGcm(b"k" * 16)
    out = gcm.encrypt(b"n" * 12, b"payload", aad=b"header-a")
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"n" * 12, out, aad=b"header-b")


def test_gcm_wrong_key_detected():
    out = AesGcm(b"k" * 16).encrypt(b"n" * 12, b"payload")
    with pytest.raises(AuthenticationError):
        AesGcm(b"j" * 16).decrypt(b"n" * 12, out)


def test_gcm_short_message_rejected():
    with pytest.raises(AuthenticationError):
        AesGcm(b"k" * 16).decrypt(b"n" * 12, b"short")


def test_gcm_nonce_length_enforced():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(ValueError):
        gcm.encrypt(b"short", b"x")
    with pytest.raises(ValueError):
        gcm.decrypt(b"short", b"x" * 32)


def test_gcm_distinct_nonces_distinct_ciphertexts():
    gcm = AesGcm(b"k" * 16)
    a = gcm.encrypt((1).to_bytes(12, "big"), b"same message")
    b = gcm.encrypt((2).to_bytes(12, "big"), b"same message")
    assert a != b


def test_nist_gcm_empty_pt_empty_aad_tag():
    # McGrew & Viega test case 1: all-zero key and IV, no data at all.
    gcm = AesGcm(bytes(16))
    out = gcm.encrypt(bytes(12), b"")
    assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_gcm_aad_only_vector():
    # NIST CAVS gcmEncryptExtIV128, PTlen=0 / AADlen=128, count 0:
    # authentication with no plaintext exercises the GHASH/J0 path alone.
    gcm = AesGcm(bytes.fromhex("77be63708971c4e240d1cb79e8d77feb"))
    iv = bytes.fromhex("e0e00f19fed7ba0136a797f3")
    aad = bytes.fromhex("7a43ec1d9c0a5a78a0b16533a6213cab")
    out = gcm.encrypt(iv, b"", aad)
    assert out.hex() == "209fcc8d3675ed938e9c7166709dd946"
    assert gcm.decrypt(iv, out, aad) == b""
    with pytest.raises(AuthenticationError):
        gcm.decrypt(iv, out, b"")


# ---------------------------------------------------------------------------
# repro.perf equivalence: optimized paths vs frozen references
# ---------------------------------------------------------------------------

_SHAPE_LENGTHS = [0, 1, 15, 16, 17, 48, 63, 64, 100, 1024, 1091]


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_ctr_keystream_matches_reference_all_shapes(key_size):
    cipher = AES(bytes(range(key_size)))
    counter_block = bytes(range(12)) + b"\x00\x00\x00\x02"
    for length in _SHAPE_LENGTHS:
        assert cipher.ctr_keystream(counter_block, length) == \
            reference_ctr_keystream(cipher, counter_block, length)


def test_ctr_keystream_counter_wraparound():
    """The 32-bit counter word wraps modulo 2^32 (and never carries into
    the nonce prefix) on both the scalar and the vectorized path."""
    cipher = AES(b"w" * 16)
    for start in (0xFFFFFFFE, 0xFFFFFFFF, 0xFFFFFFFC):
        counter_block = b"\xab" * 12 + start.to_bytes(4, "big")
        for length in (17, 33, 160):  # spans the scalar/vector cutover
            assert cipher.ctr_keystream(counter_block, length) == \
                reference_ctr_keystream(cipher, counter_block, length)


def test_ctr_keystream_rejects_bad_counter_block():
    cipher = AES(b"k" * 16)
    with pytest.raises(ValueError):
        cipher.ctr_keystream(b"\x00" * 15, 32)


def test_ctr_keystream_many_matches_per_message():
    cipher = AES(b"m" * 16)
    rng = Drbg(b"ctr-many")
    counter_blocks, lengths = [], []
    for i in range(40):
        counter_blocks.append(
            bytes(rng.randint(256) for _ in range(12)) + b"\x00\x00\x00\x02"
        )
        lengths.append(_SHAPE_LENGTHS[i % len(_SHAPE_LENGTHS)])
    many = cipher.ctr_keystream_many(counter_blocks, lengths)
    for block, length, stream in zip(counter_blocks, lengths, many):
        assert stream == cipher.ctr_keystream(block, length)


def test_ghash_matches_reference():
    h = int.from_bytes(AES(b"g" * 16).encrypt_block(bytes(16)), "big")
    tables = _ghash_table(h)
    rng = Drbg(b"ghash")
    for length in _SHAPE_LENGTHS:
        data = bytes(rng.randint(256) for _ in range(length))
        fast, slow = _Ghash(tables), ReferenceGhash(tables)
        fast.update(data)
        slow.update(data)
        assert fast.digest() == slow.digest()
        # Split updates must agree with one-shot updates on chunk seams.
        split = _Ghash(tables)
        split.update(data[:length // 2])
        split.update(data[length // 2:])
        if length % 16 == 0 and length // 2 % 16 == 0:
            assert split.digest() == fast.digest()


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_gcm_matches_reference_implementation(key_size):
    key = bytes(range(key_size))
    fast, slow = AesGcm(key), ReferenceAesGcm(key)
    rng = Drbg(b"gcm-equiv")
    for index, length in enumerate(_SHAPE_LENGTHS):
        nonce = index.to_bytes(12, "big")
        plaintext = bytes(rng.randint(256) for _ in range(length))
        aad = bytes(rng.randint(256) for _ in range(index % 21))
        sealed = fast.encrypt(nonce, plaintext, aad)
        assert sealed == slow.encrypt(nonce, plaintext, aad)
        assert fast.decrypt(nonce, sealed, aad) == plaintext
        assert slow.decrypt(nonce, sealed, aad) == plaintext


def test_gcm_batch_seal_open_matches_per_item():
    gcm = AesGcm(b"b" * 16)
    rng = Drbg(b"gcm-batch")
    items = []
    for index, length in enumerate(_SHAPE_LENGTHS):
        nonce = (1000 + index).to_bytes(12, "big")
        plaintext = bytes(rng.randint(256) for _ in range(length))
        items.append((nonce, plaintext, b"aad-%d" % index))
    sealed = gcm.seal_blocks(items)
    for (nonce, plaintext, aad), blob in zip(items, sealed):
        assert blob == gcm.encrypt(nonce, plaintext, aad)
    opened = gcm.open_blocks(
        [(nonce, blob, aad) for (nonce, _, aad), blob in zip(items, sealed)]
    )
    assert opened == [plaintext for _, plaintext, _ in items]


def test_gcm_batch_open_is_all_or_nothing():
    gcm = AesGcm(b"b" * 16)
    nonce_a, nonce_b = (1).to_bytes(12, "big"), (2).to_bytes(12, "big")
    good = gcm.encrypt(nonce_a, b"good block")
    bad = bytearray(gcm.encrypt(nonce_b, b"bad block"))
    bad[-1] ^= 1
    with pytest.raises(AuthenticationError):
        gcm.open_blocks([(nonce_a, good, b""), (nonce_b, bytes(bad), b"")])
