"""AES and AES-GCM against FIPS-197 / NIST SP 800-38D vectors."""

import pytest

from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm, AuthenticationError


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    ciphertext = AES(key).encrypt_block(plaintext)
    assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "8ea2b7ca516745bfeafc49904b496089"


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_size):
    key = bytes(range(key_size))
    cipher = AES(key)
    for i in range(5):
        block = bytes([i] * 16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_invalid_key_length_rejected():
    with pytest.raises(ValueError):
        AES(b"short")


def test_invalid_block_length_rejected():
    with pytest.raises(ValueError):
        AES(b"k" * 16).encrypt_block(b"too short")
    with pytest.raises(ValueError):
        AES(b"k" * 16).decrypt_block(b"too short")


def test_ctr_keystream_length():
    cipher = AES(b"k" * 16)
    ks = cipher.ctr_keystream(b"\x00" * 16, 100)
    assert len(ks) == 100


# NIST GCM test case 3.
_GCM_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
_GCM_IV = bytes.fromhex("cafebabefacedbaddecaf888")
_GCM_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
)
_GCM_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


def test_nist_gcm_vector():
    gcm = AesGcm(_GCM_KEY)
    out = gcm.encrypt(_GCM_IV, _GCM_PT, _GCM_AAD)
    assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    assert gcm.decrypt(_GCM_IV, out, _GCM_AAD) == _GCM_PT


def test_gcm_empty_plaintext():
    gcm = AesGcm(b"k" * 16)
    out = gcm.encrypt(b"n" * 12, b"")
    assert len(out) == 16  # tag only
    assert gcm.decrypt(b"n" * 12, out) == b""


def test_gcm_tamper_ciphertext_detected():
    gcm = AesGcm(b"k" * 16)
    out = bytearray(gcm.encrypt(b"n" * 12, b"secret payload"))
    out[0] ^= 1
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"n" * 12, bytes(out))


def test_gcm_tamper_tag_detected():
    gcm = AesGcm(b"k" * 16)
    out = bytearray(gcm.encrypt(b"n" * 12, b"secret payload"))
    out[-1] ^= 0x80
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"n" * 12, bytes(out))


def test_gcm_wrong_aad_detected():
    gcm = AesGcm(b"k" * 16)
    out = gcm.encrypt(b"n" * 12, b"payload", aad=b"header-a")
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"n" * 12, out, aad=b"header-b")


def test_gcm_wrong_key_detected():
    out = AesGcm(b"k" * 16).encrypt(b"n" * 12, b"payload")
    with pytest.raises(AuthenticationError):
        AesGcm(b"j" * 16).decrypt(b"n" * 12, out)


def test_gcm_short_message_rejected():
    with pytest.raises(AuthenticationError):
        AesGcm(b"k" * 16).decrypt(b"n" * 12, b"short")


def test_gcm_nonce_length_enforced():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(ValueError):
        gcm.encrypt(b"short", b"x")
    with pytest.raises(ValueError):
        gcm.decrypt(b"short", b"x" * 32)


def test_gcm_distinct_nonces_distinct_ciphertexts():
    gcm = AesGcm(b"k" * 16)
    a = gcm.encrypt((1).to_bytes(12, "big"), b"same message")
    b = gcm.encrypt((2).to_bytes(12, "big"), b"same message")
    assert a != b
