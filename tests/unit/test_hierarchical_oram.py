"""Unit tests for the Pyramid-style hierarchical ORAM backend."""

import pytest

from repro.crypto.gcm import AuthenticationError
from repro.crypto.kdf import Drbg
from repro.oram.hierarchical import (
    HierarchicalOramServer,
    PyramidOramClient,
    backend_for_working_set,
    build_oram_server,
)
from repro.oram.server import OramServer

pytestmark = pytest.mark.sharding

KEY = b"p" * 32


def _client(cache_limit=8, **kwargs):
    server = HierarchicalOramServer(bucket_size=4)
    return PyramidOramClient(server, KEY, block_size=64,
                             cache_limit=cache_limit, **kwargs), server


def test_read_write_matches_reference_model():
    client, _server = _client(cache_limit=8)
    reference: dict[bytes, bytes] = {}
    rng = Drbg(b"pyramid-test")
    keys = [b"key-%02d" % i for i in range(24)]
    for step in range(600):
        key = keys[rng.randint(len(keys))]
        if rng.randint(3) == 0:
            value = b"v%04d" % step
            client.write(key, value)
            reference[key] = value.ljust(64, b"\x00")
        else:
            got = client.read(key)
            expected = reference.get(key)
            assert got == expected, (step, key)
    assert client.rebuilds > 0  # the cache spilled and levels exist
    assert client.level_geometry()


def test_absent_keys_read_none_repeatedly():
    client, server = _client(cache_limit=16)
    for i in range(8):
        client.write(b"real-%d" % i, b"x")
    assert client.read(b"ghost") is None
    # The miss is cached as a negative witness: asking again is served
    # obliviously (dummy probes) and still answers None.
    assert client.read(b"ghost") is None
    assert client.read(b"real-3") == b"x".ljust(64, b"\x00")


def test_every_access_probes_every_active_level():
    client, server = _client(cache_limit=4)
    for i in range(12):
        client.write(b"k%d" % i, b"v")  # force several rebuilds
    active = len(server.active_levels())
    assert active >= 1
    before = server.stats.bucket_reads
    client.read(b"k0")
    client.read(b"ghost")
    # Hit or miss, cached or not: exactly one bucket per level per access.
    assert server.stats.bucket_reads - before == 2 * active


def test_seeded_runs_are_byte_identical():
    def run():
        client, server = _client(cache_limit=6)
        for i in range(40):
            client.write(b"key-%02d" % (i % 13), b"val-%02d" % i)
            client.read(b"key-%02d" % ((i * 7) % 13))
        return server.snapshot_levels()

    first, second = run(), run()
    assert first.keys() == second.keys()
    assert first == second


def test_level_rollback_fails_authentication():
    client, server = _client(cache_limit=4)
    for i in range(4):
        client.write(b"k%d" % i, b"v")  # rebuild #1: level 1, epoch 1
    assert client.rebuilds == 1
    stale = server.snapshot_levels()
    for i in range(4):
        client.write(b"k%d" % i, b"w")  # rebuild #2: same level, epoch 2
    assert client.rebuilds == 2
    server.restore_levels(stale)  # the SP replays the epoch-1 level
    with pytest.raises(AuthenticationError):
        client.read(b"k0")


def test_cache_limit_validation():
    server = HierarchicalOramServer()
    with pytest.raises(ValueError):
        PyramidOramClient(server, KEY, cache_limit=1)
    client = PyramidOramClient(server, KEY, block_size=16, cache_limit=2)
    with pytest.raises(ValueError):
        client.write(b"k", b"x" * 17)


def test_build_oram_server_factory():
    path = build_oram_server("path", height=5)
    assert isinstance(path, OramServer) and path.height == 5
    pyramid = build_oram_server("pyramid", height=5)
    assert isinstance(pyramid, HierarchicalOramServer)
    with pytest.raises(ValueError):
        build_oram_server("cuckoo", height=5)


def test_backend_for_working_set_crossover():
    assert backend_for_working_set(0) == "pyramid"
    assert backend_for_working_set(4096) == "pyramid"
    assert backend_for_working_set(4097) == "path"
    with pytest.raises(ValueError):
        backend_for_working_set(-1)
