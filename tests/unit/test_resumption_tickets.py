"""Resumption tickets: codec, sealing, epoch binding, single-use."""

import struct

import pytest

from repro.crypto.kdf import hkdf_sha256
from repro.hypervisor.channel import ChannelError, SecureChannel
from repro.hypervisor.resumption import (
    TICKET_MAGIC,
    StaleTicketError,
    TicketError,
    TicketIntegrityError,
    TicketReplayError,
    TicketSealer,
    TicketState,
)

pytestmark = pytest.mark.serving

KEY = hkdf_sha256(b"\x42" * 32, info=b"ticket-test-key")


def _state(**overrides) -> TicketState:
    fields = dict(
        session_id=b"\x01" * 16,
        user_public=b"\x02" * 33,
        hv_signing_secret=b"\x03" * 32,
        resumption_secret=b"\x04" * 32,
        send_watermark=7,
        recv_watermark=5,
        shard_affinity=3,
        ring_digest="ring-v1",
        minted_at_us=1234.5,
    )
    fields.update(overrides)
    return TicketState(**fields)


# ---------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------

def test_state_codec_roundtrip():
    state = _state()
    assert TicketState.decode(state.encode()) == state


def test_state_codec_defaults_roundtrip():
    state = _state(shard_affinity=-1, ring_digest="", minted_at_us=0.0)
    assert TicketState.decode(state.encode()) == state


def test_state_codec_rejects_trailing_bytes():
    with pytest.raises(TicketIntegrityError):
        TicketState.decode(_state().encode() + b"\x00")


# ---------------------------------------------------------------------
# Sealer: mint/redeem, epoch binding, single use
# ---------------------------------------------------------------------

def test_mint_redeem_roundtrip():
    sealer = TicketSealer(KEY)
    state = _state()
    ticket = sealer.mint(state, epoch=0)
    assert ticket[:4] == TICKET_MAGIC
    assert sealer.redeem(ticket, current_epoch=0) == state
    assert sealer.minted == 1
    assert sealer.redeemed == 1


def test_stale_epoch_is_typed_with_both_epochs():
    sealer = TicketSealer(KEY)
    ticket = sealer.mint(_state(), epoch=0)
    with pytest.raises(StaleTicketError) as excinfo:
        sealer.redeem(ticket, current_epoch=1)
    assert excinfo.value.minted_epoch == 0
    assert excinfo.value.current_epoch == 1
    # Deliberately NOT a KeyError: the fault plane must never absorb a
    # stale ticket as a stale-session retry.
    assert not isinstance(excinfo.value, KeyError)
    assert isinstance(excinfo.value, TicketError)


def test_future_epoch_is_integrity_not_stale():
    sealer = TicketSealer(KEY)
    ticket = sealer.mint(_state(), epoch=2)
    with pytest.raises(TicketIntegrityError):
        sealer.redeem(ticket, current_epoch=1)


def test_replay_is_refused():
    sealer = TicketSealer(KEY)
    ticket = sealer.mint(_state(), epoch=0)
    sealer.redeem(ticket, current_epoch=0)
    with pytest.raises(TicketReplayError) as excinfo:
        sealer.redeem(ticket, current_epoch=0)
    assert (excinfo.value.epoch, excinfo.value.seq) == (0, 0)


def test_tampered_body_fails_integrity():
    sealer = TicketSealer(KEY)
    ticket = bytearray(sealer.mint(_state(), epoch=0))
    ticket[-1] ^= 0x01
    with pytest.raises(TicketIntegrityError):
        sealer.redeem(bytes(ticket), current_epoch=0)


def test_forged_epoch_header_fails_aad_binding():
    # Re-stamp a stale ticket's clear header to the current epoch: the
    # AAD binds the true epoch, so authentication must fail (integrity),
    # not slip through as a valid current-epoch ticket.
    sealer = TicketSealer(KEY)
    ticket = sealer.mint(_state(), epoch=0)
    _, _, seq = struct.unpack_from(">4sQQ", ticket)
    forged = struct.pack(">4sQQ", TICKET_MAGIC, 1, seq) + ticket[20:]
    with pytest.raises(TicketIntegrityError):
        sealer.redeem(forged, current_epoch=1)


def test_wrong_key_fails_integrity():
    ticket = TicketSealer(KEY).mint(_state(), epoch=0)
    other = TicketSealer(hkdf_sha256(b"\x43" * 32, info=b"other-key"))
    with pytest.raises(TicketIntegrityError):
        other.redeem(ticket, current_epoch=0)


def test_truncated_and_bad_magic_refused():
    sealer = TicketSealer(KEY)
    with pytest.raises(TicketIntegrityError):
        sealer.redeem(b"HT", current_epoch=0)
    ticket = bytearray(sealer.mint(_state(), epoch=0))
    ticket[:4] = b"NOPE"
    with pytest.raises(TicketIntegrityError):
        sealer.redeem(bytes(ticket), current_epoch=0)


def test_sequences_are_distinct_per_mint():
    sealer = TicketSealer(KEY)
    a = sealer.mint(_state(), epoch=0)
    b = sealer.mint(_state(), epoch=0)
    assert a != b
    assert sealer.redeem(a, current_epoch=0)
    assert sealer.redeem(b, current_epoch=0)


# ---------------------------------------------------------------------
# Channel nonce watermark: the replay contract survives suspend/resume
# ---------------------------------------------------------------------

def test_watermark_roundtrip_preserves_replay_protection():
    key = hkdf_sha256(b"\x07" * 32, info=b"channel-key")
    sender = SecureChannel(key, sign_messages=False)
    receiver = SecureChannel(key, sign_messages=False)
    stale = sender.seal(b"first")
    receiver.open(stale)
    receiver.open(sender.seal(b"second"))

    sent, _ = sender.nonce_watermark
    _, received = receiver.nonce_watermark
    assert sent == 2 and received == 2

    # Resume: fresh channel objects (same key here for simplicity; the
    # real path re-keys), watermarks carried over from the ticket.
    sender2 = SecureChannel(key, sign_messages=False)
    receiver2 = SecureChannel(key, sign_messages=False)
    sender2.restore_nonce_watermark(*sender.nonce_watermark)
    receiver2.restore_nonce_watermark(*receiver.nonce_watermark)

    # New traffic continues the counter space...
    assert receiver2.open(sender2.seal(b"third")) == b"third"
    # ...and anything from the suspended window stays refused.
    with pytest.raises(ChannelError):
        receiver2.open(stale)


def test_watermark_restore_rejects_negatives():
    channel = SecureChannel(hkdf_sha256(b"\x08" * 32), sign_messages=False)
    with pytest.raises(ValueError):
        channel.restore_nonce_watermark(-1, 0)
    with pytest.raises(ValueError):
        channel.restore_nonce_watermark(0, -1)
