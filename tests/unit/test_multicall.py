"""The multicall batch executor (wide call trees)."""

import pytest

from repro.evm import CallTracer, execute_transaction
from repro.state import JournaledState, Transaction, to_address
from repro.workloads.contracts import erc20
from repro.workloads.contracts.multicall import (
    multicall_calldata,
    multicall_runtime,
)
from repro.workloads.contracts.profile import profile_calldata, profile_runtime

from tests.conftest import ALICE

MULTI = to_address(0x4CA1)
TOKEN = to_address(0x70CE)


@pytest.fixture
def setup(backend):
    backend.ensure(MULTI).code = multicall_runtime()
    backend.ensure(TOKEN).code = erc20.erc20_runtime()
    profiles = [to_address(0x5100 + i) for i in range(3)]
    for address in profiles:
        backend.ensure(address).code = profile_runtime()
    return backend, profiles


def test_empty_batch(setup, chain):
    backend, _ = setup
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=MULTI, data=multicall_calldata([])),
    )
    assert result.success, result.error
    assert int.from_bytes(result.return_data, "big") == 0


def test_single_call(setup, chain):
    backend, profiles = setup
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(
            sender=ALICE, to=MULTI,
            data=multicall_calldata(
                [(profiles[0], profile_calldata(2, 10))]
            ),
        ),
    )
    assert result.success, result.error
    assert state.get_storage(profiles[0], 10) == 1
    assert state.get_storage(profiles[0], 11) == 1


def test_fan_out_across_targets(setup, chain):
    backend, profiles = setup
    calls = [
        (address, profile_calldata(1, index * 100))
        for index, address in enumerate(profiles)
    ]
    tracer = CallTracer()
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=MULTI, data=multicall_calldata(calls)),
        tracer=tracer,
    )
    assert result.success, result.error
    assert int.from_bytes(result.return_data, "big") == 3
    for index, address in enumerate(profiles):
        assert state.get_storage(address, index * 100) == 1
    # Wide tree: three sibling frames, depth only 2.
    assert tracer.max_depth == 2
    assert len(tracer.root.calls) == 3


def test_mixed_calldata_sizes(setup, chain):
    """Records of different (non-word-aligned) lengths parse correctly."""
    backend, profiles = setup
    calls = [
        (TOKEN, erc20.mint_calldata(ALICE, 500)),       # 68 bytes
        (profiles[0], profile_calldata(1, 7)),          # 96 bytes
        (TOKEN, erc20.transfer_calldata(profiles[1], 123)),
    ]
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=MULTI, data=multicall_calldata(calls)),
    )
    assert result.success, result.error
    # The token calls ran with MULTI as msg.sender: mint credited ALICE,
    # transfer moved from MULTI's (empty) balance and so reverted — but
    # multicall ignores per-call failure and continues.
    assert state.get_storage(TOKEN, erc20.balance_slot(ALICE)) == 500
    assert state.get_storage(profiles[0], 7) == 1


def test_failed_subcall_does_not_stop_batch(setup, chain):
    backend, profiles = setup
    backend.ensure(TOKEN).storage[erc20.balance_slot(MULTI)] = 10
    calls = [
        (TOKEN, erc20.transfer_calldata(ALICE, 10**9)),  # reverts
        (profiles[2], profile_calldata(1, 55)),          # still runs
    ]
    state = JournaledState(backend)
    result = execute_transaction(
        state, chain,
        Transaction(sender=ALICE, to=MULTI, data=multicall_calldata(calls)),
    )
    assert result.success
    assert state.get_storage(profiles[2], 55) == 1
    # The reverted transfer moved nothing.
    assert state.get_storage(TOKEN, erc20.balance_slot(MULTI)) == 10
