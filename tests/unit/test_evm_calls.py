"""CALL-RETURN semantics: subcalls, creates, static contexts, selfdestruct."""


from repro import rlp
from repro.crypto.keccak import keccak256
from repro.evm import CallTracer, execute_transaction
from repro.state import JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, deployer, push

from tests.conftest import ALICE

CALLER_C = to_address(0xCA)
CALLEE_C = to_address(0xCB)


def _store42_and_return_7():
    """Callee: slot0 := 42; return 7."""
    return assemble(
        push(42) + push(0) + ["SSTORE"]
        + push(7) + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )


def _call_program(kind: str, value: int = 0):
    """Caller: <kind> CALLEE, copy 32 ret bytes, return them."""
    value_ops = push(value) if kind in ("CALL", "CALLCODE") else []
    return assemble(
        push(32) + push(0)          # retLen, retOff (pushed reversed below)
        + push(0) + push(0)         # argsLen, argsOff
        + value_ops
        + ["PUSH20", int.from_bytes(CALLEE_C, "big"), "GAS", kind]
        + ["PUSH0", "MSTORE"]       # store success flag at 0
        # RETURNDATACOPY(dest=32, offset=0, len=32): push len, offset, dest.
        + push(32) + push(0) + push(32) + ["RETURNDATACOPY"]
        + push(64) + push(0) + ["RETURN"]
    )


def _setup(backend, kind, value=0):
    backend.ensure(CALLER_C).code = _call_program(kind, value)
    backend.ensure(CALLEE_C).code = _store42_and_return_7()
    backend.ensure(CALLER_C).balance = 10**6


def _run(backend, chain, tracer=None, value=0):
    state = JournaledState(backend)
    result = execute_transaction(
        state,
        chain,
        Transaction(sender=ALICE, to=CALLER_C, value=value),
        tracer=tracer,
    )
    return result, state


def _parse(result):
    success = int.from_bytes(result.return_data[:32], "big")
    ret = int.from_bytes(result.return_data[32:64], "big")
    return success, ret


def test_call_writes_callee_storage(backend, chain):
    _setup(backend, "CALL")
    result, state = _run(backend, chain)
    assert result.success, result.error
    success, ret = _parse(result)
    assert success == 1 and ret == 7
    assert state.get_storage(CALLEE_C, 0) == 42
    assert state.get_storage(CALLER_C, 0) == 0


def test_callcode_runs_in_caller_context(backend, chain):
    _setup(backend, "CALLCODE")
    result, state = _run(backend, chain)
    success, ret = _parse(result)
    assert success == 1 and ret == 7
    # Storage write lands in the CALLER's storage.
    assert state.get_storage(CALLER_C, 0) == 42
    assert state.get_storage(CALLEE_C, 0) == 0


def test_delegatecall_preserves_caller_and_value(backend, chain):
    callee = assemble(
        ["CALLER", "PUSH0", "MSTORE", "CALLVALUE"]
        + push(32) + ["MSTORE"]
        + push(64) + ["PUSH0", "RETURN"]
    )
    backend.ensure(CALLEE_C).code = callee
    backend.ensure(CALLER_C).code = assemble(
        push(64) + push(0) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(CALLEE_C, "big"), "GAS", "DELEGATECALL", "POP"]
        + push(64) + push(0) + push(0) + ["RETURNDATACOPY"]
        + push(64) + push(0) + ["RETURN"]
    )
    result, _ = _run(backend, chain, value=55)
    observed_caller = result.return_data[12:32]
    observed_value = int.from_bytes(result.return_data[32:64], "big")
    assert observed_caller == ALICE  # original caller, not CALLER_C
    assert observed_value == 55  # original value propagates


def test_staticcall_blocks_writes(backend, chain):
    _setup(backend, "STATICCALL")
    result, state = _run(backend, chain)
    success, _ = _parse(result)
    assert success == 0  # callee SSTORE hit WriteProtection
    assert state.get_storage(CALLEE_C, 0) == 0


def test_call_with_value_transfers(backend, chain):
    _setup(backend, "CALL", value=100)
    result, state = _run(backend, chain)
    success, _ = _parse(result)
    assert success == 1
    assert state.get_balance(CALLEE_C) == 100
    assert state.get_balance(CALLER_C) == 10**6 - 100


def test_call_insufficient_balance_fails_cleanly(backend, chain):
    _setup(backend, "CALL", value=10**9)  # caller only has 10**6
    result, state = _run(backend, chain)
    success, _ = _parse(result)
    assert success == 0
    assert state.get_balance(CALLEE_C) == 0


def test_failed_subcall_reverts_only_callee_state(backend, chain):
    # Callee writes then reverts; caller write must survive.
    backend.ensure(CALLEE_C).code = assemble(
        push(1) + push(0) + ["SSTORE", "PUSH0", "PUSH0", "REVERT"]
    )
    backend.ensure(CALLER_C).code = assemble(
        push(9) + push(1) + ["SSTORE"]  # caller's own write
        + push(0) + push(0) + push(0) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(CALLEE_C, "big"), "GAS", "CALL"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    result, state = _run(backend, chain)
    assert int.from_bytes(result.return_data, "big") == 0  # subcall failed
    assert state.get_storage(CALLER_C, 1) == 9
    assert state.get_storage(CALLEE_C, 0) == 0


def test_call_depth_recorded_by_tracer(backend, chain):
    _setup(backend, "CALL")
    tracer = CallTracer()
    _run(backend, chain, tracer=tracer)
    assert tracer.max_depth == 2
    assert tracer.root is not None
    assert tracer.root.calls[0].to == CALLEE_C


def test_returndata_out_of_bounds_fails(backend, chain):
    backend.ensure(CALLER_C).code = assemble(
        push(32) + push(0) + push(0) + ["RETURNDATACOPY"]
    )
    result, _ = _run(backend, chain)
    assert not result.success
    assert "ReturnData" in result.error


# -- CREATE -----------------------------------------------------------------


def test_create_deploys_runtime(backend, chain):
    runtime = assemble(push(1) + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"])
    init = deployer(runtime)
    creator = assemble(
        _memory_store_ops(init)
        + push(len(init)) + push(0) + push(0) + ["CREATE"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    backend.ensure(CALLER_C).code = creator
    result, state = _run(backend, chain)
    assert result.success, result.error
    new_address = to_address(int.from_bytes(result.return_data, "big"))
    assert new_address != to_address(0)
    assert state.get_code(new_address) == runtime
    # Address follows the rlp([sender, nonce]) rule (CALLER_C was seeded
    # with nonce 0, so its first CREATE uses nonce 0).
    expected = to_address(
        keccak256(rlp.encode([CALLER_C, rlp.encode_uint(0)]))
    )
    assert new_address == expected


def _memory_store_ops(data: bytes):
    ops = []
    for offset in range(0, len(data), 32):
        chunk = data[offset:offset + 32].ljust(32, b"\x00")
        ops += ["PUSH32", int.from_bytes(chunk, "big")] + push(offset) + ["MSTORE"]
    return ops


def test_create2_address_is_salt_derived(backend, chain):
    runtime = assemble(["STOP"])
    init = deployer(runtime)
    salt = 0x1234
    creator = assemble(
        _memory_store_ops(init)
        + push(salt) + push(len(init)) + push(0) + push(0) + ["CREATE2"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    backend.ensure(CALLER_C).code = creator
    result, state = _run(backend, chain)
    new_address = to_address(int.from_bytes(result.return_data, "big"))
    expected = to_address(
        keccak256(
            b"\xff" + CALLER_C + salt.to_bytes(32, "big") + keccak256(init)
        )
    )
    assert new_address == expected
    assert state.get_nonce(new_address) == 1


def test_create_failure_returns_zero(backend, chain):
    # Init code that reverts.
    init = assemble(["PUSH0", "PUSH0", "REVERT"])
    creator = assemble(
        _memory_store_ops(init)
        + push(len(init)) + push(0) + push(0) + ["CREATE"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    backend.ensure(CALLER_C).code = creator
    result, _ = _run(backend, chain)
    assert int.from_bytes(result.return_data, "big") == 0


def test_create_inside_static_fails(backend, chain):
    init = assemble(["STOP"])
    inner = assemble(
        _memory_store_ops(init)
        + push(len(init)) + push(0) + push(0) + ["CREATE", "POP", "STOP"]
    )
    backend.ensure(CALLEE_C).code = inner
    backend.ensure(CALLER_C).code = assemble(
        push(0) + push(0) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(CALLEE_C, "big"), "GAS", "STATICCALL"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    result, _ = _run(backend, chain)
    assert int.from_bytes(result.return_data, "big") == 0


def test_eip3541_rejects_ef_prefix(backend, chain):
    # Init code returning a runtime that starts with 0xEF must fail.
    bad_runtime = b"\xef\x00"
    init = deployer(bad_runtime)
    creator = assemble(
        _memory_store_ops(init)
        + push(len(init)) + push(0) + push(0) + ["CREATE"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    backend.ensure(CALLER_C).code = creator
    result, _ = _run(backend, chain)
    assert int.from_bytes(result.return_data, "big") == 0


# -- SELFDESTRUCT --------------------------------------------------------------


def test_selfdestruct_moves_balance(backend, chain):
    backend.ensure(CALLEE_C).code = assemble(
        ["PUSH20", int.from_bytes(ALICE, "big"), "SELFDESTRUCT"]
    )
    backend.ensure(CALLEE_C).balance = 5_000
    state = JournaledState(backend)
    alice_before = state.get_balance(ALICE)
    result = execute_transaction(
        state, chain, Transaction(sender=ALICE, to=CALLEE_C)
    )
    assert result.success, result.error
    assert not state.account_exists(CALLEE_C)
    # Alice got the 5000 minus her own gas spend (fees charged).
    assert state.get_balance(ALICE) > alice_before - 100_000


def test_selfdestruct_blocked_in_static(backend, chain):
    backend.ensure(CALLEE_C).code = assemble(
        ["PUSH20", int.from_bytes(ALICE, "big"), "SELFDESTRUCT"]
    )
    backend.ensure(CALLER_C).code = assemble(
        push(0) + push(0) + push(0) + push(0)
        + ["PUSH20", int.from_bytes(CALLEE_C, "big"), "GAS", "STATICCALL"]
        + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    )
    result, state = _run(backend, chain)
    assert int.from_bytes(result.return_data, "big") == 0
    assert state.account_exists(CALLEE_C)
