"""The pluggable CryptoBackend tier: registry, validation, identity.

Every registered backend must be a drop-in for every other one — same
Keccak digests, same AEAD wire bytes, same ECDSA verdicts.  These tests
pin that invariant with known-answer vectors and cross-backend checks;
the perf plane (``perf-bench``) additionally gates whole-workload
byte-identity pairwise.
"""

import pytest

from repro.core.device import DeviceConfig
from repro.crypto.backend import (
    DEFAULT_BACKEND,
    UnknownBackendError,
    activate,
    active_backend,
    available_backends,
    get_backend,
)
from repro.crypto.keccak import (
    keccak256,
    keccak256_many,
    keccak_memo_stats,
    reset_keccak_memo,
)

# Ethereum Keccak-256 known answers (0x01 multi-rate padding, not NIST
# SHA3).  The first two are the canonical published vectors; the
# 200-byte message spans two rate-sized (136 B) blocks and is pinned
# against the repo's KAT-validated scalar sponge, so a vectorized
# engine with a broken multi-block absorb cannot pass.
KNOWN_VECTORS = [
    (b"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"),
    (b"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"),
    (
        b"\xa3" * 200,
        "3a57666b048777f2c953dc4456f45a2588e1cb6f2da760122d530ac2ce607d4a",
    ),
]


# ---------------------------------------------------------------------------
# Registry + DeviceConfig validation
# ---------------------------------------------------------------------------


def test_registry_lists_all_three_tiers():
    assert set(available_backends()) == {"reference", "numpy", "hashlib"}
    for name in available_backends():
        assert get_backend(name).name == name


def test_unknown_backend_is_typed():
    with pytest.raises(UnknownBackendError) as excinfo:
        get_backend("gpu")
    assert excinfo.value.kind == "crypto"
    assert excinfo.value.name == "gpu"
    assert "reference" in str(excinfo.value)


def test_device_config_rejects_unknown_crypto_backend():
    with pytest.raises(UnknownBackendError) as excinfo:
        DeviceConfig(crypto_backend="quantum")
    assert excinfo.value.kind == "crypto"


def test_device_config_rejects_unknown_oram_backend():
    with pytest.raises(UnknownBackendError) as excinfo:
        DeviceConfig(oram_backend="cuckoo")
    assert excinfo.value.kind == "oram"
    assert "path" in str(excinfo.value)


def test_device_config_accepts_every_registered_backend():
    for name in available_backends():
        assert DeviceConfig(crypto_backend=name).crypto_backend == name


def test_activate_roundtrip():
    before = active_backend().name
    try:
        activate("reference")
        assert active_backend().name == "reference"
    finally:
        activate(before)
    assert active_backend().name == before


def test_default_backend_is_registered():
    assert DEFAULT_BACKEND in available_backends()


# ---------------------------------------------------------------------------
# Keccak known answers, per backend engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", ["reference", "numpy", "hashlib"])
@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_keccak_kat_per_backend_engine(backend_name, message, expected):
    engine = get_backend(backend_name).keccak_engine()
    assert engine.hash_one(message).hex() == expected
    # Bury the vector inside a mixed batch so the lane-wise engines
    # cannot pass via a scalar fallback alone.
    batch = [b"filler-%d" % i for i in range(7)] + [message] * 3
    digests = engine.hash_many(batch)
    assert [d.hex() for d in digests[-3:]] == [expected] * 3
    assert digests[0] == keccak256(b"filler-0")


@pytest.mark.parametrize("backend_name", ["reference", "numpy", "hashlib"])
def test_keccak256_under_each_activated_backend(backend_name):
    before = active_backend().name
    try:
        activate(backend_name)
        reset_keccak_memo()
        for message, expected in KNOWN_VECTORS:
            assert keccak256(message).hex() == expected
    finally:
        activate(before)


# ---------------------------------------------------------------------------
# AEAD wire identity across backends
# ---------------------------------------------------------------------------


def test_aead_wire_bytes_identical_across_backends():
    key = bytes(range(32))
    nonce = b"\x00" * 11 + b"\x07"
    plaintext = b"pre-execution trace report" * 9
    aad = b"session-42"
    blobs = {
        name: get_backend(name).aead_factory(key).encrypt(nonce, plaintext, aad)
        for name in available_backends()
    }
    assert len(set(blobs.values())) == 1, blobs.keys()
    for name, blob in blobs.items():
        assert (
            get_backend(name).aead_factory(key).decrypt(nonce, blob, aad)
            == plaintext
        )


# ---------------------------------------------------------------------------
# Memo counters
# ---------------------------------------------------------------------------


def test_keccak_memo_counters_track_hits_and_misses():
    reset_keccak_memo()
    keccak256(b"counter-probe")
    keccak256(b"counter-probe")
    stats = keccak_memo_stats()
    assert stats.misses == 1
    assert stats.hits == 1
    assert stats.lookups == 2
    assert stats.hit_rate == pytest.approx(0.5)


def test_keccak256_many_dedupes_within_a_batch():
    reset_keccak_memo()
    digests = keccak256_many([b"dup", b"dup", b"only"])
    assert digests[0] == digests[1] == keccak256(b"dup")
    assert digests[2] == keccak256(b"only")


def test_access_summary_carries_keccak_counters():
    from repro.oram.client import AccessSummary

    summary = AccessSummary(keccak_hits=3, keccak_misses=1)
    assert summary.keccak_hits == 3
    assert summary.keccak_misses == 1
