"""Paged world-state schema, oblivious backend, prefetcher, encrypted store."""

import pytest

from repro.oram import paging
from repro.oram.adapter import ObliviousStateBackend
from repro.oram.client import PathOramClient
from repro.oram.encrypted_store import EncryptedKvStore
from repro.oram.prefetch import CodePrefetcher
from repro.oram.server import OramServer
from repro.crypto.kdf import Drbg
from repro.state import Account, AccountMeta, EMPTY_CODE_HASH, to_address


@pytest.fixture
def backend():
    server = OramServer(height=8)
    client = PathOramClient(server, key=b"x" * 32)
    return ObliviousStateBackend(client)


# -- page schema -------------------------------------------------------------


def test_page_keys_distinct():
    address = to_address(1)
    keys = {
        paging.account_page_key(address),
        paging.storage_page_key(address, 0),
        paging.code_page_key(address, 0),
    }
    assert len(keys) == 3


def test_storage_keys_group_32():
    address = to_address(1)
    assert paging.storage_page_key(address, 0) == paging.storage_page_key(address, 31)
    assert paging.storage_page_key(address, 31) != paging.storage_page_key(address, 32)


def test_account_page_roundtrip():
    meta = AccountMeta(10**18, 5, b"\xaa" * 32, 777)
    page = paging.encode_account_page(meta)
    assert len(page) == paging.PAGE_SIZE
    decoded = paging.decode_account_page(page)
    assert decoded == meta


def test_account_page_none_is_empty():
    decoded = paging.decode_account_page(None)
    assert decoded.balance == 0 and decoded.code_hash == EMPTY_CODE_HASH


def test_storage_page_roundtrip():
    values = {32 * 3 + 5: 99, 32 * 3 + 31: 12345}
    page = paging.encode_storage_page(values, group=3)
    assert len(page) == paging.PAGE_SIZE
    assert paging.decode_storage_record(page, 32 * 3 + 5) == 99
    assert paging.decode_storage_record(page, 32 * 3 + 31) == 12345
    assert paging.decode_storage_record(page, 32 * 3 + 6) == 0
    assert paging.decode_storage_record(None, 5) == 0


def test_page_directory_densifies():
    directory = paging.PageDirectory()
    a = directory.id_for(b"page-a")
    b = directory.id_for(b"page-b")
    assert (a, b) == (0, 1)
    assert directory.id_for(b"page-a") == 0
    assert len(directory) == 2


# -- oblivious backend -----------------------------------------------------------


def test_sync_and_read_account(backend):
    address = to_address(0xAB)
    account = Account(balance=5, nonce=2, code=b"\x60\x01" * 700, storage={3: 7, 40: 8})
    pages = backend.sync_account(address, account)
    assert pages == 1 + 2 + 2  # meta + 2 storage groups + 2 code pages
    meta = backend.get_meta(address)
    assert meta.balance == 5 and meta.code_size == 1400
    assert backend.get_storage(address, 3) == 7
    assert backend.get_storage(address, 40) == 8
    assert backend.get_storage(address, 41) == 0
    assert backend.get_code(address) == account.code


def test_absent_account_reads_empty(backend):
    address = to_address(0xCD)
    assert not backend.get_meta(address).exists
    assert backend.get_storage(address, 1) == 0
    assert backend.get_code(address) == b""


def test_query_stats_by_kind(backend):
    address = to_address(0xAB)
    backend.sync_account(address, Account(balance=1, code=b"\x01" * 100))
    backend.get_meta(address)
    backend.get_storage(address, 0)
    backend.get_code(address)
    stats = backend.stats
    assert stats.account_queries == 1
    assert stats.storage_queries == 1
    assert stats.code_queries == 1
    assert stats.total == 3


def test_prefetch_query_kind(backend):
    address = to_address(0xAB)
    backend.sync_account(address, Account(code=b"\x01" * 2000))
    backend.prefetch_code_page(address, 1)
    assert backend.stats.prefetch_queries == 1


def test_block_size_mismatch_rejected():
    server = OramServer(height=4)
    client = PathOramClient(server, key=b"x" * 32, block_size=512)
    with pytest.raises(ValueError):
        ObliviousStateBackend(client)


def test_clock_timestamps_recorded():
    server = OramServer(height=4)
    client = PathOramClient(server, key=b"x" * 32)
    now = {"t": 0.0}
    backend = ObliviousStateBackend(client, clock=lambda: now["t"])
    now["t"] = 123.0
    backend.get_meta(to_address(1))
    assert backend.stats.log[-1].sim_time_us == 123.0


# -- prefetcher ---------------------------------------------------------------------


def test_prefetcher_spreads_pages():
    prefetcher = CodePrefetcher(Drbg(b"p"), initial_gap_us=100.0)
    prefetcher.queue_code_pages(to_address(1), 1, 5)
    assert prefetcher.pending_count == 5
    fired = prefetcher.due(10_000.0)
    assert len(fired) == 5
    times = [entry.fire_time_us for entry in fired]
    assert times == sorted(times)
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Gaps are randomized around half the mean gap: within (25, 75).
    assert all(25.0 <= gap <= 75.0 for gap in gaps)


def test_prefetcher_nothing_due_before_deadline():
    prefetcher = CodePrefetcher(Drbg(b"p"), initial_gap_us=1000.0)
    prefetcher.queue_code_pages(to_address(1), 0, 3)
    assert prefetcher.due(1.0) == []
    assert prefetcher.pending_count == 4


def test_prefetcher_drain_flushes_all():
    prefetcher = CodePrefetcher(Drbg(b"p"))
    prefetcher.queue_code_pages(to_address(1), 0, 9)
    fired = prefetcher.drain(now_us=0.0, gap_us=50.0)
    assert len(fired) == 10
    assert prefetcher.pending_count == 0
    assert [e.fire_time_us for e in fired] == [i * 50.0 for i in range(10)]


def test_prefetcher_disabled_never_fires():
    prefetcher = CodePrefetcher(Drbg(b"p"), enabled=False)
    prefetcher.queue_code_pages(to_address(1), 0, 3)
    assert prefetcher.due(10**9) == []


def test_prefetcher_adapts_mean_gap():
    prefetcher = CodePrefetcher(Drbg(b"p"), initial_gap_us=1000.0, ema_alpha=0.5)
    before = prefetcher._mean_gap_us
    prefetcher.on_query(100.0)
    prefetcher.on_query(200.0)  # observed gap 100
    assert prefetcher._mean_gap_us < before


def test_prefetcher_clear():
    prefetcher = CodePrefetcher(Drbg(b"p"))
    prefetcher.queue_code_pages(to_address(1), 0, 3)
    prefetcher.clear()
    assert prefetcher.pending_count == 0


# -- encrypted (non-oblivious) store ----------------------------------------------


def test_encrypted_store_roundtrip():
    store = EncryptedKvStore(b"k" * 32)
    store.put(b"alpha", b"value-1")
    assert store.get(b"alpha") == b"value-1"
    assert store.get(b"beta") is None


def test_encrypted_store_handles_are_stable():
    store = EncryptedKvStore(b"k" * 32)
    store.put(b"alpha", b"v")
    store.get(b"alpha")
    store.get(b"alpha")
    handles = {event.handle for event in store.trace.events}
    assert len(handles) == 1  # the leak: same key -> same handle, always
