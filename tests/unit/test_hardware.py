"""Hardware model: memory layers, timing, area model, CSU."""

import pytest

from repro.crypto.kdf import Drbg
from repro.crypto.ecc import InvalidSignature
from repro.hardware.csu import (
    BootImage,
    ConfigurationSecurityUnit,
    SecureBootError,
    verify_boot_receipt,
)
from repro.hardware.memory_layers import (
    CodeCache,
    Layer2CallStack,
    MemoryOverflowError,
    WorldStateCache,
)
from repro.hardware.resources import (
    HypervisorMemoryBudget,
    XCZU15EV,
    hevm_resources,
    max_hevms,
)
from repro.hardware.timing import CostModel, SimClock, TimeBreakdown
from repro.crypto.puf import Manufacturer


# -- SimClock ---------------------------------------------------------------


def test_clock_advances():
    clock = SimClock()
    clock.advance_us(5.0)
    clock.advance_us(2.5)
    assert clock.now_us == 7.5


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance_us(-1.0)


def test_clock_advance_to_is_monotone():
    clock = SimClock()
    clock.advance_us(10.0)
    clock.advance_to(5.0)  # no-op: already past
    assert clock.now_us == 10.0
    clock.advance_to(20.0)
    assert clock.now_us == 20.0


# -- cost model ----------------------------------------------------------------


def test_oram_access_cost_dominated_by_rtt():
    cost = CostModel()
    access = cost.oram_access_us(tree_height=12, bucket_size=4, block_kb=1.0)
    assert access > cost.ethernet_rtt_us
    assert access < 2 * cost.ethernet_rtt_us


def test_hevm_cycle_time_matches_100mhz():
    cost = CostModel()
    assert cost.hevm_cycle_us == pytest.approx(0.01)  # 10 ns
    assert cost.hevm_instruction_us("stack", 100) == pytest.approx(1.0)


def test_geth_faster_per_simple_op_than_hevm():
    # A 4.35 GHz OoO core interprets simple ops faster than a 0.1 GHz
    # pipeline executes them; the HEVM wins on call-frame handling.
    cost = CostModel()
    assert cost.geth_instruction_us("arithmetic") > 0
    assert cost.geth_instruction_us("call_return") > cost.hevm_instruction_us(
        "call_return"
    )


def test_time_breakdown_totals():
    breakdown = TimeBreakdown(execution_us=1.0, signature_us=2.0)
    other = TimeBreakdown(oram_code_us=3.0)
    breakdown.add(other)
    assert breakdown.total_us == 6.0


# -- area model ------------------------------------------------------------------


def test_hevm_resources_match_paper():
    resources = hevm_resources()
    assert resources.luts == 103_388
    assert resources.ffs == 37_104
    assert resources.bram_bytes == 509 * 1024


def test_three_hevms_lut_bound():
    count, bottleneck = max_hevms()
    assert count == 3
    assert bottleneck == "LUT"


def test_chip_budget_sanity():
    per_hevm = hevm_resources()
    assert per_hevm.luts * 4 > XCZU15EV.luts  # four would not fit


def test_hypervisor_memory_budget():
    budget = HypervisorMemoryBudget()
    assert budget.total_kb == 248
    assert budget.heap_kb == 0
    assert budget.fits


# -- layer 2 call stack ------------------------------------------------------------


def _l2(capacity_kb=64, noise=False):
    return Layer2CallStack(
        capacity_bytes=capacity_kb * 1024,
        rng=Drbg(b"test"),
        noise_enabled=noise,
    )


def test_pages_for_rounding():
    assert Layer2CallStack.pages_for(0) == 1
    assert Layer2CallStack.pages_for(1) == 1
    assert Layer2CallStack.pages_for(1024) == 1
    assert Layer2CallStack.pages_for(1025) == 2


def test_no_swap_when_fitting():
    l2 = _l2(capacity_kb=64)
    events = l2.push_frame(10 * 1024)
    assert events == []
    assert l2.resident_pages == 10


def test_frame_limit_half_of_l2():
    l2 = _l2(capacity_kb=64)
    with pytest.raises(MemoryOverflowError):
        l2.push_frame(33 * 1024)  # > 32 KB limit


def test_expand_to_overflow():
    l2 = _l2(capacity_kb=64)
    l2.push_frame(1024)
    with pytest.raises(MemoryOverflowError):
        l2.expand_current(40 * 1024)


def test_bottom_frames_dump_when_full():
    l2 = _l2(capacity_kb=64)
    l2.push_frame(30 * 1024)
    l2.push_frame(30 * 1024)
    events = l2.push_frame(30 * 1024)  # 90 KB total > 64 KB
    assert any(event.direction == "out" for event in events)
    assert l2.resident_pages <= l2.capacity_pages


def test_pop_reloads_dumped_frame():
    l2 = _l2(capacity_kb=64)
    l2.push_frame(30 * 1024)
    l2.push_frame(30 * 1024)
    l2.push_frame(30 * 1024)  # bottom dumped
    events = l2.pop_frame()
    # Returning into the (resident) middle frame: no reload yet.
    events += l2.pop_frame()
    # Now the bottom frame must come back.
    reloads = [event for event in events if event.direction == "in"]
    assert len(reloads) == 1
    assert reloads[0].real_pages == 30


def test_swap_noise_inflates_counts():
    l2_noisy = _l2(capacity_kb=64, noise=True)
    l2_noisy.push_frame(30 * 1024)
    l2_noisy.push_frame(30 * 1024)
    events = l2_noisy.push_frame(30 * 1024)
    for event in events:
        assert event.page_count >= event.real_pages


def test_noise_disabled_counts_exact():
    l2 = _l2(capacity_kb=64, noise=False)
    l2.push_frame(30 * 1024)
    l2.push_frame(30 * 1024)
    events = l2.push_frame(30 * 1024)
    for event in events:
        assert event.page_count == event.real_pages


def test_reset_clears_everything():
    l2 = _l2()
    l2.push_frame(1024)
    l2.reset()
    assert l2.depth == 0
    assert l2.resident_pages == 0


def test_expand_is_monotone():
    l2 = _l2()
    l2.push_frame(1024)
    l2.expand_current(5 * 1024)
    l2.expand_current(3 * 1024)  # shrink attempts are ignored
    assert l2.resident_pages == 5


# -- L1 caches -----------------------------------------------------------------------


def test_world_state_cache_lru():
    cache = WorldStateCache(capacity_records=2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.get(("a",)) == 1  # refresh a
    cache.put(("c",), 3)  # evicts b
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == 1
    assert cache.hits == 2 and cache.misses == 1


def test_world_state_cache_clear():
    cache = WorldStateCache()
    cache.put(("a",), 1)
    cache.clear()
    assert cache.get(("a",)) is None


def test_code_cache_page_capacity():
    cache = CodeCache(capacity_bytes=2048)  # 2 pages
    cache.put(b"A" * 20, 0, b"p0")
    cache.put(b"A" * 20, 1, b"p1")
    cache.put(b"A" * 20, 2, b"p2")  # evicts page 0
    assert cache.get(b"A" * 20, 0) is None
    assert cache.get(b"A" * 20, 2) == b"p2"


# -- CSU / secure boot ------------------------------------------------------------------


def _provisioned():
    manufacturer = Manufacturer(b"m-secret")
    puf, identity = manufacturer.provision(b"serial-1")
    return manufacturer, ConfigurationSecurityUnit(puf, identity)


def test_secure_boot_and_receipt_verification():
    manufacturer, csu = _provisioned()
    image = BootImage("hv", b"firmware-bytes")
    receipt = csu.secure_boot(image)
    assert csu.booted
    verify_boot_receipt(receipt, manufacturer.root_public_key)


def test_boot_rejects_wrong_measurement():
    _, csu = _provisioned()
    image = BootImage("hv", b"firmware-bytes")
    golden = BootImage("hv", b"other-firmware").measurement()
    with pytest.raises(SecureBootError):
        csu.secure_boot(image, expected_measurement=golden)


def test_receipt_from_forged_device_rejected():
    manufacturer, _ = _provisioned()
    rogue = Manufacturer(b"rogue")
    rogue_puf, rogue_identity = rogue.provision(b"serial-1")
    rogue_csu = ConfigurationSecurityUnit(rogue_puf, rogue_identity)
    receipt = rogue_csu.secure_boot(BootImage("hv", b"firmware-bytes"))
    with pytest.raises(InvalidSignature):
        verify_boot_receipt(receipt, manufacturer.root_public_key)


def test_receipt_pins_image_measurement():
    manufacturer, csu = _provisioned()
    receipt = csu.secure_boot(BootImage("hv", b"unexpected-firmware"))
    with pytest.raises(SecureBootError):
        verify_boot_receipt(
            receipt,
            manufacturer.root_public_key,
            expected_measurement=BootImage("hv", b"golden").measurement(),
        )
