"""Accounts, backends, and the authenticated WorldState."""

import pytest

from repro.crypto.keccak import keccak256
from repro.state import (
    Account,
    CODE_PAGE_SIZE,
    DictBackend,
    EMPTY_CODE_HASH,
    WorldState,
    assemble_code,
    to_address,
)
from repro.trie import EMPTY_ROOT, ProofError


def test_to_address_normalization():
    assert to_address(0) == b"\x00" * 20
    assert to_address(1)[-1] == 1
    assert len(to_address(2**200)) == 20  # truncates mod 2^160
    assert to_address(b"\x01\x02") == b"\x00" * 18 + b"\x01\x02"
    assert to_address(b"\xff" * 25) == b"\xff" * 20


def test_account_code_hash():
    assert Account().code_hash == EMPTY_CODE_HASH
    account = Account(code=b"\x60\x00")
    assert account.code_hash == keccak256(b"\x60\x00")


def test_account_emptiness():
    assert Account().is_empty
    assert not Account(balance=1).is_empty
    assert not Account(nonce=1).is_empty
    assert not Account(code=b"\x00").is_empty


def test_account_storage_root_empty():
    assert Account().storage_root() == EMPTY_ROOT
    # Zero-valued slots do not contribute.
    assert Account(storage={1: 0}).storage_root() == EMPTY_ROOT


def test_account_copy_is_deep():
    account = Account(balance=5, storage={1: 2})
    clone = account.copy()
    clone.storage[1] = 99
    assert account.storage[1] == 2


def test_dict_backend_meta():
    backend = DictBackend()
    assert not backend.get_meta(to_address(1)).exists
    backend.ensure(to_address(1)).balance = 7
    meta = backend.get_meta(to_address(1))
    assert meta.exists and meta.balance == 7


def test_dict_backend_code_pages():
    backend = DictBackend()
    address = to_address(5)
    code = bytes(range(256)) * 5  # 1280 bytes: 2 pages
    backend.ensure(address).code = code
    page0 = backend.get_code_page(address, 0)
    page1 = backend.get_code_page(address, 1)
    assert len(page0) == len(page1) == CODE_PAGE_SIZE
    assert page0 == code[:1024]
    assert page1[: 1280 - 1024] == code[1024:]
    assert page1[1280 - 1024:] == b"\x00" * (2048 - 1280)
    assert assemble_code(backend, address) == code


def test_apply_writes_and_delete():
    backend = DictBackend()
    address = to_address(9)
    backend.apply_writes({address: 100}, {address: 2}, {(address, 5): 7}, {})
    assert backend.get_meta(address).balance == 100
    assert backend.get_storage(address, 5) == 7
    backend.apply_writes({}, {}, {(address, 5): 0}, {})
    assert backend.get_storage(address, 5) == 0
    backend.apply_writes({}, {}, {}, {}, deleted={address})
    assert not backend.get_meta(address).exists


def test_world_state_commit_deterministic():
    ws1 = WorldState()
    ws2 = WorldState()
    for ws in (ws1, ws2):
        ws.ensure(to_address(1)).balance = 10
        ws.ensure(to_address(2)).code = b"\x60\x01"
    assert ws1.commit() == ws2.commit()


def test_world_state_root_changes_with_state():
    ws = WorldState()
    ws.ensure(to_address(1)).balance = 10
    root_a = ws.commit()
    ws.ensure(to_address(1)).balance = 11
    assert ws.commit() != root_a


def test_empty_accounts_excluded_from_root():
    ws = WorldState()
    ws.ensure(to_address(1))  # empty
    assert ws.commit() == EMPTY_ROOT


def test_account_proof_roundtrip():
    ws = WorldState()
    address = to_address(0xAB)
    ws.ensure(address).balance = 1234
    ws.ensure(address).nonce = 5
    ws.ensure(to_address(0xCD)).balance = 9
    root = ws.commit()
    proof = ws.prove_account(address)
    proven = WorldState.verify_account_proof(root, address, proof)
    assert proven is not None
    assert proven.meta.balance == 1234 and proven.meta.nonce == 5
    assert proven.storage_root == ws.storage_root_of(address)


def test_account_non_membership_proof():
    ws = WorldState()
    ws.ensure(to_address(1)).balance = 5
    root = ws.commit()
    absent = to_address(0xFEED)
    proof = ws.prove_account(absent)
    assert WorldState.verify_account_proof(root, absent, proof) is None


def test_account_proof_wrong_root_rejected():
    ws = WorldState()
    address = to_address(1)
    ws.ensure(address).balance = 5
    ws.commit()
    proof = ws.prove_account(address)
    with pytest.raises(ProofError):
        WorldState.verify_account_proof(b"\x00" * 32, address, proof)


def test_storage_proof_roundtrip():
    ws = WorldState()
    address = to_address(0xAB)
    ws.ensure(address).storage.update({3: 42, 99: 7})
    storage_root = ws.storage_root_of(address)
    proof = ws.prove_storage(address, 3)
    assert WorldState.verify_storage_proof(storage_root, 3, proof) == 42
    absent_proof = ws.prove_storage(address, 1000)
    assert WorldState.verify_storage_proof(storage_root, 1000, absent_proof) == 0


def test_world_state_copy_isolated():
    ws = WorldState()
    ws.ensure(to_address(1)).balance = 5
    clone = ws.copy()
    clone.ensure(to_address(1)).balance = 99
    assert ws.accounts[to_address(1)].balance == 5
