"""Deterministic fan-out: parallel sweeps reduce to serial results."""

import pytest

from repro.perf.parallel import default_worker_count, run_parallel


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def test_serial_matches_parallel():
    items = list(range(20))
    serial = run_parallel(_square, items, workers=1)
    parallel = run_parallel(_square, items, workers=4)
    assert serial == parallel == [x * x for x in items]


def test_results_in_input_order():
    # Items of wildly different sizes still reduce in input order.
    items = [2000, 1, 1500, 3, 900]
    assert run_parallel(_square, items, workers=3) == [n * n for n in items]


def test_none_and_zero_workers_run_serially():
    assert run_parallel(_square, [1, 2, 3], workers=None) == [1, 4, 9]
    assert run_parallel(_square, [1, 2, 3], workers=0) == [1, 4, 9]


def test_single_item_skips_the_pool():
    assert run_parallel(_square, [7], workers=8) == [49]


def test_empty_items():
    assert run_parallel(_square, [], workers=4) == []


def test_worker_exception_propagates():
    with pytest.raises(ValueError):
        run_parallel(_fail_on_three, [1, 2, 3, 4], workers=2)
    with pytest.raises(ValueError):
        run_parallel(_fail_on_three, [1, 2, 3, 4], workers=1)


def test_default_worker_count_positive():
    assert default_worker_count() >= 1
