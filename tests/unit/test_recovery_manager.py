"""RecoveryManager: checkpoint/journal round-trips and boot verification.

The adversary model throughout: the :class:`DurableStore` is the SP's
disk and does whatever it likes — these tests *are* the malicious SP
(dropping records, flipping bytes, restoring old snapshots) and assert
the trusted side refuses every forgery at boot.
"""

from types import SimpleNamespace

import hashlib

import pytest

from repro.core.device import DeviceConfig
from repro.crypto.kdf import Drbg
from repro.hardware.csu import MonotonicCounter
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer
from repro.recovery.manager import RecoveryIntegrityError, RecoveryManager
from repro.recovery.store import DurableStore

pytestmark = pytest.mark.recovery

_KEY = b"k" * 32


class _Csu:
    """PUF-free stand-in: deterministic sealing-key derivation."""

    def derive_sealing_key(self, label: bytes) -> bytes:
        return hashlib.sha256(b"unit-puf|" + label).digest()


def _device():
    return SimpleNamespace(csu=_Csu(), nvram=MonotonicCounter(), config=DeviceConfig())


def _deployment(checkpoint_interval=100):
    """A journaling ORAM client over a fake device, no service needed."""
    server = OramServer(height=4)
    client = PathOramClient(server, key=_KEY, block_size=64, rng=Drbg(b"r"))
    device = _device()
    store = DurableStore()
    manager = RecoveryManager(
        device, store, checkpoint_interval=checkpoint_interval, oram_key=_KEY
    )
    manager.reattach(SimpleNamespace(devices=[]), client)
    manager.checkpoint()
    return server, client, device, store, manager


def test_recover_roundtrip_restores_trusted_state():
    server, client, device, store, manager = _deployment()
    for i in range(6):
        client.access(b"key%d" % i, b"value%d" % i)
    expected = client.snapshot_trusted_state()

    manager2, state, replayed = RecoveryManager.recover(device, store)
    assert replayed == manager.records_written
    assert state.stash == expected["stash"]
    assert state.positions == expected["positions"]
    assert state.node_versions == expected["node_versions"]
    assert state.nonce_counter >= expected["nonce_counter"]

    rebuilt = manager2.rebuild_client(state, server, generation=1)
    for i in range(6):
        assert rebuilt.read(b"key%d" % i).rstrip(b"\x00") == b"value%d" % i


def test_nonce_counter_never_regresses_across_crash():
    """No AEAD nonce reuse after crash-recover: the write-ahead lease
    covers every nonce the dead instance could have put on the wire."""
    server, client, device, store, manager = _deployment()
    for i in range(4):
        client.access(b"key%d" % i, b"v")
    burned = client._nonce_counter
    # Worst case: a lease was journaled and the crash hit before the
    # access record confirmed how much of it was used.
    manager.reserve_nonces(client._nonce_counter, 50)

    manager2, state, _ = RecoveryManager.recover(device, store)
    assert state.nonce_counter >= burned + 50
    rebuilt = manager2.rebuild_client(state, server, generation=1)
    start = rebuilt._nonce_counter
    assert start >= burned + 50
    rebuilt.access(b"key0")
    assert rebuilt._nonce_counter > start  # fresh nonces only


def test_periodic_checkpoint_prunes_old_epochs():
    server, client, device, store, manager = _deployment(checkpoint_interval=2)
    for i in range(8):
        client.access(b"key%d" % i, b"v")
    assert manager.checkpoints_written >= 4
    # Only the live epoch survives in the store.
    assert len(store.keys("checkpoint/")) == 1
    assert store.keys("checkpoint/")[0] == manager._checkpoint_key(manager.epoch)
    manager2, state, _ = RecoveryManager.recover(device, store)
    rebuilt = manager2.rebuild_client(state, server, generation=1)
    assert rebuilt.read(b"key7").rstrip(b"\x00") == b"v"


def test_store_rollback_refused_at_boot():
    """The SP restoring an older (checkpoint + journal) snapshot of the
    whole store trips the hardware monotonic counter."""
    server, client, device, store, manager = _deployment()
    client.access(b"key", b"v1")
    manager.checkpoint()
    snapshot = store.snapshot()
    client.access(b"key", b"v2")  # advances the NVRAM pin past the snapshot
    store.restore(snapshot)
    with pytest.raises(RecoveryIntegrityError, match="rollback"):
        RecoveryManager.recover(device, store)


def test_journal_gap_refused():
    server, client, device, store, manager = _deployment()
    client.access(b"key", b"v")  # lease (seq 1) + access (seq 2)
    journal_keys = store.keys("journal/")
    assert len(journal_keys) >= 2
    store.delete(journal_keys[0])  # drop a middle record, keep the tail
    with pytest.raises(RecoveryIntegrityError, match="gap"):
        RecoveryManager.recover(device, store)


def test_tampered_checkpoint_refused():
    server, client, device, store, manager = _deployment()
    client.access(b"key", b"v")
    manager.checkpoint()
    key = store.keys("checkpoint/")[-1]
    blob = bytearray(store.get(key))
    blob[-1] ^= 1
    store.put(key, bytes(blob))
    with pytest.raises(RecoveryIntegrityError, match="unseal"):
        RecoveryManager.recover(device, store)


def test_tampered_journal_record_refused():
    server, client, device, store, manager = _deployment()
    client.access(b"key", b"v")
    key = store.keys("journal/")[-1]
    blob = bytearray(store.get(key))
    blob[0] ^= 1
    store.put(key, bytes(blob))
    with pytest.raises(RecoveryIntegrityError, match="unseal"):
        RecoveryManager.recover(device, store)


def test_empty_store_refused():
    with pytest.raises(RecoveryIntegrityError, match="no checkpoint"):
        RecoveryManager.recover(_device(), DurableStore())


def test_sessions_and_sync_root_survive_recovery():
    server, client, device, store, manager = _deployment()
    session = SimpleNamespace(
        session_id=b"\x05" * 16,
        user_public=SimpleNamespace(to_bytes=lambda: b"\x06" * 65),
        established_at_us=1234.5,
    )
    manager.note_session(session, device_index=1)
    manager.note_sync_root(b"\x07" * 32)
    _, state, _ = RecoveryManager.recover(device, store)
    record = state.sessions[session.session_id.hex()]
    assert record.user_public == b"\x06" * 65
    assert record.device_index == 1
    assert state.sync_root == b"\x07" * 32


def test_monotonic_counter_rejects_regression():
    counter = MonotonicCounter()
    counter.advance_to(10)
    with pytest.raises(ValueError):
        counter.advance_to(9)
    counter.advance_to(10)  # equal is allowed (idempotent re-pin)
    assert counter.value == 10
