"""Unit tests for the sharded fleet, routing client, and pin protocol."""

import hashlib

import pytest

from repro.oram import paging
from repro.security.observer import AccessPatternObserver
from repro.sharding import (
    PATH_BACKEND,
    PYRAMID_BACKEND,
    ShardedObliviousStateBackend,
    ShardedOramConfig,
    ShardedOramFleet,
    ShardPinnedError,
    ShardUnavailableError,
    SyncRootCoordinator,
    UnpinnedShardAccessError,
    shard_key,
)
from repro.state.account import Account

pytestmark = pytest.mark.sharding

MASTER = hashlib.sha256(b"test-fleet-master").digest()


def _fleet(shard_count=4, **overrides):
    config = ShardedOramConfig(
        shard_count=shard_count, oram_height=6, **overrides
    )
    return ShardedOramFleet(config, MASTER)


def _accounts(n=6):
    out = {}
    for i in range(n):
        address = hashlib.blake2b(b"acct%d" % i, digest_size=20).digest()
        out[address] = Account(
            balance=1000 + i, nonce=i, code=b"\x60" * 40, storage={0: i, 40: i * 2}
        )
    return out


def test_shard_keys_are_distinct_and_deterministic():
    keys = [shard_key(MASTER, sid) for sid in range(8)]
    assert len(set(keys)) == 8
    assert keys == [shard_key(MASTER, sid) for sid in range(8)]
    assert shard_key(b"other" * 7, 0) != keys[0]


def test_fleet_builds_one_store_per_shard():
    fleet = _fleet(4)
    assert fleet.shard_ids == (0, 1, 2, 3)
    servers = {id(shard.server) for shard in fleet.shards.values()}
    assert len(servers) == 4  # independent stores, no sharing
    assert {shard.key for shard in fleet.shards.values()} == {
        shard_key(MASTER, sid) for sid in range(4)
    }


def test_backend_overrides_select_pyramid_per_shard():
    fleet = _fleet(4, backend_overrides={2: PYRAMID_BACKEND})
    assert [fleet.shards[sid].backend for sid in range(4)] == [
        PATH_BACKEND, PATH_BACKEND, PYRAMID_BACKEND, PATH_BACKEND
    ]
    with pytest.raises(ValueError):
        ShardedOramConfig(backend_overrides={0: "cuckoo"}).backend_for(0)


def test_accesses_route_by_ring_and_round_trip():
    fleet = _fleet(4)
    backend = ShardedObliviousStateBackend(fleet)
    accounts = _accounts()
    backend.sync_world(accounts)
    for address, account in accounts.items():
        assert backend.get_meta(address).balance == account.balance
        assert backend.get_storage(address, 40) == account.storage[40]
    # Traffic landed on the ring-designated shards only.
    for address in accounts:
        page = paging.account_page_key(address)
        owner = backend.shard_for_page(page)
        assert fleet.shards[owner].client.stats.accesses > 0
    per_shard = backend.router.per_shard_accesses()
    assert sum(per_shard.values()) == backend.stats.total + _pages(accounts)


def _pages(accounts):
    return sum(2 + len({k // 32 for k in a.storage}) for a in accounts.values())


def test_single_shard_fleet_matches_unsharded_wire():
    from repro.oram.client import PathOramClient
    from repro.oram.server import OramServer

    config = ShardedOramConfig(shard_count=1, oram_height=6)
    fleet = ShardedOramFleet(config, MASTER)
    sharded_observer = AccessPatternObserver().attach(fleet.shards[0].server)
    sharded = ShardedObliviousStateBackend(fleet)

    server = OramServer(height=6, bucket_size=4)
    unsharded_observer = AccessPatternObserver().attach(server)
    client = PathOramClient(
        server, shard_key(MASTER, 0), block_size=paging.PAGE_SIZE,
        stash_limit=config.stash_limit_blocks,
        decrypt_memo_blocks=config.decrypt_memo_blocks,
    )
    from repro.oram.adapter import ObliviousStateBackend

    unsharded = ObliviousStateBackend(client)

    accounts = _accounts()
    sharded.sync_world(accounts)
    unsharded.sync_world(accounts)
    for address in accounts:
        sharded.get_meta(address)
        unsharded.get_meta(address)
    assert sharded_observer.leaves == unsharded_observer.leaves
    assert fleet.shards[0].server.snapshot_tree() == server.snapshot_tree()


def test_crash_is_a_typed_per_shard_error():
    fleet = _fleet(4)
    backend = ShardedObliviousStateBackend(fleet)
    accounts = _accounts()
    backend.sync_world(accounts)
    victim_address = next(iter(accounts))
    victim = backend.shard_for_page(paging.account_page_key(victim_address))
    backend.router.mark_crashed(victim, "unit-test")
    with pytest.raises(ShardUnavailableError) as err:
        backend.get_meta(victim_address)
    assert err.value.shard_id == victim
    # Every other shard keeps serving.
    for address in accounts:
        if backend.shard_for_page(paging.account_page_key(address)) != victim:
            backend.get_meta(address)
    backend.router.mark_recovered(victim)
    assert backend.get_meta(victim_address).balance == accounts[victim_address].balance


def test_two_phase_pin_scopes_access_and_blocks_sync():
    fleet = _fleet(4)
    backend = ShardedObliviousStateBackend(fleet)
    accounts = _accounts()
    backend.sync_world(accounts)
    addresses = sorted(accounts)
    tx_pages = [paging.account_page_key(a) for a in addresses[:2]]
    pinned_shards = backend.shards_for_pages(tx_pages)
    outside = next(
        a for a in addresses
        if backend.shard_for_page(paging.account_page_key(a)) not in pinned_shards
    )
    with backend.pinned(tx_pages) as ticket:
        assert ticket.shard_ids == pinned_shards
        for a in addresses[:2]:
            backend.get_meta(a)  # in-set access is fine
        with pytest.raises(UnpinnedShardAccessError):
            backend.get_meta(outside)
        with pytest.raises(ShardPinnedError):
            backend.sync_account(addresses[0], accounts[addresses[0]])
        assert backend.coordinator.stats.sync_conflicts == 1
    # Released: both the out-of-set read and the sync work again.
    backend.get_meta(outside)
    backend.sync_account(addresses[0], accounts[addresses[0]])


def test_pins_are_shared_and_ordered():
    coordinator = SyncRootCoordinator((0, 1, 2, 3))
    first = coordinator.pin((2, 0))
    second = coordinator.pin((0, 3))  # overlapping pins coexist (reader-style)
    assert first.shard_ids == (0, 2)  # ascending = fleet lock order
    assert coordinator.pinned_shards() == (0, 2, 3)
    coordinator.release(first)
    assert coordinator.pinned_shards() == (0, 3)
    coordinator.release(second)
    with pytest.raises(ValueError):
        coordinator.release(second)


def test_note_root_refused_while_pinned():
    coordinator = SyncRootCoordinator((0, 1))
    ticket = coordinator.pin((1,))
    coordinator.note_root(0, b"root-a")  # unpinned shard: fine
    with pytest.raises(ShardPinnedError):
        coordinator.note_root(1, b"root-a")
    coordinator.release(ticket)
    coordinator.note_root(1, b"root-a")
    assert coordinator.root_of(1) == b"root-a"


def test_sync_world_notes_roots_fleet_wide():
    fleet = _fleet(2)
    backend = ShardedObliviousStateBackend(fleet)
    backend.sync_world(_accounts(3), state_root=b"R" * 32)
    for sid in fleet.shard_ids:
        assert backend.coordinator.root_of(sid) == b"R" * 32


def test_mixed_backend_fleet_round_trips():
    fleet = _fleet(4, backend_overrides={1: PYRAMID_BACKEND, 3: PYRAMID_BACKEND})
    backend = ShardedObliviousStateBackend(fleet)
    accounts = _accounts(10)
    backend.sync_world(accounts)
    for address, account in accounts.items():
        assert backend.get_meta(address).nonce == account.nonce
        assert backend.get_storage(address, 0) == account.storage[0]
    stash = backend.router.per_shard_stash_blocks()
    assert set(stash) == {0, 1, 2, 3}
