"""ORAM integrity hardening: tamper and rollback detection.

The second half drives the same client against *injected* mid-access
server failures (``repro.faults``): stalls past the response budget and
transient tag corruption.  The property under test is atomicity — a
failed access must leave the client's trust state (stash, position map,
anti-rollback versions) exactly as it was, so a retry is always safe.
"""

import pytest

from repro.crypto.gcm import AuthenticationError
from repro.crypto.kdf import Drbg
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultRule, FaultyOramServer
from repro.oram.client import OramTimeoutError, PathOramClient, RollbackDetectedError
from repro.oram.server import OramServer


@pytest.fixture
def oram():
    server = OramServer(height=5)
    client = PathOramClient(server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"))
    return server, client


def test_tampered_bucket_detected(oram):
    server, client = oram
    client.write(b"key", b"value")
    # The SP flips a byte in some stored ciphertext.
    for node, bucket in enumerate(server._buckets):
        if bucket:
            blob = bytearray(bucket[0])
            blob[-1] ^= 1
            server._buckets[node][0] = bytes(blob)
            break
    with pytest.raises(AuthenticationError):
        for _ in range(64):  # touch enough paths to hit the bad bucket
            client.read(b"key")


def test_rollback_of_bucket_detected(oram):
    """Replaying an older, individually valid bucket is classified as a
    rollback — a typed error distinct from plain tag corruption."""
    server, client = oram
    client.write(b"key", b"v1")
    # SP snapshots the entire tree now...
    snapshot = [list(bucket) for bucket in server._buckets]
    # ...the client keeps writing (versions advance)...
    client.write(b"key", b"v2")
    client.write(b"other", b"x")
    # ...and the SP rolls the tree back to the stale snapshot.
    server._buckets = [list(bucket) for bucket in snapshot]
    with pytest.raises(RollbackDetectedError) as excinfo:
        for _ in range(64):
            client.read(b"key")
    assert excinfo.value.served_version < excinfo.value.expected_version
    assert client.stats.rollbacks_detected == 1
    # The typed error must never be mistaken for (retryable) corruption.
    assert not isinstance(excinfo.value, AuthenticationError)


def test_swapping_buckets_between_nodes_detected(oram):
    """Moving a valid bucket to a different tree position fails (the
    node index is part of the AAD)."""
    server, client = oram
    client.write(b"key", b"value")
    populated = [i for i, bucket in enumerate(server._buckets) if bucket]
    if len(populated) >= 2:
        a, b = populated[0], populated[1]
        server._buckets[a], server._buckets[b] = (
            server._buckets[b], server._buckets[a],
        )
        with pytest.raises(AuthenticationError):
            for _ in range(64):
                client.read(b"key")


def test_honest_server_unaffected(oram):
    """The versioning is invisible when the server behaves."""
    server, client = oram
    for i in range(40):
        client.write(b"key%d" % (i % 10), b"v%d" % i)
    for i in range(10):
        value = client.read(b"key%d" % i)
        assert value is not None


# ----------------------------------------------------------------------
# Injected mid-access server failures (repro.faults)
# ----------------------------------------------------------------------


def _client_state(client):
    """The trust state a failed access must leave untouched."""
    return (
        dict(client._stash),
        dict(client._positions._map),
        dict(client._node_versions),
    )


def _armed(server, rule, seed=11):
    return FaultyOramServer(server, FaultInjector(FaultPlan(seed, [rule])))


def test_injected_stall_past_budget_times_out_atomically():
    server = OramServer(height=5)
    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"),
        response_budget_us=10_000.0,
    )
    client.write(b"key", b"value")
    before = _client_state(client)
    # Two 8 ms stalls against a 10 ms budget: the first is absorbed, the
    # second pushes the accumulated wait past the budget.
    client.server = _armed(
        server,
        FaultRule(FaultKind.ORAM_STALL, rate=1.0, max_fires=2, stall_us=8_000.0),
    )
    with pytest.raises(OramTimeoutError) as excinfo:
        client.read(b"key")
    assert excinfo.value.budget_us == 10_000.0
    assert excinfo.value.waited_us == 16_000.0
    assert client.stats.stalls_absorbed == 1
    assert client.stats.timeouts == 1
    # The timed-out access changed nothing...
    assert _client_state(client) == before
    # ...so with the fault budget exhausted the plain retry succeeds.
    assert client.read(b"key").rstrip(b"\x00") == b"value"


def test_injected_stall_within_budget_is_absorbed():
    server = OramServer(height=5)
    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"),
        response_budget_us=50_000.0,
    )
    client.write(b"key", b"value")
    client.server = _armed(
        server,
        FaultRule(FaultKind.ORAM_STALL, rate=1.0, max_fires=1, stall_us=8_000.0),
    )
    assert client.read(b"key").rstrip(b"\x00") == b"value"
    assert client.stats.stalls_absorbed == 1
    assert client.stats.stall_us_absorbed == 8_000.0
    assert client.stats.timeouts == 0


def test_injected_tag_corruption_aborts_access_atomically():
    server = OramServer(height=5)
    client = PathOramClient(server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"))
    for i in range(8):
        client.write(b"key%d" % i, b"v%d" % i)
    before = _client_state(client)
    client.server = _armed(
        server, FaultRule(FaultKind.ORAM_TAG_CORRUPT, rate=1.0, max_fires=1)
    )
    with pytest.raises(AuthenticationError):
        client.read(b"key0")
    # Absorption is all-or-nothing: the corrupt path left no partial
    # stash/position/version state behind.
    assert _client_state(client) == before
    # The corruption hit the returned copy only (a transient bus error,
    # not stored damage), so the retry reads the true value.
    assert client.read(b"key0").rstrip(b"\x00") == b"v0"


def test_retry_backoff_counts_toward_budget_and_waited_us():
    """The wait between re-issued reads is real caller-observed time: it
    must appear in ``waited_us``, count against the response budget, and
    charge the owning clock — not vanish into unaccounted limbo."""
    from repro.hardware.timing import SimClock

    server = OramServer(height=5)
    clock = SimClock()
    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"),
        response_budget_us=10_000.0,
        clock=clock, stall_retry_backoff_us=500.0,
    )
    client.write(b"key", b"value")
    started = clock.now_us
    client.server = _armed(
        server,
        FaultRule(FaultKind.ORAM_STALL, rate=1.0, max_fires=2, stall_us=8_000.0),
    )
    with pytest.raises(OramTimeoutError) as excinfo:
        client.read(b"key")
    # First stall (8 ms) absorbed + 0.5 ms backoff, second stall breaches:
    # waited = 8_000 + 500 + 8_000, all of it charged to the clock.
    assert excinfo.value.waited_us == 16_500.0
    assert clock.now_us - started == 16_500.0
    assert client.stats.stalls_absorbed == 1
    assert client.stats.timeouts == 1


def test_absorbed_stalls_charge_the_clock():
    from repro.hardware.timing import SimClock

    server = OramServer(height=5)
    clock = SimClock()
    client = PathOramClient(
        server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"),
        response_budget_us=50_000.0,
        clock=clock, stall_retry_backoff_us=250.0,
    )
    client.write(b"key", b"value")
    started = clock.now_us
    client.server = _armed(
        server,
        FaultRule(FaultKind.ORAM_STALL, rate=1.0, max_fires=1, stall_us=8_000.0),
    )
    assert client.read(b"key").rstrip(b"\x00") == b"value"
    assert clock.now_us - started == 8_250.0  # stall + backoff, nothing else


def test_faulty_wrapper_is_transparent_at_zero_rate(oram):
    server, client = oram
    client.write(b"key", b"value")
    plan = FaultPlan(11, [FaultRule(FaultKind.ORAM_STALL, rate=0.0)])
    client.server = FaultyOramServer(server, FaultInjector(plan))
    assert client.read(b"key").rstrip(b"\x00") == b"value"
    # Zero-rate rules never even draw: the baseline stays bit-for-bit.
    assert plan.decisions(FaultKind.ORAM_STALL) == 0
    assert plan.total_injected == 0
