"""ORAM integrity hardening: tamper and rollback detection."""

import pytest

from repro.crypto.gcm import AuthenticationError
from repro.crypto.kdf import Drbg
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer


@pytest.fixture
def oram():
    server = OramServer(height=5)
    client = PathOramClient(server, key=b"k" * 32, block_size=64, rng=Drbg(b"r"))
    return server, client


def test_tampered_bucket_detected(oram):
    server, client = oram
    client.write(b"key", b"value")
    # The SP flips a byte in some stored ciphertext.
    for node, bucket in enumerate(server._buckets):
        if bucket:
            blob = bytearray(bucket[0])
            blob[-1] ^= 1
            server._buckets[node][0] = bytes(blob)
            break
    with pytest.raises(AuthenticationError):
        for _ in range(64):  # touch enough paths to hit the bad bucket
            client.read(b"key")


def test_rollback_of_bucket_detected(oram):
    """Replaying an older, individually valid bucket must fail AEAD."""
    server, client = oram
    client.write(b"key", b"v1")
    # SP snapshots the entire tree now...
    snapshot = [list(bucket) for bucket in server._buckets]
    # ...the client keeps writing (versions advance)...
    client.write(b"key", b"v2")
    client.write(b"other", b"x")
    # ...and the SP rolls the tree back to the stale snapshot.
    server._buckets = [list(bucket) for bucket in snapshot]
    with pytest.raises(AuthenticationError):
        for _ in range(64):
            client.read(b"key")


def test_swapping_buckets_between_nodes_detected(oram):
    """Moving a valid bucket to a different tree position fails (the
    node index is part of the AAD)."""
    server, client = oram
    client.write(b"key", b"value")
    populated = [i for i, bucket in enumerate(server._buckets) if bucket]
    if len(populated) >= 2:
        a, b = populated[0], populated[1]
        server._buckets[a], server._buckets[b] = (
            server._buckets[b], server._buckets[a],
        )
        with pytest.raises(AuthenticationError):
            for _ in range(64):
                client.read(b"key")


def test_honest_server_unaffected(oram):
    """The versioning is invisible when the server behaves."""
    server, client = oram
    for i in range(40):
        client.write(b"key%d" % (i % 10), b"v%d" % i)
    for i in range(10):
        value = client.read(b"key%d" % i)
        assert value is not None
