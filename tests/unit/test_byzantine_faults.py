"""Byzantine fault kinds: derived registry, inert hooks, armed lies."""

from types import SimpleNamespace

import pytest

from repro.crypto.ecc import PrivateKey
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultRule, _derive_all
from repro.hypervisor.receipts import make_receipt
from repro.telemetry.unified import (
    StepTraceRecord,
    UnifiedStepTrace,
    group_for_op,
)

pytestmark = pytest.mark.byzantine

BYZANTINE = (
    FaultKind.HEVM_RESULT_TAMPER,
    FaultKind.RECEIPT_FORGE,
    FaultKind.RECEIPT_OMIT,
    FaultKind.SYNC_EQUIVOCATE,
)


class TestDerivedRegistry:
    def test_all_is_derived_in_definition_order(self):
        assert len(FaultKind.ALL) == 13
        assert FaultKind.ALL[:2] == (FaultKind.DMA_DROP, FaultKind.DMA_DUPLICATE)
        # The Byzantine kinds were appended last, in declaration order.
        assert FaultKind.ALL[-4:] == BYZANTINE
        assert "ALL" not in FaultKind.ALL

    def test_derive_all_picks_up_new_kinds(self):
        @_derive_all
        class _Kinds:
            FIRST = "first"
            SECOND = "second"
            lowercase = "ignored"
            NUMERIC = 7  # non-str upper-case attrs are ignored too

        assert _Kinds.ALL == ("first", "second")

    def test_plan_provisions_every_kind(self):
        plan = FaultPlan(seed=5)
        for kind in FaultKind.ALL:
            assert plan.fires(kind) == 0
            assert plan.decisions(kind) == 0

    def test_rule_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("receipt-shred", 0.5)


def _injector(rate: float, kinds=BYZANTINE) -> FaultInjector:
    return FaultInjector(FaultPlan.uniform(seed=1, rate=rate, kinds=kinds))


def _results():
    results = [SimpleNamespace(gas_used=21_000), SimpleNamespace(gas_used=40_004)]
    struct_logs = [
        [SimpleNamespace(gas=100_000)],
        [SimpleNamespace(gas=90_000), SimpleNamespace(gas=89_997)],
    ]
    return results, struct_logs


def _receipt():
    trace = UnifiedStepTrace(records=(
        StepTraceRecord(
            index=0, depth=1, pc=0, op="ADD",
            group=group_for_op("ADD"), gas=100_000,
        ),
    ))
    return make_receipt(b"\x11" * 16, [trace], PrivateKey(0xBEEF))


class TestZeroRateIsInert:
    def test_hevm_result_hook_returns_inputs_unchanged(self):
        injector = _injector(0.0)
        results, struct_logs = _results()
        out = injector.on_hevm_result(results, struct_logs, 10.0)
        assert out == (results, struct_logs)
        assert results[-1].gas_used == 40_004
        assert struct_logs[-1][-1].gas == 89_997

    def test_receipt_hook_passes_the_receipt_through(self):
        injector = _injector(0.0)
        receipt = _receipt()
        assert injector.on_receipt(receipt, 10.0) is receipt

    def test_sync_equivocate_hook_says_no(self):
        assert _injector(0.0).on_sync_equivocate(10.0) is False

    def test_no_draws_no_log(self):
        injector = _injector(0.0)
        injector.on_hevm_result(*_results(), 0.0)
        injector.on_receipt(_receipt(), 0.0)
        injector.on_sync_equivocate(0.0)
        assert injector.plan.log == []
        for kind in BYZANTINE:
            # Rate-0 rules skip the DRBG draw entirely (byte-identity).
            assert injector.plan.decisions(kind) == 0


class TestArmedLies:
    def test_result_tamper_flips_gas_in_result_and_trace(self):
        injector = _injector(1.0, kinds=(FaultKind.HEVM_RESULT_TAMPER,))
        results, struct_logs = _results()
        injector.on_hevm_result(results, struct_logs, 10.0)
        assert results[-1].gas_used == 40_004 ^ 0x1
        assert struct_logs[-1][-1].gas == 89_997 ^ 0x1
        # Earlier transactions stay honest: the lie is minimal.
        assert results[0].gas_used == 21_000
        record = injector.plan.log[-1]
        assert record.kind == FaultKind.HEVM_RESULT_TAMPER
        assert record.site == "hypervisor.bundle.result"

    def test_result_tamper_on_an_empty_bundle_is_a_noop(self):
        injector = _injector(1.0, kinds=(FaultKind.HEVM_RESULT_TAMPER,))
        assert injector.on_hevm_result([], [], 10.0) == ([], [])

    def test_receipt_omit_withholds_the_receipt(self):
        injector = _injector(1.0, kinds=(FaultKind.RECEIPT_OMIT,))
        assert injector.on_receipt(_receipt(), 10.0) is None
        assert injector.plan.log[-1].site == "hypervisor.bundle.receipt"

    def test_receipt_forge_breaks_only_the_signature(self):
        injector = _injector(1.0, kinds=(FaultKind.RECEIPT_FORGE,))
        receipt = _receipt()
        forged = injector.on_receipt(receipt, 10.0)
        assert forged.signature.r == receipt.signature.r ^ 1
        assert forged.signature.s == receipt.signature.s
        assert forged.commitments == receipt.commitments
        assert injector.plan.log[-1].kind == FaultKind.RECEIPT_FORGE

    def test_sync_equivocate_withholds_the_block(self):
        injector = _injector(1.0, kinds=(FaultKind.SYNC_EQUIVOCATE,))
        assert injector.on_sync_equivocate(10.0) is True
        record = injector.plan.log[-1]
        assert record.kind == FaultKind.SYNC_EQUIVOCATE
        assert record.site == "core.service.sync_new_blocks"
