"""The 'spill' oversize policy (the paper's rejected L3 alternative)."""

import pytest

from repro.crypto.kdf import Drbg
from repro.evm.interpreter import ChainContext
from repro.hardware.hevm import HevmCore
from repro.hardware.memory_layers import Layer2CallStack, MemoryOverflowError
from repro.hardware.timing import CostModel, SimClock
from repro.state import BlockHeader, DictBackend, Transaction, to_address
from repro.workloads.contracts import rollup

ALICE = to_address(0xA1)


def _l2(policy):
    return Layer2CallStack(
        capacity_bytes=64 * 1024, rng=Drbg(b"s"), oversize_policy=policy,
        noise_enabled=False,
    )


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        Layer2CallStack(oversize_policy="bogus")


def test_abort_policy_still_raises():
    with pytest.raises(MemoryOverflowError):
        _l2("abort").push_frame(40 * 1024)


def test_spill_policy_allows_oversized_frames():
    l2 = _l2("spill")
    events = l2.push_frame(40 * 1024)  # 40 pages, limit 32
    spills = [e for e in events if e.direction == "spill"]
    assert len(spills) == 1
    assert spills[0].page_count == 8
    assert l2.resident_pages == 32  # only the resident part occupies L2


def test_spill_growth_emits_incremental_events():
    l2 = _l2("spill")
    l2.push_frame(40 * 1024)
    events = l2.expand_current(45 * 1024)
    spills = [e for e in events if e.direction == "spill"]
    assert sum(e.page_count for e in spills) == 5  # only the delta
    # No growth, no event.
    assert l2.expand_current(45 * 1024) == []


def test_spill_fill_on_frame_exit():
    l2 = _l2("spill")
    l2.push_frame(40 * 1024)
    events = l2.pop_frame()
    fills = [e for e in events if e.direction == "fill"]
    assert len(fills) == 1 and fills[0].page_count == 8


def _run_rollup(updates: int, policy: str, l3_oram: bool):
    backend = DictBackend()
    backend.ensure(ALICE).balance = 10**21
    contract = to_address(0x0110)
    backend.ensure(contract).code = rollup.rollup_runtime()
    header = BlockHeader(
        number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
        timestamp=0, coinbase=to_address(0xC0),
    )
    clock = SimClock()
    core = HevmCore(
        0, clock, CostModel(), l2_bytes=1024 * 1024,
        oversize_policy=policy, l3_oram=l3_oram,
    )
    tx = Transaction(
        sender=ALICE, to=contract,
        data=rollup.rollup_calldata([(i, 1) for i in range(updates)]),
        gas_limit=10**9,
    )
    results, breakdowns, stats, _ = core.run_bundle(
        [tx], ChainContext(header), backend, None,
        storage_via_oram=False, code_via_oram=False, charge_fees=False,
    )
    return results, breakdowns, stats


def test_big_rollup_aborts_under_paper_policy():
    results, _, stats = _run_rollup(10_000, "abort", l3_oram=False)
    assert stats.aborted


def test_big_rollup_completes_under_spill_policy():
    results, breakdowns, stats = _run_rollup(10_000, "spill", l3_oram=False)
    assert not stats.aborted
    assert results[0].success, results[0].error


def test_l3_oram_spill_is_orders_of_magnitude_slower():
    _, plain, _ = _run_rollup(10_000, "spill", l3_oram=False)
    _, oblivious, _ = _run_rollup(10_000, "spill", l3_oram=True)
    assert oblivious[0].swap_us > 50 * plain[0].swap_us
    # ... and busts the paper's 600 ms response-time requirement,
    # which is exactly why §IV-B rejects the generic L3-ORAM solution.
    assert oblivious[0].total_us > 600_000
