"""PANCAKE-style frequency smoothing and the distribution-shift attack."""

import pytest

from repro.crypto.kdf import Drbg
from repro.oram.pancake import (
    FrequencySmoothedStore,
    rate_deviation_attack,
)
from repro.security.analysis import frequency_attack

KEYS = [b"k%d" % i for i in range(4)]
# Assumed (calibration) distribution: 8:4:2:1.
ASSUMED = {KEYS[0]: 8.0, KEYS[1]: 4.0, KEYS[2]: 2.0, KEYS[3]: 1.0}


@pytest.fixture
def store():
    s = FrequencySmoothedStore(b"p" * 32, ASSUMED, rng=Drbg(b"t"))
    for key in KEYS:
        s.put(key, b"value-" + key)
    s.trace.clear()
    return s


def test_replica_counts_proportional(store):
    assert store.replica_count(KEYS[0]) == 8
    assert store.replica_count(KEYS[1]) == 4
    assert store.replica_count(KEYS[2]) == 2
    assert store.replica_count(KEYS[3]) == 1
    assert store.total_replicas == 15


def test_roundtrip(store):
    for key in KEYS:
        assert store.get(key) == b"value-" + key


def test_unknown_key_rejected(store):
    with pytest.raises(KeyError):
        store.get(b"unknown")
    with pytest.raises(KeyError):
        store.put(b"unknown", b"v")


def test_batch_padding(store):
    store.get(KEYS[0])
    assert len(store.trace) == store.batch_size


def test_calibrated_workload_smooths(store):
    """Querying per the assumed distribution → near-uniform replicas."""
    rng = Drbg(b"w")
    weights = [8, 4, 2, 1]
    for _ in range(3000):
        point = rng.randint(15)
        cumulative = 0
        for key, weight in zip(KEYS, weights):
            cumulative += weight
            if point < cumulative:
                store.get(key)
                break
    counts = store.observed_counts()
    expected = sum(counts.values()) / store.total_replicas
    for handle, count in counts.items():
        assert count < 1.5 * expected, "calibrated store must look uniform"
    # And frequency analysis cannot pick the hot plaintext key.
    assert rate_deviation_attack(counts, store.total_replicas) == set()


def test_frequency_attack_fails_when_calibrated(store):
    rng = Drbg(b"w2")
    weights = [8, 4, 2, 1]
    for _ in range(2000):
        point = rng.randint(15)
        cumulative = 0
        for key, weight in zip(KEYS, weights):
            cumulative += weight
            if point < cumulative:
                store.get(key)
                break
    handles = [event.handle for event in store.trace]
    # The most frequent handle should NOT reliably be a replica of k0.
    accuracy = frequency_attack(handles, store.replicas_of(KEYS[0])[:1])
    assert accuracy == 0.0 or accuracy < 0.5


def test_distribution_shift_breaks_smoothing(store):
    """The paper's point: shift the real distribution, smoothing fails."""
    # The victim suddenly cares only about k3 (calibrated as the coldest).
    for _ in range(1500):
        store.get(KEYS[3])
    hot = rate_deviation_attack(store.observed_counts(), store.total_replicas)
    victim_replicas = set(store.replicas_of(KEYS[3]))
    assert hot & victim_replicas, "the shifted key's replicas must run hot"
    # The identified handles map straight back to the victim's key.
    assert hot <= victim_replicas | set(), (
        "only the victim's replicas should cross the threshold"
    )


def test_oram_resists_the_same_shift():
    """Control: Path ORAM under the identical shifted workload."""
    from repro.oram.client import PathOramClient
    from repro.oram.server import OramServer
    from repro.security.observer import AccessPatternObserver

    server = OramServer(height=7)
    observer = AccessPatternObserver().attach(server)
    client = PathOramClient(server, key=b"o" * 32, block_size=64, rng=Drbg(b"c"))
    for key in KEYS:
        client.write(key, b"v")
    observer.clear()
    for _ in range(300):
        client.read(KEYS[3])
    counts: dict[bytes, int] = {}
    for leaf in observer.leaves:
        handle = leaf.to_bytes(4, "big")
        counts[handle] = counts.get(handle, 0) + 1
    hot = rate_deviation_attack(counts, server.leaf_count, threshold=3.0)
    # Uniform random leaves: no stable handle crosses a 3x threshold
    # with 300 draws over 128 leaves beyond small-sample noise, and more
    # importantly none of them persists as "the victim's page".
    assert len(hot) < server.leaf_count * 0.1
