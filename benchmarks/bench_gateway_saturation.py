"""Experiment S3 — gateway saturation through the serving layer (§VI-D).

The fleet simulator (S2) shows the ORAM-server knee for bare HEVMs;
this experiment reproduces the same knee *through the multi-tenant
gateway*: closed-loop tenants drive ``FleetModelExecutor`` gateways at
increasing fleet sizes, and throughput scales linearly until the shared
ORAM server saturates — the paper's ⌊630 µs / 25 µs⌋ ≈ 25 full-load
HEVMs.  An open-loop overload section then offers ~2× capacity and
shows admission control degrading gracefully: typed sheds, bounded
queue waits, no unhandled exceptions.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.serving

from repro.hardware.timing import CostModel
from repro.serving import (
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    QueueDepthShedPolicy,
    RejectReason,
    RequestStatus,
    model_sessions,
    run_closed_loop,
    run_open_loop,
    synthetic_profiles,
)

from conftest import record_result

SWEEP = [5, 10, 15, 20, 25, 30, 40, 50]
REQUESTS_PER_SESSION = 40

# Zero RTT isolates the server-CPU bottleneck, as in the paper's
# analytic bound; a nonzero RTT only stretches per-tx latency.
COST = CostModel(ethernet_rtt_us=0.0)


def _closed_loop_point(cores: int, requests: int = REQUESTS_PER_SESSION):
    executor = FleetModelExecutor(core_count=cores, cost=COST)
    gateway = Gateway(executor, GatewayConfig(
        max_queue_depth=4 * cores, max_in_flight_per_session=4,
    ))
    sessions = model_sessions(cores, synthetic_profiles(COST, "full-load"))
    report = run_closed_loop(
        gateway, sessions, requests_per_session=requests
    )
    return report, executor.server.utilization(gateway.now_us)


def _overload_run(cores: int, seed: int = 7):
    executor = FleetModelExecutor(core_count=cores, cost=COST)
    gateway = Gateway(
        executor,
        GatewayConfig(max_queue_depth=4 * cores,
                      max_in_flight_per_session=4),
        admission=QueueDepthShedPolicy(shed_depth=2 * cores),
    )
    sessions = model_sessions(cores, synthetic_profiles(COST, "full-load"))
    capacity_rps = 1e6 / COST.oram_server_cpu_us / 16  # queries/s ÷ q-per-tx
    return run_open_loop(
        gateway, sessions,
        rate_rps=2.0 * capacity_rps,
        total_requests=30 * cores,
        seed=seed, pattern="poisson",
    )


def test_gateway_saturation(benchmark):
    points = benchmark.pedantic(
        lambda: [_closed_loop_point(cores) for cores in SWEEP],
        iterations=1, rounds=1,
    )

    lines = [
        "| HEVMs | throughput (tx/s) | per-HEVM tx/s | server util "
        "| latency p50/p95/p99 (ms) |",
        "|---|---|---|---|---|",
    ]
    for cores, (report, util) in zip(SWEEP, points):
        lats = "/".join(
            f"{report.latency_percentile_us(p) / 1000:.1f}"
            for p in (50, 95, 99)
        )
        lines.append(
            f"| {cores} | {report.throughput_tps:.1f} "
            f"| {report.throughput_tps / cores:.2f} "
            f"| {util:.0%} | {lats} |"
        )

    by_cores = {c: r for c, (r, _) in zip(SWEEP, points)}
    utils = {c: u for c, (_, u) in zip(SWEEP, points)}
    knee = next(
        (c for c in SWEEP if utils[c] >= 0.9), SWEEP[-1]
    )

    overload = _overload_run(25)
    lines += [
        "",
        f"server saturates (util ≥ 90%) at ≈ {knee} gateway-fed HEVMs",
        "paper's analytic bound: ⌊630 µs / 25 µs⌋ = 25 HEVMs per server",
        "",
        "open-loop overload at 2× capacity (25 HEVMs):",
    ] + [f"  {line}" for line in overload.summary_lines()]
    record_result(
        "gateway_saturation",
        "Gateway saturation (serving layer, §VI-D)",
        lines,
    )

    # Linear region: per-HEVM throughput barely degrades up to 20 cores.
    assert by_cores[20].throughput_tps == pytest.approx(
        4 * by_cores[5].throughput_tps, rel=0.05
    )
    # The knee lands on the paper's analytic bound.
    assert 20 <= knee <= 30
    # Saturation region: 25% more cores past the knee gain almost nothing.
    assert by_cores[50].throughput_tps < 1.05 * by_cores[40].throughput_tps
    # Utilization is monotone in fleet size and ends pinned near 1.
    ordered = [utils[c] for c in SWEEP]
    assert ordered == sorted(ordered)
    assert ordered[-1] > 0.95


def test_gateway_overload_sheds_typed(benchmark):
    report = benchmark.pedantic(
        lambda: _overload_run(25), iterations=1, rounds=1
    )
    # Offered load is 2× capacity: roughly half the work must be shed,
    # every shed carries a typed reason, and nothing raises.
    assert report.shed_rate > 0.3
    assert report.completed > 0
    assert set(report.rejected_by_reason) <= set(RejectReason.ALL)
    assert RejectReason.SHED_QUEUE_DEPTH in report.rejected_by_reason
    for request in report.outcomes:
        assert request.status in (
            RequestStatus.COMPLETED,
            RequestStatus.REJECTED,
            RequestStatus.EXPIRED,
        )
        if request.status == RequestStatus.REJECTED:
            assert request.reject_reason in RejectReason.ALL


def test_gateway_run_is_deterministic(benchmark):
    def twice():
        first, _ = _closed_loop_point(25, requests=20)
        second, _ = _closed_loop_point(25, requests=20)
        return first, second

    first, second = benchmark.pedantic(twice, iterations=1, rounds=1)
    assert first.metrics == second.metrics
    assert first.throughput_tps == second.throughput_tps
    assert _overload_run(25, seed=3).metrics == _overload_run(25, seed=3).metrics
