"""Ablation A2 — ORAM stash occupancy (paper §IV-D).

The paper sizes the on-chip stash at O(log n) ≈ 30 pages (≈ 1 MB with
metadata).  We drive long random access traces through the client and
record the stash-size distribution: the maximum must sit far below the
budget, and the tail must decay geometrically (the Path ORAM guarantee).
"""

from __future__ import annotations

from collections import Counter

from repro.crypto.kdf import Drbg
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer

from conftest import record_result

ACCESSES = 1500
KEYS = 300


def _run_trace() -> PathOramClient:
    server = OramServer(height=10)
    client = PathOramClient(
        server, key=b"stash-bench" + b"\x00" * 21, block_size=64,
        rng=Drbg(b"stash"),
    )
    rng = Drbg(b"stash-workload")
    for i in range(KEYS):  # populate
        client.write(b"key%d" % i, b"v")
    for _ in range(ACCESSES):
        key = b"key%d" % rng.randint(KEYS)
        if rng.randint(2):
            client.read(key)
        else:
            client.write(key, b"w")
    return client


def test_stash_occupancy(benchmark):
    client = benchmark.pedantic(_run_trace, iterations=1, rounds=1)
    history = client.stats.stash_history
    histogram = Counter(history)
    maximum = client.stats.max_stash_blocks

    lines = [
        f"accesses: {len(history)}, distinct keys: {KEYS}",
        f"max stash occupancy: {maximum} blocks (paper budget ≈ 30 pages)",
        "",
        "| stash size | fraction of accesses |",
        "|---|---|",
    ]
    for size in sorted(histogram):
        lines.append(f"| {size} | {histogram[size] / len(history):.3%} |")
    record_result("ablation_stash", "Ablation — stash occupancy", lines)

    assert maximum <= 30  # fits the paper's 30-page on-chip budget
    # Geometric tail: occupancy 0/1 dominates.
    assert (histogram[0] + histogram[1]) / len(history) > 0.5
