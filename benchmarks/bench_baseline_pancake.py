"""Experiment SEC2 — why Path ORAM and not frequency smoothing (§IV-D).

The paper rules out PANCAKE/Waffle-style *sub-obliviousness* because
"they are not designed against an active adversary who can send
requests to interfere with the distribution".  This bench measures all
three regimes on the same key space:

1. calibrated workload → smoothing works (replica rates uniform),
2. an adversary-shifted workload → the victim key's replicas run hot
   and are identified,
3. the identical shifted workload against Path ORAM → nothing.
"""

from __future__ import annotations

import pytest

from repro.crypto.kdf import Drbg
from repro.oram.client import PathOramClient
from repro.oram.pancake import FrequencySmoothedStore, rate_deviation_attack
from repro.oram.server import OramServer
from repro.security.observer import AccessPatternObserver

from conftest import record_result

KEYS = [b"contract-%d" % i for i in range(6)]
ASSUMED = {key: float(2 ** (5 - i)) for i, key in enumerate(KEYS)}
VICTIM = KEYS[-1]  # calibrated as the coldest key


def _fresh_store(seed: bytes) -> FrequencySmoothedStore:
    store = FrequencySmoothedStore(b"p" * 32, ASSUMED, rng=Drbg(seed))
    for key in KEYS:
        store.put(key, b"v")
    store.trace.clear()
    return store


def _calibrated_queries(store, count: int, seed: bytes) -> None:
    rng = Drbg(seed)
    total = int(sum(ASSUMED.values()))
    for _ in range(count):
        point = rng.randint(total)
        cumulative = 0
        for key, weight in ASSUMED.items():
            cumulative += int(weight)
            if point < cumulative:
                store.get(key)
                break


def test_pancake_vs_oram(benchmark):
    def experiment():
        # Regime 1: calibrated.
        calibrated = _fresh_store(b"s1")
        _calibrated_queries(calibrated, 4000, b"w1")
        hot_calibrated = rate_deviation_attack(
            calibrated.observed_counts(), calibrated.total_replicas
        )

        # Regime 2: the adversary-shifted workload hammers the victim.
        shifted = _fresh_store(b"s2")
        _calibrated_queries(shifted, 1000, b"w2")
        for _ in range(2000):
            shifted.get(VICTIM)
        hot_shifted = rate_deviation_attack(
            shifted.observed_counts(), shifted.total_replicas
        )
        victim_replicas = set(shifted.replicas_of(VICTIM))
        identified = bool(hot_shifted & victim_replicas)
        false_positives = hot_shifted - victim_replicas

        # Regime 3: identical shift against Path ORAM.
        server = OramServer(height=8)
        observer = AccessPatternObserver().attach(server)
        client = PathOramClient(server, key=b"o" * 32, block_size=64,
                                rng=Drbg(b"oram"))
        for key in KEYS:
            client.write(key, b"v")
        observer.clear()
        for _ in range(2000):
            client.read(VICTIM)
        counts: dict[bytes, int] = {}
        for leaf in observer.leaves:
            handle = leaf.to_bytes(4, "big")
            counts[handle] = counts.get(handle, 0) + 1
        hot_oram = rate_deviation_attack(counts, server.leaf_count, threshold=2.0)
        return hot_calibrated, identified, false_positives, hot_oram, server

    hot_calibrated, identified, false_positives, hot_oram, server = (
        benchmark.pedantic(experiment, iterations=1, rounds=1)
    )

    lines = [
        "| regime | hot handles found | victim identified |",
        "|---|---|---|",
        f"| PANCAKE, calibrated workload | {len(hot_calibrated)} | no |",
        f"| PANCAKE, shifted workload | ≥1 | "
        f"{'YES' if identified else 'no'} "
        f"({len(false_positives)} false positives) |",
        f"| Path ORAM, same shift | {len(hot_oram)} / {server.leaf_count} "
        "leaves (noise) | no |",
        "",
        "paper §IV-D: frequency smoothing assumes a static distribution;",
        "an active adversary shifts it and the victim's replicas run hot.",
        "Path ORAM's per-access remapping has no distribution to shift.",
    ]
    record_result(
        "baseline_pancake", "Why ORAM, not frequency smoothing", lines
    )

    assert not hot_calibrated          # smoothing works when calibrated
    assert identified                  # ...and breaks under a shift
    assert not false_positives
    # ORAM: no leaf can be pinned to the victim (any flagged leaves are
    # small-sample noise spread over the whole tree).
    assert len(hot_oram) < server.leaf_count * 0.1
