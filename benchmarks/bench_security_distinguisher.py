"""Experiment SEC — §V empirical security.

Three adversary experiments with real system traces:

1. **Frequency analysis (A7, §I strawman).**  The same skewed workload
   runs against (a) an encrypted-but-deterministic K-V store and (b) the
   Path ORAM store.  The attack de-anonymizes (a) completely and gets
   nothing from (b).
2. **Path uniformity (A7).**  Chi-square test that ORAM leaf choices are
   uniform and independent of the (maximally skewed) logical workload.
3. **Swap-size recovery (A5).**  Mutual information between true frame
   page counts and the noised swap-bus counts, with and without the
   random pre-evict/pre-load noise.
"""

from __future__ import annotations

import pytest

from repro.crypto.kdf import Drbg
from repro.oram.client import PathOramClient
from repro.oram.encrypted_store import EncryptedKvStore
from repro.oram.server import OramServer
from repro.security.analysis import (
    frequency_attack,
    path_uniformity_pvalue,
    size_leakage,
)
from repro.security.observer import AccessPatternObserver

from conftest import record_result

# A Zipf-ish skewed workload over 8 keys, mirroring hot contracts.
KEY_FREQUENCIES = [120, 60, 30, 15, 8, 4, 2, 1]


def _workload(rng: Drbg) -> list[bytes]:
    accesses = []
    for index, count in enumerate(KEY_FREQUENCIES):
        accesses += [b"contract-%d" % index] * count
    # Deterministic shuffle.
    for i in range(len(accesses) - 1, 0, -1):
        j = rng.randint(i + 1)
        accesses[i], accesses[j] = accesses[j], accesses[i]
    return accesses


@pytest.fixture(scope="module")
def traces():
    rng = Drbg(b"sec-bench")
    workload = _workload(rng.fork(b"shuffle"))

    # (a) Encrypted-only store.
    store = EncryptedKvStore(b"k" * 32)
    for key in sorted(set(workload)):
        store.put(key, b"value")
    warmup_len = len(store.trace.events)
    for key in workload:
        store.get(key)
    handle_trace = [e.handle for e in store.trace.events[warmup_len:]]
    # The adversary's public knowledge: plaintext keys by frequency rank,
    # mapped through the store's (observable) handle of each key.
    truth = [
        store._handle(b"contract-%d" % index)
        for index in range(len(KEY_FREQUENCIES))
    ]

    # (b) Path ORAM store, same workload.
    server = OramServer(height=9)
    observer = AccessPatternObserver().attach(server)
    client = PathOramClient(server, key=b"o" * 32, block_size=64,
                            rng=rng.fork(b"oram"))
    for key in sorted(set(workload)):
        client.write(key, b"value")
    observer.clear()
    for key in workload:
        client.read(key)
    oram_leaves = list(observer.leaves)

    return handle_trace, truth, oram_leaves, server.leaf_count


def test_frequency_attack_and_uniformity(benchmark, traces):
    handle_trace, truth, oram_leaves, leaf_count = traces

    def attack():
        enc_acc = frequency_attack(handle_trace, truth)
        oram_handles = [leaf.to_bytes(4, "big") for leaf in oram_leaves]
        oram_acc = frequency_attack(oram_handles, truth)
        pvalue = path_uniformity_pvalue(oram_leaves, leaf_count, bins=8)
        return enc_acc, oram_acc, pvalue

    enc_acc, oram_acc, pvalue = benchmark(attack)

    # Swap-noise experiment (A5).
    from repro.hardware.memory_layers import Layer2CallStack

    def swap_trace(noise: bool):
        l2 = Layer2CallStack(
            capacity_bytes=128 * 1024, rng=Drbg(b"swap"), noise_enabled=noise
        )
        sizes = [34, 40, 36, 50, 34, 42, 38, 44, 35, 47] * 3
        events = []
        for size_kb in sizes:
            events += l2.push_frame(size_kb * 1024)
        for _ in sizes:
            events += l2.pop_frame()
        return events

    plain = swap_trace(False)
    noisy = swap_trace(True)
    leak_plain = size_leakage(
        [e.real_pages for e in plain], [e.page_count for e in plain]
    )
    leak_noisy = size_leakage(
        [e.real_pages for e in noisy], [e.page_count for e in noisy]
    )

    lines = [
        "| adversary experiment | encrypted store | Path ORAM |",
        "|---|---|---|",
        f"| frequency-analysis accuracy | {enc_acc:.0%} | {oram_acc:.0%} |",
        "",
        f"ORAM path uniformity (chi-square p): {pvalue:.3f} "
        "(p > 0.01 = indistinguishable from uniform)",
        "",
        "| swap bus (A5) | size leakage (fraction of frame-size entropy) |",
        "|---|---|",
        f"| exact counts | {leak_plain:.2f} |",
        f"| with pre-evict/pre-load noise | {leak_noisy:.2f} |",
    ]
    record_result(
        "security_distinguisher", "§V empirical security experiments", lines
    )

    assert enc_acc >= 0.75     # the strawman falls to frequency analysis
    assert oram_acc == 0.0     # the ORAM trace carries no frequency signal
    assert pvalue > 0.01       # physical paths are uniform
    assert leak_plain == pytest.approx(1.0)
    assert leak_noisy < 0.8    # noise destroys most of the signal


@pytest.mark.sharding
def test_per_shard_distinguisher_fails_on_every_shard():
    """Experiment SEC, sharded: partitioning must not weaken obliviousness.

    Each shard serves a smaller key population, so a skew-reading
    adversary has a smaller anonymity set to attack — the same skewed
    workload is therefore attacked *per shard*, and the distinguisher
    must fail on every one.
    """
    import hashlib
    from collections import Counter

    from repro.sharding import (
        ShardedOramConfig,
        ShardedOramFleet,
        ShardRoutingClient,
    )

    rng = Drbg(b"sec-shard-bench")
    keys = [b"contract-%02d" % i for i in range(32)]
    # Zipf-ish skew over 32 keys: plenty of per-shard frequency signal.
    workload = []
    for index, key in enumerate(keys):
        workload += [key] * max(1, 192 >> (index // 4))
    for i in range(len(workload) - 1, 0, -1):
        j = rng.randint(i + 1)
        workload[i], workload[j] = workload[j], workload[i]

    shard_count = 4
    config = ShardedOramConfig(
        shard_count=shard_count, oram_height=8, block_size=64
    )
    fleet = ShardedOramFleet(
        config, hashlib.sha256(b"sec-shard-master").digest()
    )
    observers = {
        sid: AccessPatternObserver().attach(shard.server)
        for sid, shard in sorted(fleet.shards.items())
    }
    client = ShardRoutingClient(fleet)
    for key in keys:
        client.write(key, b"value")
    for observer in observers.values():
        observer.clear()
    for key in workload:
        client.read(key)

    frequency = Counter(workload)
    leaf_count = 2 ** config.oram_height
    for sid, observer in observers.items():
        owned = sorted(
            (key for key in keys if fleet.ring.shard_for(key) == sid),
            key=lambda k: (-frequency[k], k),
        )
        leaves = observer.leaves
        assert len(leaves) >= 40  # enough per-shard samples to test
        handles = [leaf.to_bytes(4, "big") for leaf in leaves]
        assert frequency_attack(handles, owned) == 0.0
        assert path_uniformity_pvalue(leaves, leaf_count, bins=8) > 0.01
