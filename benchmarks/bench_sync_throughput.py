"""Experiment S3 — block-synchronization throughput (§VI-D's second half).

The paper: "at least two HarDTAPE instances (one for pre-execution and
one for block synchronization) are enough to run the pre-execution
service."  For that to hold, synchronizing one block — Merkle-verifying
every touched account and writing its pages into the ORAM — must fit
comfortably inside Ethereum's ~12 s block interval.

We grow the chain with realistic blocks and measure the simulated sync
time per block on the dedicated device.
"""

from __future__ import annotations

import pytest

from repro.core import HarDTAPEService, SecurityFeatures
from repro.workloads import EvaluationSetConfig, build_evaluation_set

from conftest import record_result

BLOCK_INTERVAL_S = 12.0


@pytest.fixture(scope="module")
def sync_measurements():
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=2, txs_per_block=8)
    )
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    device = service.devices[0]
    rows = []
    for _ in range(4):
        # A fresh realistic block lands on-chain...
        new_txs = evalset.transactions[:8]
        evalset.node.add_block(new_txs)
        target = service.synced_height + 1
        updates = evalset.node.sync_updates_for(target)
        root = evalset.node.block_at(target).block.header.state_root
        started = device.clock.now_us
        pages = device.hypervisor.sync_block(root, updates)
        elapsed_us = device.clock.now_us - started
        # Mirror the service bookkeeping (normally sync_new_blocks does it).
        for update in updates:
            service._synced_state.accounts[update.address] = update.account.copy()
        service.synced_height = target
        rows.append((target, len(updates), pages, elapsed_us))
    return rows


def test_block_sync_fits_block_interval(benchmark, sync_measurements):
    rows = benchmark(lambda: list(sync_measurements))

    lines = [
        "| block | accounts verified | ORAM pages written | sync time |",
        "|---|---|---|---|",
    ]
    worst_us = 0.0
    for block, accounts, pages, elapsed_us in rows:
        worst_us = max(worst_us, elapsed_us)
        lines.append(
            f"| #{block} | {accounts} | {pages} | {elapsed_us / 1000:.0f} ms |"
        )
    lines += [
        "",
        f"worst block: {worst_us / 1e6:.2f} s of a {BLOCK_INTERVAL_S:.0f} s "
        "block interval "
        f"({worst_us / 1e6 / BLOCK_INTERVAL_S:.0%} duty cycle)",
        "",
        "paper §VI-D: one dedicated device synchronizes blocks while the",
        "others pre-execute — it must (and does) keep up with ~12 s blocks.",
    ]
    record_result("sync_throughput", "Block-sync throughput (§VI-D)", lines)

    # Every block syncs well inside the block interval.
    assert worst_us < BLOCK_INTERVAL_S * 1e6 * 0.5
    # And the cost is dominated by ORAM page writes, which scale with
    # the touched-state size, not the chain length.
    assert all(pages > 0 for _, _, pages, _ in rows)
