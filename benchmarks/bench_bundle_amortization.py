"""Experiment F4b — bundle-size amortization (§VI-C).

Figure 4 uses one transaction per bundle, which the paper calls the
*lower bound* of performance: "only one ECDSA signature is needed for
each bundle independent of its size, so this overhead can be amortized
to all its transactions."  This bench sweeps the bundle size and shows
per-transaction time collapsing toward the ORAM-only cost.
"""

from __future__ import annotations

import pytest

from repro.core import HarDTAPEService, SecurityFeatures

from conftest import make_session, record_result

BUNDLE_SIZES = [1, 2, 4, 8, 16]


@pytest.fixture(scope="module")
def amortization(evalset):
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client, session = make_session(service)
    rows = []
    # One representative transaction repeated: isolates the per-bundle
    # fixed costs from workload variance.  Each bundle runs on a freshly
    # scrubbed core, so later bundles do not inherit warm caches.
    tx = evalset.transactions[0]
    for size in BUNDLE_SIZES:
        _, elapsed, breakdowns = client.pre_execute(
            service, session, [tx] * size
        )
        rows.append((size, elapsed / size, breakdowns))
    return rows


def test_bundle_amortization(benchmark, amortization):
    rows = benchmark(lambda: [(s, t) for s, t, _ in amortization])

    lines = [
        "| bundle size | per-tx time (ms) | vs single-tx bundle |",
        "|---|---|---|",
    ]
    single = rows[0][1]
    for size, per_tx in rows:
        lines.append(
            f"| {size} tx | {per_tx / 1000:.1f} | {per_tx / single:.2f}x |"
        )
    lines += [
        "",
        "paper: Figure 4's one-tx-per-bundle setting is the performance",
        "lower bound; the ~80 ms ECDSA cost is per bundle, so larger",
        "bundles amortize it across their transactions.",
    ]
    record_result("bundle_amortization", "Bundle-size amortization (§VI-C)", lines)

    per_tx = dict(rows)
    # Strictly decreasing per-tx cost with bundle size.
    values = [per_tx[size] for size in BUNDLE_SIZES]
    assert values == sorted(values, reverse=True)
    # The 16-tx bundle amortizes most of the ~83 ms fixed crypto.
    assert per_tx[16] < per_tx[1] - 60_000
