"""Experiment S2 — fleet saturation curve (extends §VI-D).

The paper derives the 25-HEVM-per-ORAM-server bound analytically
(⌊630 µs / 25 µs⌋).  Here the same bound emerges from a discrete-event
simulation: HEVM transaction profiles are *measured* from the real
pipeline (a full-security service run), then a fleet of N such HEVMs
shares one ORAM server and we sweep N until throughput stops scaling.
"""

from __future__ import annotations

import pytest

from repro.core import HarDTAPEService, SecurityFeatures
from repro.hardware.fleet import (
    FleetSimulator,
    profiles_from_breakdowns,
    saturation_point,
)

from conftest import make_session, record_result

SWEEP = [1, 2, 4, 8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def measured_profiles(evalset):
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client, session = make_session(service)
    breakdowns = []
    for tx in evalset.transactions[:16]:
        _, _, per_tx = client.pre_execute(service, session, [tx])
        breakdowns.extend(per_tx)
    return profiles_from_breakdowns(breakdowns)


def test_fleet_saturation(benchmark, measured_profiles):
    sim = FleetSimulator(measured_profiles)
    results = benchmark.pedantic(
        lambda: sim.sweep(SWEEP, transactions_per_hevm=20),
        iterations=1,
        rounds=1,
    )

    lines = [
        "| HEVMs | throughput (tx/s) | per-HEVM tx/s | server util | queue wait (µs) |",
        "|---|---|---|---|---|",
    ]
    for result in results:
        lines.append(
            f"| {result.hevm_count} | {result.throughput_tps:.1f} "
            f"| {result.throughput_tps / result.hevm_count:.2f} "
            f"| {result.server_utilization:.0%} "
            f"| {result.mean_queue_wait_us:.0f} |"
        )
    knee = saturation_point(results, threshold=0.9)
    lines += [
        "",
        f"server saturates (util ≥ 90%) at ≈ {knee} HEVMs",
        "paper's analytic bound: ⌊630 µs / 25 µs⌋ = 25 HEVMs per server",
        "(our per-access serialization gives a longer inter-query gap, so",
        "the simulated knee sits proportionally higher — same mechanism).",
    ]
    record_result("fleet_saturation", "Fleet saturation (extends §VI-D)", lines)

    by_count = {r.hevm_count: r for r in results}
    # Linear region: doubling HEVMs ~doubles throughput early on.
    assert by_count[2].throughput_tps == pytest.approx(
        2 * by_count[1].throughput_tps, rel=0.15
    )
    # Saturation region: the last doubling gains much less than 2x.
    assert (
        by_count[SWEEP[-1]].throughput_tps
        < 1.5 * by_count[SWEEP[-2]].throughput_tps
    )
    # The knee is the same order of magnitude as the paper's 25.
    assert 10 <= knee <= 150
    # Utilization is monotone in fleet size.
    utils = [r.server_utilization for r in results]
    assert utils == sorted(utils)
