"""Experiment REC — crash recovery and SP rollback detection.

The recovery plane's acceptance criteria as a recorded benchmark: kill
the Hypervisor at seeded virtual-time points mid-bundle (≥ 3 crashes),
restart from checkpoint + journal, and assert

* every crash-affected request completes after recovery or terminates
  with a typed FAILED status — closed accounting, nothing dropped;
* the converged world-state digest is byte-identical to the no-crash
  baseline run;
* a rollback attack (SP restores a pre-checkpoint ORAM tree across the
  restart) raises ``RollbackDetectedError`` on the first post-restart
  access and re-sync heals it; rolling back the durable store itself is
  refused at boot;
* zero-crash runs with checkpointing armed are byte-identical (traces,
  metrics, wire bytes, digest) to runs with it disabled.
"""

from __future__ import annotations

from repro.recovery.bench import RecoveryBenchConfig, run_recovery_bench

from conftest import record_result

SEED = 1


def test_crash_recovery_gates(benchmark):
    report = benchmark.pedantic(
        lambda: run_recovery_bench(RecoveryBenchConfig(seed=SEED)),
        iterations=1,
        rounds=1,
    )

    lines = [
        f"seed {SEED}, {report.crash['crashes_fired']} seeded crashes",
        "",
    ] + report.summary_lines()
    record_result(
        "crash_recovery",
        "Crash recovery and SP rollback detection",
        lines,
    )

    assert report.passed, report.gate_failures
    # Spelled out, so a regression names the broken criterion directly:
    assert all(report.identity.values())  # checkpointing is byte-invisible
    assert report.crash["crashes_fired"] >= 3
    assert (
        report.crash["affected_completed"]
        + report.crash["affected_failed_typed"]
        == report.crash["affected_total"]
    )
    assert report.crash["digest"] == report.baseline["digest"]
    assert report.rollback["detected_first_access"]
    assert report.rollback["healed"]
    assert report.rollback["store_rollback_refused"]
