"""Experiment SHARD — sharded-fleet scale-out and identity gates.

The ``repro.sharding`` acceptance criteria as a recorded benchmark:

* the seeded 1-shard fleet is byte-identical (trace, metrics, wire,
  world digest) to the unsharded baseline;
* aggregate throughput scales near-linearly — ≥ 6x at 8 shards;
* every shard's physical leaf trace defeats the frequency attack and
  passes chi-square uniformity (obliviousness survives partitioning);
* a mixed path+pyramid fleet returns bit-exact reads;
* a shard add remaps ~K/N pages, nothing more.
"""

from __future__ import annotations

import pytest

from repro.sharding.bench import ShardBenchConfig, run_shard_bench

from conftest import record_result

pytestmark = pytest.mark.sharding

SEED = 1


def test_shard_scaleout_gates(benchmark):
    report = benchmark.pedantic(
        lambda: run_shard_bench(ShardBenchConfig.smoke(seed=SEED)),
        iterations=1,
        rounds=1,
    )

    lines = [f"seed {SEED}, smoke-sized fleet sweep", ""]
    lines += report.summary_lines()
    record_result(
        "shard_scaleout",
        "Sharded ORAM fleet: scale-out and identity gates",
        lines,
    )

    assert report.passed, report.gate_failures
    # Spelled out, so a regression names the broken criterion directly:
    assert all(report.identity.values())   # 1-shard fleet == unsharded, byte-for-byte
    assert report.speedup >= 6.0           # near-linear to 8 shards
    for row in report.distinguisher:       # per-shard obliviousness
        assert row["frequency_accuracy"] == 0.0
        assert row["uniformity_pvalue"] > 0.01
    assert report.mixed["ok"]              # pyramid shards bit-exact
    shards = report.ring["shards"]
    assert report.ring["remap_fraction"] <= 2.5 / shards
