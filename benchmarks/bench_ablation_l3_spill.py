"""Ablation A5 — layer-3 spill policies for oversized frames.

§IV-B considers and rejects "implement the layer 3 memory as an ORAM,
which however might be too expensive", choosing instead to abort frames
that exceed half of layer 2 (which is why rollups are future work,
§VI-B).  This ablation measures the actual design space on rollup
batches:

* **abort** — the paper's policy (bundle fails),
* **spill (plain)** — pages spill to AES-GCM layer 3: fast, but the
  spill pattern leaks the frame's size and access order (attack A5),
* **spill (L3 = ORAM)** — pattern-safe, and catastrophically slow.
"""

from __future__ import annotations

import pytest

from repro.evm.interpreter import ChainContext
from repro.hardware.hevm import HevmCore
from repro.hardware.timing import CostModel, SimClock
from repro.state import BlockHeader, DictBackend, Transaction, to_address
from repro.workloads.contracts import rollup

from conftest import record_result

ALICE = to_address(0xA1)
BATCHES = [2_000, 10_000, 20_000]


def _run(updates: int, policy: str, l3_oram: bool):
    backend = DictBackend()
    backend.ensure(ALICE).balance = 10**21
    contract = to_address(0x0110)
    backend.ensure(contract).code = rollup.rollup_runtime()
    header = BlockHeader(
        number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
        timestamp=0, coinbase=to_address(0xC0),
    )
    core = HevmCore(
        0, SimClock(), CostModel(), oversize_policy=policy, l3_oram=l3_oram
    )
    tx = Transaction(
        sender=ALICE, to=contract,
        data=rollup.rollup_calldata([(i, 1) for i in range(updates)]),
        gas_limit=10**9,
    )
    results, breakdowns, stats, _ = core.run_bundle(
        [tx], ChainContext(header), backend, None,
        storage_via_oram=False, code_via_oram=False, charge_fees=False,
    )
    if stats.aborted:
        return None
    return breakdowns[0].total_us


def test_l3_spill_design_space(benchmark):
    def sweep():
        rows = []
        for updates in BATCHES:
            rows.append(
                (
                    updates,
                    _run(updates, "abort", False),
                    _run(updates, "spill", False),
                    _run(updates, "spill", True),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)

    def fmt(value):
        return "ABORT" if value is None else f"{value / 1000:.1f} ms"

    lines = [
        "| rollup batch | abort (paper) | spill, plain L3 | spill, L3 = ORAM |",
        "|---|---|---|---|",
    ]
    for updates, aborted, plain, oblivious in rows:
        lines.append(
            f"| {updates:,} updates | {fmt(aborted)} | {fmt(plain)} "
            f"| {fmt(oblivious)} |"
        )
    lines += [
        "",
        "plain spill is fast but leaks the oversized frame's page-access",
        "pattern (A5); the pattern-safe L3-ORAM variant exceeds the 600 ms",
        "response bound — the paper's reason for choosing abort + future work.",
    ]
    record_result("ablation_l3_spill", "Ablation — layer-3 spill policies", lines)

    big = rows[-1]
    assert big[1] is None                 # abort policy kills big rollups
    assert big[2] is not None             # plain spill completes
    assert big[3] is not None
    assert big[3] > 600_000               # ORAM spill busts the latency bound
    assert big[3] > 20 * big[2]           # and is ≫ plain spill
