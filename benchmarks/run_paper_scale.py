"""Paper-scale experiment runner (not collected by pytest).

The pytest benchmarks use a laptop-scale evaluation set so the whole
harness finishes in ~1 minute.  This script runs the Figure 4 sweep at
a user-chosen scale — up to the paper's 100 blocks — and prints the
same comparison table.  Expect minutes of wall time at larger scales
(the pure-Python ORAM moves ~100 encrypted KB per access).

Usage::

    python benchmarks/run_paper_scale.py --blocks 20 --txs-per-block 10
    python benchmarks/run_paper_scale.py --blocks 100 --txs-per-block 20 \
        --levels ES full --workers 4

``--workers N`` fans the security levels across processes
(:mod:`repro.perf.parallel`); numbers are identical to a serial run —
each worker rebuilds the same deterministic evaluation set — only wall
clock changes.
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.baselines import GethSimulator
from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.workloads import EvaluationSetConfig, build_evaluation_set

PAPER_MS = {"geth": 1.0, "raw": 1.5, "E": 4.4, "ES": 84.4, "ESO": 114.4,
            "full": 164.4}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=20)
    parser.add_argument("--txs-per-block", type=int, default=10)
    parser.add_argument("--seed", type=int, default=19_145_194)
    parser.add_argument(
        "--levels", nargs="+", default=["raw", "E", "ES", "ESO", "full"],
        choices=["raw", "E", "ES", "ESO", "full"],
    )
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for the level sweep (1 = serial)")
    args = parser.parse_args()

    started = time.time()
    print(f"building evaluation set: {args.blocks} blocks x "
          f"{args.txs_per_block} tx ...")
    evalset = build_evaluation_set(
        EvaluationSetConfig(
            blocks=args.blocks,
            txs_per_block=args.txs_per_block,
            seed=args.seed,
        )
    )
    transactions = evalset.transactions
    print(f"  {len(transactions)} transactions "
          f"({time.time() - started:.0f}s wall)\n")

    print(f"{'config':>10} {'paper ms':>9} {'mean ms':>9} {'p50':>7} "
          f"{'p95':>7} {'wall s':>7}")

    geth = GethSimulator(evalset.node.state_at(evalset.node.height).copy())
    chain = evalset.node.chain_context(evalset.node.latest.block.header)
    times = [geth.execute(chain, tx, charge_fees=False).time_us
             for tx in transactions]
    _report("geth", times, 0.0)

    if args.workers > 1:
        from repro.perf.parallel import run_parallel
        from repro.perf.workers import paper_scale_level

        rows = run_parallel(
            paper_scale_level,
            [(level, args.blocks, args.txs_per_block, args.seed)
             for level in args.levels],
            workers=args.workers,
        )
        for level, times, wall_s in rows:
            _report(level, times, wall_s)
    else:
        for level in args.levels:
            wall_started = time.time()
            service = HarDTAPEService(
                evalset.node, SecurityFeatures.from_level(level), charge_fees=False
            )
            client = PreExecutionClient(service.manufacturer.root_public_key)
            session = client.connect(service)
            times = []
            for tx in transactions:
                _, elapsed, _ = client.pre_execute(service, session, [tx])
                times.append(elapsed)
            _report(level, times, time.time() - wall_started)

    print(f"\ntotal wall time: {time.time() - started:.0f}s")
    return 0


def _report(name: str, times_us: list[float], wall_s: float) -> None:
    ordered = sorted(times_us)
    mean = statistics.mean(times_us) / 1000
    p50 = ordered[len(ordered) // 2] / 1000
    p95 = ordered[int(len(ordered) * 0.95)] / 1000
    label = "geth" if name == "geth" else f"-{name}"
    print(f"{label:>10} {PAPER_MS[name]:>9.1f} {mean:>9.1f} {p50:>7.1f} "
          f"{p95:>7.1f} {wall_s:>7.0f}")


if __name__ == "__main__":
    raise SystemExit(main())
