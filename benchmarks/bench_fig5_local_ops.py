"""Experiment F5 — Figure 5: per-operation time (log scale) of Geth,
TSC-VEE, and HarDTAPE when all data is found locally.

Three microbenchmarks, warmed up so bytecode and storage live in the
lowest-level cache: Arithmetic (a pure-ALU loop), Storage (warm
SLOAD/SSTORE), and Transfer (ERC-20 transfer).  Paper: no significant
difference between the three platforms, except Geth slower on Transfer.
"""

from __future__ import annotations

import pytest

from repro.baselines import GethSimulator, TscVeeSimulator
from repro.evm import ChainContext
from repro.hardware.timing import CostModel
from repro.evm.tracer import CountingTracer
from repro.evm.executor import execute_transaction
from repro.state import DictBackend, JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, label, push, push_label
from repro.workloads.contracts import erc20

from conftest import record_result

ALICE = to_address(0xA1)
BOB = to_address(0xB2)

ARITH_LOOPS = 200
STORAGE_SLOTS = 16


def _arith_contract() -> bytes:
    """200 iterations of add/mul/xor on the stack."""
    return assemble(
        push(0)                                     # [i]
        + [label("loop"), "JUMPDEST"]
        + ["DUP1"] + push(3) + ["MUL"] + push(7) + ["XOR", "POP"]
        + push(1) + ["ADD"]
        + ["DUP1"] + push(ARITH_LOOPS) + ["GT", push_label("loop"), "JUMPI"]
        + ["POP", "PUSH0", "PUSH0", "RETURN"]
    )


def _storage_contract() -> bytes:
    """Read-modify-write STORAGE_SLOTS warm slots."""
    body = []
    for slot in range(STORAGE_SLOTS):
        body += push(slot) + ["SLOAD"] + push(1) + ["ADD"] + push(slot) + ["SSTORE"]
    return assemble(body + ["PUSH0", "PUSH0", "RETURN"])


@pytest.fixture(scope="module")
def platforms():
    """(backend factory, contract addresses) for the three benchmarks."""
    def fresh_backend():
        backend = DictBackend()
        backend.ensure(ALICE).balance = 10**21
        backend.ensure(BOB).balance = 10**21
        backend.ensure(to_address(0xA11)).code = _arith_contract()
        storage_contract = backend.ensure(to_address(0x511))
        storage_contract.code = _storage_contract()
        storage_contract.storage.update({slot: 1 for slot in range(STORAGE_SLOTS)})
        token = backend.ensure(to_address(0x711))
        token.code = erc20.erc20_runtime()
        token.storage[erc20.balance_slot(ALICE)] = 10**12
        return backend

    return fresh_backend


def _workloads():
    return {
        "Arithmetic": Transaction(sender=ALICE, to=to_address(0xA11)),
        "Storage": Transaction(sender=ALICE, to=to_address(0x511)),
        "Transfer": Transaction(
            sender=ALICE, to=to_address(0x711),
            data=erc20.transfer_calldata(BOB, 5),
        ),
    }


def _hevm_local_time(backend, chain, tx) -> float:
    """HEVM time with all data in layer 1 (no ORAM, no channel costs)."""
    cost = CostModel()
    tracer = CountingTracer()
    state = JournaledState(backend)
    # Warm-up pass fills the (bundle-lifetime) caches.
    execute_transaction(state, chain, tx, charge_fees=False, check_nonce=False)
    state.begin_transaction()
    result = execute_transaction(
        state, chain, tx, tracer=tracer, charge_fees=False, check_nonce=False
    )
    assert result.success, result.error
    return sum(
        cost.hevm_instruction_us(group, count)
        for group, count in tracer.counts.by_group.items()
    )


@pytest.fixture(scope="module")
def figure5(platforms, header_chain=None):
    from repro.state import BlockHeader

    header = BlockHeader(
        number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
        timestamp=0, coinbase=to_address(0xC0),
    )
    chain = ChainContext(header)
    cost = CostModel()
    results: dict[str, dict[str, float]] = {}
    for name, tx in _workloads().items():
        row: dict[str, float] = {}
        # The "Transfer" bench is a whole contract call: include each
        # platform's per-invocation entry cost, as the paper's Geth-vs-
        # rest gap comes from exactly that path.
        invocation = name == "Transfer"
        geth = GethSimulator(platforms(), cost)
        geth.execute(chain, tx, charge_fees=False)  # warm-up
        run = geth.execute(chain, tx, charge_fees=False)
        assert run.result.success
        row["Geth"] = (run.time_us - cost.geth_tx_fixed_us) + (
            cost.geth_invocation_us if invocation else 0.0
        )

        vee = TscVeeSimulator(platforms(), contract=tx.to, cost=cost)
        vee.execute(chain, tx, charge_fees=False)  # prefetch + warm-up
        run = vee.execute(chain, tx, charge_fees=False)
        assert run.result.success
        row["TSC-VEE"] = run.time_us + (
            cost.tscvee_invocation_us if invocation else 0.0
        )

        row["HarDTAPE"] = _hevm_local_time(platforms(), chain, tx) + (
            cost.hevm_invocation_us if invocation else 0.0
        )
        results[name] = row
    return results


def test_figure5_local_operations(benchmark, figure5, platforms):
    from repro.state import BlockHeader

    header = BlockHeader(
        number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
        timestamp=0, coinbase=to_address(0xC0),
    )
    chain = ChainContext(header)
    tx = _workloads()["Transfer"]
    backend = platforms()
    state = JournaledState(backend)

    def kernel():
        state.begin_transaction()
        execute_transaction(state, chain, tx, charge_fees=False, check_nonce=False)

    benchmark(kernel)

    lines = [
        "| benchmark | Geth (µs) | TSC-VEE (µs) | HarDTAPE (µs) |",
        "|---|---|---|---|",
    ]
    for name, row in figure5.items():
        lines.append(
            f"| {name} | {row['Geth']:.1f} | {row['TSC-VEE']:.1f} "
            f"| {row['HarDTAPE']:.1f} |"
        )
    lines += [
        "",
        "paper: all three platforms comparable on local data; Geth slower on Transfer",
    ]
    record_result("fig5_local_ops", "Figure 5 — local per-op time", lines)

    for name, row in figure5.items():
        values = sorted(row.values())
        if name == "Transfer":
            # Geth's call-frame overhead makes it the slow one.
            assert row["Geth"] == max(row.values())
            assert row["Geth"] > 3 * min(row.values())
        else:
            # "No significant difference": within ~6x on a log-scale plot.
            assert values[-1] < 6 * values[0], (name, row)
