"""Experiment S1 — §VI-D scalability.

Paper analysis: three HEVMs per chip at 164.4 ms/tx ⇒ ≈ 18 tx/s per
chip, above Ethereum's ≈ 17 tx/s; the ORAM server spends ≈ 25 µs CPU per
query while each full-load HEVM issues a query every ≈ 630 µs, so one
server sustains ⌊630/25⌋ = 25 HEVMs.

We measure the same three quantities from the simulation: per-tx time,
per-chip throughput, the ORAM server's per-query CPU, and the measured
inter-query gap of a full-load HEVM.
"""

from __future__ import annotations

import pytest

from repro.core import HarDTAPEService, SecurityFeatures

from conftest import make_session, record_result

ETHEREUM_TPS = 17.0


@pytest.fixture(scope="module")
def scalability(evalset):
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client, session = make_session(service)
    server = service.oram_server
    queries_before = server.stats.reads
    busy_before = server.stats.busy_time_us

    total_time_us = 0.0
    active_time_us = 0.0  # time the HEVM is busy (excludes channel crypto)
    tx_count = 0
    for tx in evalset.transactions:
        _, elapsed, breakdowns = client.pre_execute(service, session, [tx])
        total_time_us += elapsed
        active_time_us += sum(b.total_us for b in breakdowns)
        tx_count += 1

    queries = server.stats.reads - queries_before
    busy_us = server.stats.busy_time_us - busy_before
    return {
        "per_tx_us": total_time_us / tx_count,
        "hevm_busy_us": active_time_us,
        "queries": queries,
        "server_cpu_per_query_us": busy_us / max(queries, 1),
        "mean_query_gap_us": active_time_us / max(queries, 1),
    }


def test_scalability(benchmark, scalability):
    stats = benchmark(lambda: dict(scalability))

    per_tx_s = stats["per_tx_us"] / 1e6
    chip_tps = 3 * (1.0 / per_tx_s)
    gap = stats["mean_query_gap_us"]
    server_cpu = stats["server_cpu_per_query_us"]
    max_hevms_per_server = int(gap // server_cpu)

    lines = [
        "| metric | paper | simulated |",
        "|---|---|---|",
        f"| per-tx time (-full) | 164.4 ms | {per_tx_s * 1000:.1f} ms |",
        f"| chip throughput (3 HEVMs) | ≈18 tx/s | {chip_tps:.1f} tx/s |",
        f"| vs Ethereum Mainnet | ≥17 tx/s | {'sustains' if chip_tps >= ETHEREUM_TPS else 'BELOW'} {ETHEREUM_TPS} tx/s |",
        f"| ORAM server CPU/query | 25 µs | {server_cpu:.1f} µs |",
        f"| HEVM inter-query gap | 630 µs | {gap:.0f} µs |",
        f"| HEVMs per ORAM server | ⌊630/25⌋ = 25 | {max_hevms_per_server} |",
        "",
        f"ORAM queries measured: {stats['queries']}",
    ]
    record_result("scalability", "§VI-D scalability", lines)

    # Shape: the chip out-runs Ethereum, and one ORAM server carries
    # dozens of HEVMs (i.e. the server is NOT the near-term bottleneck).
    assert chip_tps >= ETHEREUM_TPS
    assert server_cpu == pytest.approx(25.0)
    assert 10 <= max_hevms_per_server <= 200
