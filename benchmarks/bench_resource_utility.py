"""Experiment R1 — §VI-A resource utility.

Paper numbers (Vivado report, one HEVM on an XCZU15EV): 103,388 LUTs,
37,104 FFs, 509 KB BlockRAM; LUT budget allows three HEVMs.  Hypervisor:
156 KB binary + 92 KB peak stack + 0 heap = 248 KB within the 256 KB OCM.
"""

from __future__ import annotations

from repro.hardware.resources import (
    HEVM_COMPONENTS,
    HypervisorMemoryBudget,
    XCZU15EV,
    hevm_resources,
    max_hevms,
    shared_resources,
)

from conftest import record_result


def test_resource_utility(benchmark):
    per_hevm = benchmark(hevm_resources)
    count, bottleneck = max_hevms()
    shared = shared_resources()
    budget = HypervisorMemoryBudget()

    lines = [
        "| metric | paper | model |",
        "|---|---|---|",
        f"| LUTs per HEVM | 103,388 | {per_hevm.luts:,} |",
        f"| FFs per HEVM | 37,104 | {per_hevm.ffs:,} |",
        f"| BlockRAM per HEVM | 509 KB | {per_hevm.bram_bytes // 1024} KB |",
        f"| HEVMs per chip | 3 (LUT-bound) | {count} ({bottleneck}-bound) |",
        f"| Hypervisor binary | 156 KB | {budget.binary_kb} KB |",
        f"| Hypervisor stack peak | 92 KB | {budget.peak_stack_kb} KB |",
        f"| Hypervisor heap | 0 | {budget.heap_kb} |",
        f"| Total vs 256 KB OCM | 248 KB, fits | {budget.total_kb} KB, "
        f"{'fits' if budget.fits else 'OVERFLOWS'} |",
        "",
        "Per-HEVM component budget:",
    ]
    for name, vector in HEVM_COMPONENTS.items():
        lines.append(
            f"  {name:18s} {vector.luts:>7,} LUT {vector.ffs:>7,} FF "
            f"{vector.bram_bytes // 1024:>5} KB BRAM"
        )
    lines.append(
        f"  shared (per chip)  {shared.luts:>7,} LUT {shared.ffs:>7,} FF "
        f"{shared.bram_bytes // 1024:>5} KB BRAM"
    )
    record_result("resource_utility", "§VI-A resource utility", lines)

    assert per_hevm.luts == 103_388
    assert per_hevm.ffs == 37_104
    assert per_hevm.bram_bytes == 509 * 1024
    assert (count, bottleneck) == (3, "LUT")
    assert 4 * per_hevm.luts > XCZU15EV.luts  # a fourth core cannot fit
    assert budget.total_kb == 248 and budget.fits
