"""Experiment F4 — Figure 4: end-to-end per-transaction time of Geth and
HarDTAPE at each security level (-raw, -E, -ES, -ESO, -full).

Each evaluation-set transaction runs as its own bundle (the paper's
lower-bound setting: per-bundle ECDSA amortizes over one transaction).
Times are simulated (see DESIGN.md §5); paper values for comparison:
Geth ≈ HarDTAPE-raw − 0.5 ms; +2.9 ms for E; +80 ms for ES; +30 ms for
storage ORAM; ≈164.4 ms average for -full.
"""

from __future__ import annotations

import pytest

from repro.baselines import GethSimulator
from repro.core import HarDTAPEService, SecurityFeatures
from conftest import make_session, record_result

PAPER_MS = {
    "geth": 1.0,
    "raw": 1.5,
    "E": 4.4,
    "ES": 84.4,
    "ESO": 114.4,
    "full": 164.4,
}

LEVELS = ("raw", "E", "ES", "ESO", "full")


@pytest.fixture(scope="module")
def figure4(evalset):
    transactions = evalset.transactions
    results: dict[str, float] = {}

    geth = GethSimulator(evalset.node.state_at(evalset.node.height).copy())
    chain = evalset.node.chain_context(evalset.node.latest.block.header)
    geth_times = [
        geth.execute(chain, tx, charge_fees=False).time_us for tx in transactions
    ]
    results["geth"] = sum(geth_times) / len(geth_times)

    breakdowns_by_level = {}
    for level in LEVELS:
        service = HarDTAPEService(
            evalset.node, SecurityFeatures.from_level(level), charge_fees=False
        )
        client, session = make_session(service)
        times = []
        level_breakdowns = []
        for tx in transactions:
            _, elapsed, breakdowns = client.pre_execute(service, session, [tx])
            times.append(elapsed)
            level_breakdowns.extend(breakdowns)
        results[level] = sum(times) / len(times)
        breakdowns_by_level[level] = level_breakdowns
    return results, breakdowns_by_level


def test_figure4_per_tx_time(benchmark, figure4, evalset):
    results, breakdowns_by_level = figure4

    # Benchmark kernel: one full-security pre-execution round trip.
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    client, session = make_session(service)
    tx = evalset.transactions[0]
    benchmark.pedantic(
        lambda: client.pre_execute(service, session, [tx]),
        iterations=1,
        rounds=3,
    )

    lines = [
        "| configuration | paper (ms) | simulated (ms) |",
        "|---|---|---|",
    ]
    for name in ("geth", *LEVELS):
        lines.append(
            f"| {'Geth' if name == 'geth' else 'HarDTAPE-' + name} "
            f"| {PAPER_MS[name]:.1f} | {results[name] / 1000:.1f} |"
        )
    full = breakdowns_by_level["full"]
    n = len(full)
    lines += [
        "",
        "-full per-tx breakdown (simulated):",
        f"  execution  : {sum(b.execution_us for b in full) / n / 1000:.2f} ms",
        f"  ORAM (K-V) : {sum(b.oram_storage_us for b in full) / n / 1000:.2f} ms"
        " (paper ≈ 30 ms)",
        f"  ORAM (code): {sum(b.oram_code_us for b in full) / n / 1000:.2f} ms"
        " (paper ≈ 50 ms)",
    ]
    record_result("fig4_end_to_end", "Figure 4 — end-to-end per-tx time", lines)

    # Shape assertions, per the paper's claims:
    # (1) strict ordering of configurations;
    assert (
        results["geth"] < results["raw"] < results["E"]
        < results["ES"] < results["ESO"] < results["full"]
    )
    # (2) -raw is within ~a millisecond of Geth;
    assert results["raw"] - results["geth"] < 2_000
    # (3) encryption is cheap (single-digit ms);
    assert results["E"] - results["raw"] < 10_000
    # (4) signatures add ~80 ms;
    assert 40_000 < results["ES"] - results["E"] < 160_000
    # (5) ORAM adds tens of ms, code ORAM more than storage ORAM;
    assert results["ESO"] - results["ES"] > 5_000
    assert results["full"] - results["ESO"] > 5_000
    # (6) -full lands in the paper's order of magnitude (~100-300 ms)
    #     and under the 600 ms usability bound of §III-A.
    assert 80_000 < results["full"] < 600_000
