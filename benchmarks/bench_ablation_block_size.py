"""Ablation A1 — ORAM *block* size (paper §IV-D, problem 1).

The paper argues 32-byte blocks violate Path ORAM's O(log²n)-bit block
lower bound and chooses 1 KB pages.  We sweep the block size and report
(a) whether the bound holds for a 1.1 TB world state, and (b) the
simulated bandwidth cost per logical storage-record read — small blocks
fail the bound and large blocks waste bandwidth; 1 KB sits at the knee.
"""

from __future__ import annotations

import math

from repro.hardware.timing import CostModel

from conftest import record_result

WORLD_STATE_BYTES = 1.1e12  # the paper's full-sync size


def _analyze(block_bytes: int) -> dict:
    n_blocks = WORLD_STATE_BYTES / block_bytes
    height = math.ceil(math.log2(n_blocks))
    block_bits = 8 * block_bytes
    bound_bits = math.ceil(math.log2(n_blocks)) ** 2
    cost = CostModel()
    access_us = cost.oram_access_us(height, 4, block_bytes / 1024.0)
    # Bytes on the wire per logical 32-byte record read.
    wire_bytes = 2 * (height + 1) * 4 * block_bytes
    return {
        "block_bytes": block_bytes,
        "height": height,
        "meets_bound": block_bits >= bound_bits,
        "bound_bits": bound_bits,
        "access_us": access_us,
        "wire_bytes_per_record": wire_bytes,
    }


def test_block_size_ablation(benchmark):
    sizes = [32, 128, 512, 1024, 4096, 16384]
    rows = benchmark(lambda: [_analyze(size) for size in sizes])

    lines = [
        "| block | tree height | ≥ log²n bits? | access (ms) | wire KB / record |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['block_bytes']} B | {row['height']} "
            f"| {'yes' if row['meets_bound'] else 'NO'} "
            f"| {row['access_us'] / 1000:.2f} "
            f"| {row['wire_bytes_per_record'] / 1024:.0f} |"
        )
    lines += [
        "",
        "paper: 32 B blocks give 256 bits < log²n ≈ 1225; 1 KB meets the",
        "bound (n ≈ 10⁹) while keeping per-access wire cost moderate.",
    ]
    record_result("ablation_block_size", "Ablation — ORAM block size", lines)

    by_size = {row["block_bytes"]: row for row in rows}
    assert not by_size[32]["meets_bound"]        # the paper's problem (1)
    assert by_size[1024]["meets_bound"]          # the paper's choice
    assert abs(by_size[1024]["bound_bits"] - 900) < 400  # log2(1e9)^2 ≈ 900
    # Wire cost grows superlinearly past the knee.
    assert (
        by_size[16384]["wire_bytes_per_record"]
        > 8 * by_size[1024]["wire_bytes_per_record"]
    )
