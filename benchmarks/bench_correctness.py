"""Experiment C1 — §VI-B pre-execution correctness.

HarDTAPE's traces are compared against the node's ground truth
(debug_traceTransaction equivalent) for every transaction in the
evaluation set: status, gas, return data, and storage effects must all
match.  The paper reports "HarDTAPE can run the remaining transactions
correctly" (rollups excepted); we report the match rate.
"""

from __future__ import annotations

import pytest

from repro.core import HarDTAPEService, SecurityFeatures
from repro.evm.executor import execute_transaction
from repro.state.journal import JournaledState

from conftest import make_session, record_result


@pytest.fixture(scope="module")
def correctness(evalset, full_service):
    client, session = make_session(full_service)
    matches = 0
    mismatches = []
    for index, tx in enumerate(evalset.transactions):
        ground_state = JournaledState(
            evalset.node.state_at(full_service.synced_height).copy()
        )
        expected = execute_transaction(
            ground_state, full_service.pending_chain_context(), tx,
            charge_fees=False,
        )
        report, _, _ = client.pre_execute(full_service, session, [tx])
        trace = report.traces[0]
        same = (
            trace.status == expected.status
            and trace.gas_used == expected.gas_used
            and trace.return_data == expected.return_data
            and trace.storage_changes == dict(expected.write_set.storage)
        )
        if same:
            matches += 1
        else:
            mismatches.append(index)
    return matches, mismatches, len(evalset.transactions)


def test_correctness_vs_ground_truth(benchmark, correctness, evalset, full_service):
    matches, mismatches, total = correctness

    client, session = make_session(full_service)
    tx = evalset.transactions[0]
    benchmark.pedantic(
        lambda: client.pre_execute(full_service, session, [tx]),
        iterations=1, rounds=3,
    )

    lines = [
        f"transactions checked : {total}",
        f"exact trace matches  : {matches}",
        f"mismatches           : {mismatches or 'none'}",
        "",
        "paper: all non-rollup evaluation-set transactions traced identically "
        "to the on-chain ground truth",
    ]
    record_result("correctness", "§VI-B pre-execution correctness", lines)
    assert matches == total
