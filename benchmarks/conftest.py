"""Shared fixtures and result recording for the benchmark harness.

Every benchmark writes its paper-vs-measured table to
``benchmarks/results/<experiment>.md`` (and echoes it to stdout), so a
full ``pytest benchmarks/ --benchmark-only`` run regenerates the data
behind every table and figure in the paper.  EXPERIMENTS.md indexes the
output files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.workloads import EvaluationSetConfig, build_evaluation_set

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The scaled-down stand-in for the paper's 100-block evaluation set;
# raise these for a longer, closer-to-paper run.
EVALSET_CONFIG = EvaluationSetConfig(
    blocks=4,
    txs_per_block=8,
    profile_contract_count=16,
)


def record_result(name: str, title: str, lines: list[str]) -> str:
    """Write a result table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = f"# {title}\n\n" + "\n".join(lines) + "\n"
    path = RESULTS_DIR / f"{name}.md"
    path.write_text(body)
    print(f"\n=== {title} ===")
    for line in lines:
        print(line)
    return body


@pytest.fixture(scope="session")
def evalset():
    return build_evaluation_set(EVALSET_CONFIG)


@pytest.fixture(scope="session")
def full_service(evalset):
    return HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )


def make_session(service):
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x10" * 32
    )
    return client, client.connect(service)
