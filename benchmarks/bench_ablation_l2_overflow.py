"""Ablation A3 — layer-2 size vs Memory Overflow rate (paper §IV-B).

The paper provides 1 MB of layer-2 memory per HEVM and aborts any frame
that reaches half of it; rollup transactions are the known casualty.
We sweep the layer-2 capacity and measure which evaluation-set workloads
(normal frames vs rollup batches of increasing size) survive.
"""

from __future__ import annotations

from repro.crypto.kdf import Drbg
from repro.hardware.hevm import FRAME_BASE_BYTES
from repro.hardware.memory_layers import Layer2CallStack, MemoryOverflowError

from conftest import record_result

# Representative frame Memory footprints (bytes): typical Table I frames
# plus rollup batches (64 B of Memory per storage-record update).
WORKLOADS = {
    "typical frame (4 KB)": 4 * 1024,
    "large frame (64 KB)": 64 * 1024,
    "rollup 1k updates": 1_000 * 64,
    "rollup 4k updates": 4_000 * 64,
    "rollup 8k updates": 8_000 * 64,
    "rollup 16k updates": 16_000 * 64,
}

L2_SIZES_KB = [128, 256, 512, 1024, 2048]


def _fits(l2_kb: int, memory_bytes: int) -> bool:
    l2 = Layer2CallStack(capacity_bytes=l2_kb * 1024, rng=Drbg(b"a3"))
    try:
        l2.push_frame(FRAME_BASE_BYTES + memory_bytes)
    except MemoryOverflowError:
        return False
    return True


def test_l2_overflow_sweep(benchmark):
    matrix = benchmark(
        lambda: {
            name: {l2: _fits(l2, size) for l2 in L2_SIZES_KB}
            for name, size in WORKLOADS.items()
        }
    )

    header = "| workload | " + " | ".join(f"{kb} KB" for kb in L2_SIZES_KB) + " |"
    lines = [header, "|" + "---|" * (len(L2_SIZES_KB) + 1)]
    for name, row in matrix.items():
        cells = " | ".join("ok" if row[kb] else "OVERFLOW" for kb in L2_SIZES_KB)
        lines.append(f"| {name} | {cells} |")
    lines += [
        "",
        "paper: 1 MB layer 2 (512 KB frame limit) covers normal frames;",
        "rollups exceed it and abort — support left as future work.",
    ]
    record_result("ablation_l2_overflow", "Ablation — layer-2 size vs overflow", lines)

    # The paper's configuration: normal frames fit, the biggest rollup not.
    assert matrix["typical frame (4 KB)"][1024]
    assert matrix["large frame (64 KB)"][1024]
    assert matrix["rollup 4k updates"][1024]
    assert not matrix["rollup 8k updates"][1024]
    # Doubling layer 2 rescues the 8k-update rollup (a future-work path).
    assert matrix["rollup 8k updates"][2048]
    # A 128 KB layer 2 would already break large normal frames.
    assert not matrix["large frame (64 KB)"][128]
