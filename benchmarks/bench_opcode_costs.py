"""Experiment CAL — per-opcode-group cost calibration (opbench-style).

The paper cites OpBench [13] for the observation that gas cost tracks
computing-resource consumption.  This bench measures, per instruction
group, (a) the calibrated per-op simulated time on Geth and the HEVM and
(b) the *gas-per-microsecond* ratio, verifying the gas ≈ resource-use
proportionality the SP's DoS policy (§IV-B) relies on.
"""

from __future__ import annotations

import pytest

from repro.evm import ChainContext, execute_transaction
from repro.evm.tracer import CountingTracer
from repro.hardware.timing import CostModel
from repro.state import BlockHeader, DictBackend, JournaledState, Transaction, to_address
from repro.workloads.asm import assemble, push

from conftest import record_result

ALICE = to_address(0xA1)

# One microbenchmark program per group: (name, program, group).
def _programs():
    arith = []
    for _ in range(60):
        arith += push(12345) + push(67) + ["MUL", "POP"]
    compare = []
    for _ in range(60):
        compare += push(5) + push(9) + ["LT", "POP"]
    memory = []
    for i in range(60):
        memory += push(i) + push(i * 32) + ["MSTORE"]
    storage = []
    for i in range(30):
        storage += push(i) + ["SLOAD", "POP"]
    sha3 = []
    for _ in range(20):
        sha3 += push(64) + ["PUSH0", "SHA3", "POP"]
    return {
        "arithmetic": arith + ["STOP"],
        "comparison": compare + ["STOP"],
        "memory": memory + ["STOP"],
        "storage": storage + ["STOP"],
        "sha3": sha3 + ["STOP"],
    }


def _measure(program) -> tuple[dict[str, int], int]:
    backend = DictBackend()
    backend.ensure(ALICE).balance = 10**18
    target = to_address(0x0B)
    backend.ensure(target).code = assemble(program)
    backend.ensure(target).storage.update({i: 1 for i in range(30)})
    header = BlockHeader(
        number=1, parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
        timestamp=0, coinbase=to_address(0xC0),
    )
    tracer = CountingTracer()
    state = JournaledState(backend)
    result = execute_transaction(
        state, ChainContext(header), Transaction(sender=ALICE, to=target),
        tracer=tracer,
    )
    assert result.success, result.error
    return dict(tracer.counts.by_group), result.gas_used - 21_000


def test_opcode_group_costs(benchmark):
    cost = CostModel()

    def sweep():
        rows = {}
        for group, program in _programs().items():
            counts, gas = _measure(program)
            geth_us = sum(
                cost.geth_instruction_us(g, n) for g, n in counts.items()
            )
            hevm_us = sum(
                cost.hevm_instruction_us(g, n) for g, n in counts.items()
            )
            ops = counts.get(group, 1)
            rows[group] = {
                "ops": ops,
                "gas": gas,
                "geth_us_per_op": geth_us / ops,
                "hevm_us_per_op": hevm_us / ops,
                "gas_per_geth_us": gas / geth_us if geth_us else 0.0,
            }
        return rows

    rows = benchmark(sweep)

    lines = [
        "| group | measured ops | gas | Geth µs/op | HEVM µs/op | gas per Geth-µs |",
        "|---|---|---|---|---|---|",
    ]
    for group, row in rows.items():
        lines.append(
            f"| {group} | {row['ops']} | {row['gas']} "
            f"| {row['geth_us_per_op']:.3f} | {row['hevm_us_per_op']:.3f} "
            f"| {row['gas_per_geth_us']:.0f} |"
        )
    lines += [
        "",
        "gas-per-µs is within one order of magnitude across groups: gas",
        "tracks resource use, so the SP's gas-cap DoS policy (§IV-B)",
        "bounds HEVM occupancy as the paper claims.",
    ]
    record_result("opcode_costs", "Per-group cost calibration (OpBench-style)", lines)

    ratios = [row["gas_per_geth_us"] for row in rows.values() if row["gas_per_geth_us"]]
    assert max(ratios) / min(ratios) < 100  # same order-of-magnitude band
    # Storage ops are the most gas-expensive per op (cold SLOAD).
    assert rows["storage"]["gas"] / rows["storage"]["ops"] > 100
