"""Experiment R2 — signed receipts: Byzantine detection and audit cost.

The trust-but-verify plane's headline numbers, straight from the
receipt bench's gates:

* every injected Byzantine lie (result tampering, receipt forgery,
  receipt omission, sync equivocation) is detected as its expected
  typed error, quarantined, and healed on an honest device to the
  exact ground-truth result and world digest;
* a zero-rate armed twin and the receipts-on identity run produce zero
  false positives and byte-identical frontend artifacts;
* verifier-side audit cost grows logarithmically in trace length
  (Merkle membership proofs), not linearly.
"""

from __future__ import annotations

import pytest

from repro.faults.receipt_bench import ReceiptBenchConfig, run_receipt_bench

from conftest import record_result

pytestmark = pytest.mark.byzantine

SEED = 1


def test_receipt_audit_gates(benchmark):
    report = benchmark.pedantic(
        lambda: run_receipt_bench(ReceiptBenchConfig.smoke(seed=SEED)),
        iterations=1,
        rounds=1,
    )

    lines = [
        "| fault kind | injected | detected | healed exact | flight dumps |",
        "|---|---|---|---|---|",
    ]
    for case in report.byzantine:
        lines.append(
            f"| {case['kind']} | {case['fires']} | {case['detections']} "
            f"| {case['heal_results_exact']} | {case['dumps']} |"
        )
    lines += [
        "",
        "| trace length | steps opened | hash ops |",
        "|---|---|---|",
    ]
    for row in report.scaling:
        lines.append(
            f"| {row['length']} | {row['checked']} | {row['hash_ops']} |"
        )
    lines += [""] + report.summary_lines()
    record_result(
        "receipt_audit",
        "Signed receipts: Byzantine detection, quarantine, audit cost",
        lines,
    )

    assert report.passed, report.gate_failures
    # Detection is total, not probabilistic: the commitment covers
    # every step, so each fired lie maps to exactly one typed verdict.
    for case in report.byzantine:
        assert case["fires"] >= 1
        assert case["detections"] == case["fires"]
        assert case["heal_results_exact"] == case["detections"]
    # Receipts are invisible on honest runs.
    assert all(report.identity["equal"].values())
    assert report.identity["receipts_stored"] > 0
