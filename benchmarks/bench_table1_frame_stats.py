"""Experiment T1 — Table I: per-frame memory-like sizes, storage records,
and per-transaction call depth of the evaluation set.

The paper measures Ethereum Mainnet blocks #19145194–#19145293; we
measure the synthetic evaluation set the same way (re-executing every
transaction under a CallTracer) and report the same banded histogram.
"""

from __future__ import annotations

import pytest

from repro.evm.executor import execute_transaction
from repro.evm.tracer import CallTracer
from repro.state.journal import JournaledState
from repro.workloads.distributions import (
    CALL_DEPTH_BANDS,
    CODE_SIZE_BANDS,
    INPUT_SIZE_BANDS,
    STORAGE_KEY_BANDS,
    summarize_bands,
)

from conftest import record_result

PAPER_CODE = {"0-1024": 0.095, "1024-4096": 0.253, "4096-12288": 0.396, "12288-65536": 0.256}
PAPER_DEPTH = {"1-2": 0.408, "2-6": 0.526, "6-11": 0.063, "11-16": 0.003}
PAPER_KEYS = {"1-5": 0.799, "5-17": 0.190}


@pytest.fixture(scope="module")
def frame_stats(evalset):
    code_sizes, input_sizes, memory_sizes, return_sizes = [], [], [], []
    storage_keys, depths = [], []
    node = evalset.node
    for block_number in range(2, node.height + 1):
        executed = node.block_at(block_number)
        working = executed.pre_state.copy()
        chain = node.chain_context(executed.block.header)
        for tx in executed.block.transactions:
            tracer = CallTracer()
            journal = JournaledState(working)
            result = execute_transaction(journal, chain, tx, tracer=tracer)
            write_set = result.write_set
            working.apply_writes(
                write_set.balances, write_set.nonces,
                write_set.storage, write_set.codes, write_set.deleted,
            )
            for footprint in tracer.footprints:
                code_sizes.append(footprint.code)
                input_sizes.append(footprint.input)
                memory_sizes.append(footprint.memory)
                return_sizes.append(footprint.return_data)
                if footprint.storage_keys:
                    storage_keys.append(footprint.storage_keys)
            depths.append(tracer.max_depth)
    return {
        "code": code_sizes,
        "input": input_sizes,
        "memory": memory_sizes,
        "return": return_sizes,
        "keys": storage_keys,
        "depth": depths,
    }


def test_table1_frame_statistics(benchmark, frame_stats, evalset):
    def summarize():
        return {
            "code": summarize_bands(frame_stats["code"], CODE_SIZE_BANDS),
            "input": summarize_bands(frame_stats["input"], INPUT_SIZE_BANDS),
            "memory": summarize_bands(frame_stats["memory"], INPUT_SIZE_BANDS),
            "keys": summarize_bands(frame_stats["keys"], STORAGE_KEY_BANDS),
            "depth": summarize_bands(frame_stats["depth"], CALL_DEPTH_BANDS),
        }

    summary = benchmark(summarize)

    lines = [
        f"frames measured: {len(frame_stats['code'])}, "
        f"transactions: {len(frame_stats['depth'])}",
        "",
        "| band | code (paper) | code (ours) | depth band | depth (paper) | depth (ours) |",
        "|---|---|---|---|---|---|",
    ]
    code_rows = list(summary["code"].items())
    depth_rows = list(summary["depth"].items())
    for (code_band, code_frac), (depth_band, depth_frac) in zip(code_rows, depth_rows):
        paper_code = PAPER_CODE.get(code_band, 0.0)
        paper_depth = PAPER_DEPTH.get(depth_band, 0.0)
        lines.append(
            f"| {code_band} B | {paper_code:.1%} | {code_frac:.1%} "
            f"| {depth_band} | {paper_depth:.1%} | {depth_frac:.1%} |"
        )
    lines += [
        "",
        "| keys band | paper | ours |",
        "|---|---|---|",
    ]
    for band, frac in summary["keys"].items():
        lines.append(f"| {band} | {PAPER_KEYS.get(band, 0.0):.1%} | {frac:.1%} |")
    lines += [
        "",
        f"input <1 KB: paper 95.0%, ours {summary['input']['0-1024']:.1%}",
        f"memory <1 KB: paper 92.7%, ours {summary['memory']['0-1024']:.1%}",
    ]
    record_result("table1_frame_stats", "Table I — frame statistics", lines)

    # Shape assertions: the headline proportions of Table I hold.
    assert summary["keys"]["1-5"] > 0.6          # ≤4 keys dominate (79.9%)
    assert summary["depth"]["2-6"] > 0.3          # depth 2-5 is the modal band
    assert summary["input"]["0-1024"] > 0.8       # inputs are small
    assert summary["memory"]["0-1024"] > 0.8      # memories are small
    assert summary["code"]["4096-12288"] > 0.15   # mid-size code common
