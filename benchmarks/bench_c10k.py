"""Experiment C10K — event-driven serving tier with ticket resumption.

The ``repro.async_serving`` acceptance criteria as a recorded benchmark:

* a seeded reactor-driven run with resumption disabled is byte-identical
  (trace, metrics, wire, world digest) to the synchronous gateway
  baseline;
* one process sustains >= 10,000 concurrent open-loop sessions through
  the sharded router, with zero failures or admission rejections;
* a resumed handshake's p99 cost is <= 5% of the full attestation+DHKE
  handshake (measured: ~0.9%);
* after an epoch bump every outstanding ticket is refused with the
  typed ``StaleTicketError`` — never absorbed as a retryable fault —
  and every session recovers via a fallback full handshake.
"""

from __future__ import annotations

import pytest

from repro.async_serving.bench import C10kBenchConfig, run_c10k_bench
from repro.faults.policy import RetryPolicy
from repro.hypervisor.resumption import StaleTicketError

from conftest import record_result

pytestmark = pytest.mark.serving

SEED = 1


def test_c10k_gates(benchmark):
    report = benchmark.pedantic(
        lambda: run_c10k_bench(C10kBenchConfig.smoke(seed=SEED)),
        iterations=1,
        rounds=1,
    )

    lines = [f"seed {SEED}, smoke-sized side scenarios "
             "(the 10k concurrency gate is full-size)", ""]
    lines += report.summary_lines()
    record_result(
        "c10k_serving",
        "C10K async serving tier: concurrency, resumption and identity gates",
        lines,
    )

    assert report.passed, report.gate_failures
    # Spelled out, so a regression names the broken criterion directly:
    assert all(report.identity.values())   # reactor run == sync baseline, byte-for-byte
    assert report.c10k["peak_live"] >= 10_000
    assert report.c10k["failed"] == 0 and report.c10k["rejected"] == 0
    ratio = report.c10k["resumed_p99_us"] / report.c10k["full_p99_us"]
    assert ratio <= 0.05                   # resumed handshake ~free vs full
    assert report.determinism["matches"]   # seeded rerun digest-stable
    assert report.epoch["stale_refused"] == report.epoch["sessions"]
    assert report.epoch["failed"] == 0 and report.epoch["rejected"] == 0


def test_stale_ticket_is_not_retryable():
    # The epoch gate's other half, independent of the big run: a stale
    # ticket must surface to the caller, not vanish into a retry loop.
    assert RetryPolicy().is_recoverable(StaleTicketError(0, 1)) is False
