"""Experiment OBS — unified tracing, flight recorder, SLO alerts.

The ``repro.telemetry`` observability-plane acceptance criteria as a
recorded benchmark:

* arming the full observability stack (async-plane tracer, flight
  recorder, SLO monitor) on a seeded real-pipeline run leaves every
  frontend artefact byte-identical — trace JSON, metrics snapshot,
  Prometheus exposition, wire bytes, world digest;
* the three trace representations (node ``debug_traceTransaction``,
  HEVM struct trace, live ``hevm.tx`` span counts) reconcile *exactly*
  through the unified schema, on both the path-ORAM and sharded-fleet
  backends, with identical Merkle commitments;
* an induced epoch bump seals one deterministic flight dump per stale
  ticket and fires the ``stale-ticket-rate`` burn alert; a seeded rerun
  reproduces dumps and the alert train byte-for-byte, and a zero-fault
  twin emits nothing.
"""

from __future__ import annotations

import pytest

from repro.telemetry.obs_bench import ObsBenchConfig, run_obs_bench

from conftest import record_result

pytestmark = pytest.mark.observability

SEED = 1


def test_obs_gates(benchmark):
    report = benchmark.pedantic(
        lambda: run_obs_bench(ObsBenchConfig.smoke(seed=SEED)),
        iterations=1,
        rounds=1,
    )

    lines = [f"seed {SEED}, smoke-sized", ""]
    lines += report.summary_lines()
    record_result(
        "observability",
        "Observability plane: identity, reconciliation and alert gates",
        lines,
    )

    assert report.passed, report.gate_failures
    # Spelled out, so a regression names the broken criterion directly:
    assert all(report.identity.values())   # arming obs changed zero frontend bytes
    assert report.observability["async_spans"] > 0
    assert report.observability["dumps"] == 0   # clean run seals nothing
    legs = {leg["leg"]: leg for leg in report.reconciliation["legs"]}
    assert legs["sync"]["commitments"] == legs["sharded"]["commitments"]
    assert legs["async"]["spans"] > 0
    assert report.alerts["dumps"] == report.alerts["sessions"]
    assert report.alerts["deterministic"]
    assert "stale-ticket-rate" in report.alerts["alert_rules"]
    assert report.alerts["quiet_dumps"] == 0
    assert report.alerts["quiet_alerts"] == 0
