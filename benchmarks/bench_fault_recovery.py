"""Experiment F1 — goodput degradation under injected faults.

The fault plane's headline numbers: a closed-loop tenant mix drives the
two-device fleet while the injector fires DMA, ORAM, and HEVM faults at
escalating rates, and the recovering gateway (retry + breaker +
failover) keeps serving.  Three claims are asserted, matching the fault
plane's acceptance criteria:

* an armed all-zero-rate run reproduces the unarmed baseline
  bit-for-bit (injection is free when nothing fires);
* the same seed reproduces the same report (chaos is replayable);
* at a 5% DMA-corruption rate the gateway still completes ≥ 90% of
  bundles, with every failure accounted under a typed reason.
"""

from __future__ import annotations

from repro.faults import ChaosConfig, FaultKind, run_chaos, run_escalation

from conftest import record_result

RATES = [0.0, 0.02, 0.05, 0.10]
SEED = 1


def _table(reports) -> list[str]:
    lines = [
        "| fault rate | injected | goodput (tx/s) | completion "
        "| recovered | failed over |",
        "|---|---|---|---|---|---|",
    ]
    for report in reports:
        lines.append(
            f"| {report.fault_rate:.0%} | {report.injected_total} "
            f"| {report.goodput_tps:.1f} | {report.completion_rate:.0%} "
            f"| {report.recovered} | {report.failed_over} |"
        )
    return lines


def test_fault_recovery_escalation(benchmark, evalset):
    def run():
        baseline = run_chaos(
            ChaosConfig(seed=SEED, fault_rate=0.0, armed=False), evalset
        )
        escalation = run_escalation(RATES, evalset, seed=SEED)
        replay = run_chaos(
            ChaosConfig(seed=SEED, fault_rate=RATES[-1]), evalset
        )
        corrupt = run_chaos(
            ChaosConfig(
                seed=SEED, fault_rate=0.05, kinds=(FaultKind.DMA_CORRUPT,)
            ),
            evalset,
        )
        return baseline, escalation, replay, corrupt

    baseline, escalation, replay, corrupt = benchmark.pedantic(
        run, iterations=1, rounds=1
    )

    lines = _table(escalation) + [
        "",
        f"5% DMA-corruption-only run: completion "
        f"{corrupt.completion_rate:.0%}, {corrupt.injected_total} injected, "
        f"{corrupt.recovered} recovered, {corrupt.failed_over} failed over",
        "",
        "determinism: armed zero-rate == unarmed baseline (bit-for-bit); "
        f"seed {SEED} replay of the {RATES[-1]:.0%} run is identical",
    ]
    for report in escalation:
        lines += ["", f"--- fault rate {report.fault_rate:.0%} ---"]
        lines += report.summary_lines()
    record_result(
        "fault_recovery",
        "Fault injection and recovery (chaos harness)",
        lines,
    )

    # Zero-rate armed run is the baseline, bit for bit.
    assert escalation[0].metrics == baseline.metrics
    assert escalation[0].injected_total == 0
    # Replayability: same (seed, rate) => same metrics.
    assert replay.metrics == escalation[-1].metrics
    # 5% DMA corruption: >= 90% of bundles still complete...
    assert corrupt.completion_rate >= 0.9
    # ...and every miss is accounted under a typed reason.
    load = corrupt.load
    assert (
        load.completed + load.failed + load.rejected + load.expired
        == load.submitted
    )
    assert sum(load.failed_by_reason.values()) == load.failed
    # Goodput can only degrade as the fault rate climbs to 10%.
    assert escalation[-1].goodput_tps <= escalation[0].goodput_tps
