"""Experiment F1 — goodput degradation under injected faults.

The fault plane's headline numbers: a closed-loop tenant mix drives the
two-device fleet while the injector fires DMA, ORAM, and HEVM faults at
escalating rates, and the recovering gateway (retry + breaker +
failover) keeps serving.  Three claims are asserted, matching the fault
plane's acceptance criteria:

* an armed all-zero-rate run reproduces the unarmed baseline
  bit-for-bit (injection is free when nothing fires);
* the same seed reproduces the same report (chaos is replayable);
* at a 5% DMA-corruption rate the gateway still completes ≥ 90% of
  bundles, with every failure accounted under a typed reason.
"""

from __future__ import annotations

from repro.crypto.backend import available_backends
from repro.faults import ChaosConfig, FaultKind, run_chaos, run_escalation

from conftest import record_result

RATES = [0.0, 0.02, 0.05, 0.10]
SEED = 1


def _table(reports) -> list[str]:
    lines = [
        "| fault rate | injected | goodput (tx/s) | completion "
        "| recovered | failed over |",
        "|---|---|---|---|---|---|",
    ]
    for report in reports:
        lines.append(
            f"| {report.fault_rate:.0%} | {report.injected_total} "
            f"| {report.goodput_tps:.1f} | {report.completion_rate:.0%} "
            f"| {report.recovered} | {report.failed_over} |"
        )
    return lines


def test_fault_recovery_escalation(benchmark, evalset):
    def run():
        baseline = run_chaos(
            ChaosConfig(seed=SEED, fault_rate=0.0, armed=False), evalset
        )
        escalation = run_escalation(RATES, evalset, seed=SEED)
        replay = run_chaos(
            ChaosConfig(seed=SEED, fault_rate=RATES[-1]), evalset
        )
        corrupt = run_chaos(
            ChaosConfig(
                seed=SEED, fault_rate=0.05, kinds=(FaultKind.DMA_CORRUPT,)
            ),
            evalset,
        )
        return baseline, escalation, replay, corrupt

    baseline, escalation, replay, corrupt = benchmark.pedantic(
        run, iterations=1, rounds=1
    )

    lines = _table(escalation) + [
        "",
        f"5% DMA-corruption-only run: completion "
        f"{corrupt.completion_rate:.0%}, {corrupt.injected_total} injected, "
        f"{corrupt.recovered} recovered, {corrupt.failed_over} failed over",
        "",
        "determinism: armed zero-rate == unarmed baseline (bit-for-bit); "
        f"seed {SEED} replay of the {RATES[-1]:.0%} run is identical",
    ]
    for report in escalation:
        lines += ["", f"--- fault rate {report.fault_rate:.0%} ---"]
        lines += report.summary_lines()
    record_result(
        "fault_recovery",
        "Fault injection and recovery (chaos harness)",
        lines,
    )

    # Zero-rate armed run is the baseline, bit for bit.
    assert escalation[0].metrics == baseline.metrics
    assert escalation[0].injected_total == 0
    # Replayability: same (seed, rate) => same metrics.
    assert replay.metrics == escalation[-1].metrics
    # 5% DMA corruption: >= 90% of bundles still complete...
    assert corrupt.completion_rate >= 0.9
    # ...and every miss is accounted under a typed reason.
    load = corrupt.load
    assert (
        load.completed + load.failed + load.rejected + load.expired
        == load.submitted
    )
    assert sum(load.failed_by_reason.values()) == load.failed
    # Goodput can only degrade as the fault rate climbs to 10%.
    assert escalation[-1].goodput_tps <= escalation[0].goodput_tps


def test_zero_rate_identity_across_crypto_backends(benchmark, evalset):
    """The zero-rate byte-identity gate, swept over every crypto tier.

    The fault plane predates the pluggable crypto backends; a backend
    that diverged only under an armed (but silent) injector would fork
    the wire without any other gate noticing.  So: for every registered
    backend, an armed all-zero-rate run must reproduce that backend's
    unarmed baseline — and because the backends are bit-compatible by
    construction, all backends must agree with each other too.
    """

    def run():
        return {
            name: (
                run_chaos(
                    ChaosConfig(seed=SEED, fault_rate=0.0, armed=False,
                                crypto_backend=name),
                    evalset,
                ),
                run_chaos(
                    ChaosConfig(seed=SEED, fault_rate=0.0,
                                crypto_backend=name),
                    evalset,
                ),
            )
            for name in available_backends()
        }

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = [
        "| backend | armed == unarmed | completed | goodput (tx/s) |",
        "|---|---|---|---|",
    ]
    for name, (unarmed, armed) in rows.items():
        lines.append(
            f"| {name} | {armed.metrics == unarmed.metrics} "
            f"| {armed.load.completed} | {armed.goodput_tps:.1f} |"
        )
    record_result(
        "fault_recovery_backends",
        "Zero-rate identity across crypto backends",
        lines,
    )

    assert set(rows) >= {"reference", "numpy", "hashlib"}
    for name, (unarmed, armed) in rows.items():
        assert armed.metrics == unarmed.metrics, name
        assert armed.injected_total == 0, name
    # Backends are bit-compatible: every tier serves the same run.
    baseline = next(iter(rows.values()))[1]
    for name, (_, armed) in rows.items():
        assert armed.metrics == baseline.metrics, name
        assert armed.load.completed == baseline.load.completed, name
