"""Experiment SEC3 — residual leakage: contract fingerprinting by query
count, and the padding countermeasure (extension).

The paper hides query *targets* (ORAM), query *types* (prefetch
smoothing), and swap *sizes* (noise) — but the **number** of ORAM
queries per bundle still tracks the executing contract's code size and
storage behaviour.  An SP watching only per-bundle query counts can
therefore distinguish candidate contracts of different sizes.

This bench quantifies that residual channel and evaluates the
repository's extension countermeasure (``SecurityFeatures.query_padding``:
pad each bundle's count to the next power of two).
"""

from __future__ import annotations

import pytest

from repro.core import HarDTAPEService, SecurityFeatures
from repro.state import Transaction
from repro.workloads.contracts.profile import profile_calldata

from conftest import make_session, record_result


def _query_counts(evalset, candidates, query_padding: bool):
    """Per-bundle ORAM access counts for each candidate contract."""
    features = SecurityFeatures.from_level("full")
    features.query_padding = query_padding
    service = HarDTAPEService(evalset.node, features, charge_fees=False)
    client, session = make_session(service)
    user = evalset.population.users[0]
    server = service.oram_server
    counts: dict[bytes, list[int]] = {address: [] for address in candidates}
    for _ in range(4):
        for address in candidates:
            tx = Transaction(
                sender=user, to=address, data=profile_calldata(2, 0)
            )
            before = server.stats.reads
            client.pre_execute(service, session, [tx])
            counts[address].append(server.stats.reads - before)
    return counts


def _identification_accuracy(counts: dict[bytes, list[int]]) -> float:
    """Nearest-centroid classifier on per-bundle query counts."""
    centroids = {
        address: sum(values) / len(values) for address, values in counts.items()
    }
    correct = 0
    total = 0
    for address, values in counts.items():
        for value in values:
            guess = min(centroids, key=lambda a: abs(centroids[a] - value))
            correct += guess == address
            total += 1
    return correct / total


@pytest.fixture(scope="module")
def candidates(evalset):
    """Four profile contracts with clearly distinct code sizes."""
    sizes = sorted(
        evalset.population.profile_sizes.items(), key=lambda item: item[1]
    )
    picked = [sizes[0], sizes[len(sizes) // 3], sizes[2 * len(sizes) // 3], sizes[-1]]
    return [address for address, _ in picked]


def test_query_count_fingerprinting(benchmark, evalset, candidates):
    def experiment():
        plain = _query_counts(evalset, candidates, query_padding=False)
        padded = _query_counts(evalset, candidates, query_padding=True)
        return plain, padded

    plain, padded = benchmark.pedantic(experiment, iterations=1, rounds=1)
    accuracy_plain = _identification_accuracy(plain)
    accuracy_padded = _identification_accuracy(padded)

    lines = [
        "candidate contracts (code size -> per-bundle ORAM query counts):",
    ]
    for address in candidates:
        size = evalset.population.profile_sizes[address]
        lines.append(
            f"  {size:>6} B : plain {plain[address]}  padded {padded[address]}"
        )
    lines += [
        "",
        "| defense | contract-identification accuracy (chance = 25%) |",
        "|---|---|",
        f"| -full (paper) | {accuracy_plain:.0%} |",
        f"| -full + query-count padding (extension) | {accuracy_padded:.0%} |",
        "",
        "the per-bundle query COUNT is a residual side channel the paper",
        "does not address; power-of-two padding merges similar-sized",
        "contracts into one bucket (at up to 2x dummy ORAM traffic) but",
        "magnitude classes stay apart — full hiding needs constant-count",
        "padding, i.e. always paying the worst case.",
    ]
    record_result(
        "fingerprinting", "Residual leakage — query-count fingerprinting", lines
    )

    assert accuracy_plain >= 0.75       # the residual channel is real
    assert accuracy_padded < accuracy_plain  # bucketing merges neighbours
